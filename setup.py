"""Legacy setup shim: the environment has no `wheel` package, so the
PEP 517 editable path (which builds a wheel) is unavailable offline.
`pip install -e .` falls back to `setup.py develop` through this file.
Package metadata lives in pyproject.toml."""

from setuptools import setup

setup()
