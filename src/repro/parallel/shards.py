"""Sharded sweep orchestration for million-request cells (DESIGN.md §14).

:mod:`repro.parallel` parallelizes across sweep *cells* — fine when the
grid is large and each cell is small.  A mega-sweep inverts that: a few
``(policy, rps)`` cells of 10^6–10^7 requests each.  This module splits
every cell into arrival *shards* — independent streamed simulations of
``num_requests / shards`` requests each — fans the ``(policy, rps,
shard)`` grid across a process pool, and reduces each cell's shards
into one mergeable :class:`~repro.sim.stream.StreamSummary`.

Determinism contract:

* Shard ``k`` of load point ``rps_index`` draws its trace from
  ``cell_seed(seed, rps_index, k)`` — policy-independent, so every
  policy sees identical shard traces (the paired-comparison discipline),
  and reusing :func:`~repro.experiments.runner.cell_seed` means a
  shard's trace is exactly the trace a ``repeats=shards`` sweep's
  repeat ``k`` would replay.
* Shards merge in shard-index order, whatever order the pool finishes
  them in — so the merged histogram (and every scalar on the summary)
  is bit-identical for any ``--workers`` count, including the serial
  in-process path.
* One shard (``shards=1``) is definitionally a plain
  :func:`~repro.sim.stream.simulate_stream` run of the whole cell.

A shard boundary is a *statistical* cut, not a temporal one: each shard
replays its own open-loop trace from an empty server, so a sharded cell
is ``shards`` independent samples of the same arrival law rather than
one long sample (the same trade :mod:`repro.experiments.runner` makes
with ``repeats``).  Queue carry-over across boundaries is lost; for
tail estimation at the paper's loads the error is the repeat-sampling
error, and halving ``shards`` at fixed ``num_requests`` quantifies it.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import ConfigurationError
from repro.experiments.runner import _named_schedulers, cell_seed
from repro.faults.plan import FaultPlan
from repro.parallel import _pool_context, resolve_workers
from repro.sim.api import Scheduler
from repro.sim.stream import StreamSummary, simulate_stream
from repro.telemetry import install
from repro.workloads.arrivals import PoissonProcess
from repro.workloads.workload import Workload

__all__ = [
    "run_sharded_sweep",
    "shard_sizes",
    "ShardedSweepResult",
    "default_shards",
    "get_default_shards",
    "set_default_shards",
    "resolve_shards",
]

_DEFAULT_SHARDS = 1


def get_default_shards() -> int:
    """The ambient shard count (default 1 — unsharded).  Raw, like
    :func:`repro.parallel.get_default_workers`: ``0`` ("one shard per
    worker") resolves at use time in :func:`resolve_shards`."""
    return _DEFAULT_SHARDS


def set_default_shards(shards: int) -> None:
    """Set the ambient shard count for subsequent sharded sweeps.
    ``0`` means "match the resolved worker count" and is stored raw."""
    global _DEFAULT_SHARDS
    if shards < 0:
        raise ConfigurationError(f"shards must be >= 0: {shards}")
    _DEFAULT_SHARDS = shards


@contextlib.contextmanager
def default_shards(shards: int) -> Iterator[int]:
    """Scoped :func:`set_default_shards` (restores the raw value)."""
    previous = _DEFAULT_SHARDS
    set_default_shards(shards)
    try:
        yield _DEFAULT_SHARDS
    finally:
        set_default_shards(previous)


def resolve_shards(shards: int | None, workers: int) -> int:
    """Normalize a shard count: ``None`` -> ambient default, ``0`` ->
    one shard per (resolved) worker, otherwise the count itself."""
    if shards is None:
        shards = _DEFAULT_SHARDS
    if shards == 0:
        return max(1, workers)
    if shards < 0:
        raise ConfigurationError(f"shards must be >= 0: {shards}")
    return shards


def shard_sizes(total: int, shards: int) -> list[int]:
    """Split ``total`` requests into ``shards`` near-equal positive
    sizes, deterministically (the first ``total % shards`` shards take
    the extra request)."""
    if total < 1:
        raise ConfigurationError(f"total must be >= 1: {total}")
    if shards < 1:
        raise ConfigurationError(f"shards must be >= 1: {shards}")
    if shards > total:
        raise ConfigurationError(
            f"cannot split {total} requests into {shards} non-empty shards"
        )
    base, extra = divmod(total, shards)
    return [base + (1 if k < extra else 0) for k in range(shards)]


@dataclass
class _ShardSpec:
    """Everything a shard worker needs, shipped once per pool."""

    named: list[tuple[str, Scheduler]]
    workload: Workload
    rps_values: list[float]
    sizes: list[int]
    cores: int
    quantum_ms: float
    seed: int
    spin_fraction: float
    vectorized: bool
    chunk_size: int
    fault_plan: FaultPlan | None = None


_SPEC: _ShardSpec | None = None


def _init_worker(spec: _ShardSpec) -> None:
    global _SPEC
    _SPEC = spec


def _run_shard_pooled(cell: tuple[int, int, int]) -> StreamSummary:
    spec = _SPEC
    assert spec is not None, "worker used before initialization"
    return _run_shard(cell, spec)


def _run_shard(cell: tuple[int, int, int], spec: _ShardSpec) -> StreamSummary:
    """Simulate one ``(policy, rps, shard)`` slice as a streamed run."""
    policy_index, rps_index, shard_index = cell
    _, scheduler = spec.named[policy_index]
    arrivals = spec.workload.arrival_stream(
        spec.sizes[shard_index],
        PoissonProcess(spec.rps_values[rps_index]),
        seed=cell_seed(spec.seed, rps_index, shard_index),
        chunk_size=spec.chunk_size,
    )
    # Same telemetry discipline as repro.parallel._run_cell: spans
    # recorded in a worker could never reach the parent's exporter.
    with install(None):
        return simulate_stream(
            arrivals,
            scheduler,
            cores=spec.cores,
            quantum_ms=spec.quantum_ms,
            spin_fraction=spec.spin_fraction,
            fault_plan=spec.fault_plan,
            vectorized=spec.vectorized,
        )


@dataclass
class ShardedSweepResult:
    """Per-policy, per-load-point merged shard summaries."""

    series: dict[str, list[StreamSummary]]
    rps_values: list[float]
    shards: int
    num_requests: int

    def __getitem__(self, policy: str) -> list[StreamSummary]:
        return self.series[policy]

    def policies(self) -> list[str]:
        return list(self.series)

    def tail_points(self, policy: str, phi: float = 0.99) -> list[tuple[float, float]]:
        """``(rps, φ-percentile latency)`` pairs for one policy."""
        return [
            (rps, summary.tail_latency_ms(phi))
            for rps, summary in zip(self.rps_values, self.series[policy])
        ]

    def mean_points(self, policy: str) -> list[tuple[float, float]]:
        return [
            (rps, summary.mean_latency_ms())
            for rps, summary in zip(self.rps_values, self.series[policy])
        ]


def run_sharded_sweep(
    schedulers: Sequence[Scheduler] | dict[str, Scheduler],
    workload: Workload,
    rps_values: Sequence[float],
    cores: int,
    num_requests: int,
    shards: int | None = None,
    workers: int | None = None,
    quantum_ms: float = 5.0,
    seed: int = 42,
    spin_fraction: float = 0.25,
    vectorized: bool = False,
    chunk_size: int = 8192,
    fault_plan: FaultPlan | None = None,
) -> ShardedSweepResult:
    """Sweep load with each ``(policy, rps)`` cell split into streamed
    arrival shards across a process pool.

    ``num_requests`` is the *total* per cell; ``shards`` (``None`` ->
    ambient default via :func:`default_shards`, ``0`` -> one per
    worker) controls the split and — unlike ``workers`` — is a results
    knob: different shard counts simulate different trace
    decompositions.  ``workers`` remains purely a wall-clock knob: the
    merged summaries are bit-identical for any worker count.
    """
    named = _named_schedulers(schedulers)
    if not named:
        raise ConfigurationError("run_sharded_sweep needs at least one scheduler")
    if not rps_values:
        raise ConfigurationError("run_sharded_sweep needs at least one rps value")
    workers = resolve_workers(workers)
    shards = resolve_shards(shards, workers)
    sizes = shard_sizes(num_requests, shards)

    cells = [
        (policy_index, rps_index, shard_index)
        for policy_index in range(len(named))
        for rps_index in range(len(rps_values))
        for shard_index in range(shards)
    ]
    spec = _ShardSpec(
        named=named,
        workload=workload,
        rps_values=[float(r) for r in rps_values],
        sizes=sizes,
        cores=cores,
        quantum_ms=quantum_ms,
        seed=seed,
        spin_fraction=spin_fraction,
        vectorized=vectorized,
        chunk_size=chunk_size,
        fault_plan=fault_plan,
    )
    if workers <= 1 or len(cells) == 1:
        # In-process through the same shard path, spec threaded
        # explicitly (safe under nesting, like repro.parallel).
        summaries = [_run_shard(cell, spec) for cell in cells]
    else:
        context = _pool_context()
        with context.Pool(
            processes=min(workers, len(cells)),
            initializer=_init_worker,
            initargs=(spec,),
        ) as pool:
            summaries = pool.map(_run_shard_pooled, cells, chunksize=1)

    by_cell = dict(zip(cells, summaries))
    series: dict[str, list[StreamSummary]] = {}
    for policy_index, (name, _) in enumerate(named):
        points: list[StreamSummary] = []
        for rps_index in range(len(rps_values)):
            merged = by_cell[(policy_index, rps_index, 0)]
            # Merge in shard-index order — pool completion order must
            # not leak into the result (histogram merge is exact, but
            # the float integrals sum sequentially).
            for shard_index in range(1, shards):
                merged.update(by_cell[(policy_index, rps_index, shard_index)])
            points.append(merged)
        series[name] = points
    return ShardedSweepResult(
        series=series,
        rps_values=list(spec.rps_values),
        shards=shards,
        num_requests=num_requests,
    )
