"""Parallel load-sweep execution across a multiprocessing pool.

A load sweep is embarrassingly parallel: every ``(policy, rps, repeat)``
cell is an independent simulation whose trace is fully determined by
:func:`repro.experiments.runner.cell_seed`.  This module fans the grid
across worker processes and reassembles a
:class:`~repro.experiments.runner.SweepResult` that is **identical** to
the serial one — same seeds, same per-cell tail/mean floats, same
merge order for the per-load-point latency histograms — so ``--workers``
is purely a wall-clock knob, never a results knob.

What crosses the process boundary:

* *once per worker, at pool start*: the sweep spec (schedulers,
  workload, grid) via the pool initializer — not per cell;
* *once per cell, back to the parent*: the cell's tail/mean floats and
  its mergeable :class:`~repro.telemetry.histogram.LogHistogram` of
  completion latencies (plus the full
  :class:`~repro.sim.metrics.SimulationResult` only under
  ``keep_results=True``).

Caveats: schedulers and workloads must be picklable under the ``spawn``
start method (``fork``, the default where available, only needs the
*returned* values to pickle); and ambient telemetry pipelines are
deliberately not propagated into workers — per-run spans recorded in a
child process could never reach the parent's exporter, so workers run
with telemetry uninstalled rather than silently dropping data.

The ambient-default machinery (:func:`default_workers`,
:func:`set_default_workers`) lets an entry point such as the experiment
CLI's ``--workers N`` parallelize *every* sweep an experiment performs
without threading a parameter through each figure function.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.experiments.runner import (
    PolicySeries,
    SweepResult,
    _named_schedulers,
    cell_seed,
    latency_histogram,
    run_policy,
)
from repro.hetero.pools import Topology
from repro.sim.api import Scheduler
from repro.sim.metrics import SimulationResult
from repro.telemetry import install
from repro.telemetry.histogram import LogHistogram
from repro.workloads.workload import Workload

__all__ = [
    "run_sweep_parallel",
    "default_workers",
    "get_default_workers",
    "set_default_workers",
    "resolve_workers",
    # re-exported from repro.parallel.shards (imported at module end)
    "run_sharded_sweep",
    "shard_sizes",
    "ShardedSweepResult",
    "default_shards",
    "get_default_shards",
    "set_default_shards",
    "resolve_shards",
]

_DEFAULT_WORKERS = 1


def get_default_workers() -> int:
    """The ambient worker count :func:`run_sweep` consults (default 1).

    Returned *raw*: ``0`` means "all CPUs" and stays ``0`` here —
    resolution to a concrete process count happens at use time in
    :func:`resolve_workers`, so the value tracks the machine it runs
    on rather than the machine it was set on.
    """
    return _DEFAULT_WORKERS


def set_default_workers(workers: int) -> None:
    """Set the ambient worker count for subsequent sweeps.

    ``workers=0`` means "all CPUs" and is stored as ``0`` (resolved
    against ``os.cpu_count()`` each time a sweep starts, not once
    here).  Prefer the scoped :func:`default_workers` context manager
    unless the process is single-purpose (like the CLI).
    """
    global _DEFAULT_WORKERS
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0: {workers}")
    _DEFAULT_WORKERS = workers


@contextlib.contextmanager
def default_workers(workers: int) -> Iterator[int]:
    """Scoped :func:`set_default_workers`: every sweep in the block runs
    with ``workers`` processes unless it passes an explicit count.

    Saves and restores the *raw* ambient value, so nesting
    ``default_workers(4)`` inside ``default_workers(0)`` restores the
    "all CPUs" sentinel, not whatever CPU count it resolved to once.
    """
    previous = _DEFAULT_WORKERS
    set_default_workers(workers)
    try:
        yield _DEFAULT_WORKERS
    finally:
        set_default_workers(previous)


def resolve_workers(workers: int | None) -> int:
    """Normalize a worker count: ``None`` -> the ambient default,
    ``0`` -> all CPUs (resolved now, at use time), otherwise the
    (positive) count itself."""
    if workers is None:
        workers = _DEFAULT_WORKERS
    if workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ConfigurationError(f"workers must be >= 0: {workers}")
    return workers


@dataclass
class _SweepSpec:
    """Everything a worker needs, shipped once via the pool initializer."""

    named: list[tuple[str, Scheduler]]
    workload: Workload
    rps_values: list[float]
    cores: int
    num_requests: int
    quantum_ms: float
    seed: int
    phi: float
    keep_results: bool
    spin_fraction: float
    topology: Topology | None = None


# Per-worker-process sweep spec, set by the pool initializer.  Only the
# pool path uses this global (a worker process is single-purpose); the
# in-process serial fallback threads the spec explicitly so nested and
# re-entrant sweeps — which the sharded orchestrator performs — never
# observe a foreign or torn-down spec.
_SPEC: _SweepSpec | None = None


def _init_worker(spec: _SweepSpec) -> None:
    global _SPEC
    _SPEC = spec


def _run_cell_pooled(
    cell: tuple[int, int, int],
) -> tuple[float, float, LogHistogram, SimulationResult | None]:
    """Pool entry point: bind the worker-process spec, then run."""
    spec = _SPEC
    assert spec is not None, "worker used before initialization"
    return _run_cell(cell, spec)


def _run_cell(
    cell: tuple[int, int, int],
    spec: _SweepSpec,
) -> tuple[float, float, LogHistogram, SimulationResult | None]:
    """Run one ``(policy, rps, repeat)`` cell and summarize it."""
    policy_index, rps_index, repeat = cell
    _, scheduler = spec.named[policy_index]
    # Telemetry recorded in a worker could never reach the parent's
    # pipeline; run with none installed instead of dropping data
    # silently (an inherited ambient pipeline would otherwise resolve).
    with install(None):
        result = run_policy(
            scheduler,
            spec.workload,
            rps=spec.rps_values[rps_index],
            cores=spec.cores,
            num_requests=spec.num_requests,
            quantum_ms=spec.quantum_ms,
            seed=cell_seed(spec.seed, rps_index, repeat),
            spin_fraction=spec.spin_fraction,
            topology=spec.topology,
        )
    return (
        result.tail_latency_ms(spec.phi),
        result.mean_latency_ms(),
        latency_histogram(result),
        result if spec.keep_results else None,
    )


def _pool_context() -> multiprocessing.context.BaseContext:
    """``fork`` where available (cheap, no pickling of the spec's
    schedulers/workload), ``spawn`` otherwise."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


def run_sweep_parallel(
    schedulers: Sequence[Scheduler] | dict[str, Scheduler],
    workload: Workload,
    rps_values: Sequence[float],
    cores: int,
    num_requests: int = 2000,
    quantum_ms: float = 5.0,
    seed: int = 42,
    repeats: int = 1,
    phi: float = 0.99,
    keep_results: bool = False,
    spin_fraction: float = 0.25,
    workers: int | None = None,
    topology: Topology | None = None,
) -> SweepResult:
    """:func:`repro.experiments.runner.run_sweep`, fanned across a
    process pool.

    Accepts the same arguments plus ``workers`` (``None`` -> ambient
    default, ``0`` -> all CPUs) and returns an identical
    :class:`~repro.experiments.runner.SweepResult`: each cell runs with
    the seed :func:`cell_seed` assigns it, and per-load-point
    histograms merge in repeat order, exactly as the serial loop does.
    """
    named = _named_schedulers(schedulers)
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1: {repeats}")
    # An empty grid would otherwise surface as a bare ValueError from
    # multiprocessing (Pool(processes=0)) — reject it here with a
    # message that names the missing axis.
    if not named:
        raise ConfigurationError("run_sweep_parallel needs at least one scheduler")
    if not rps_values:
        raise ConfigurationError("run_sweep_parallel needs at least one rps value")
    workers = resolve_workers(workers)

    cells = [
        (policy_index, rps_index, repeat)
        for policy_index in range(len(named))
        for rps_index in range(len(rps_values))
        for repeat in range(repeats)
    ]
    spec = _SweepSpec(
        named=named,
        workload=workload,
        rps_values=[float(r) for r in rps_values],
        cores=cores,
        num_requests=num_requests,
        quantum_ms=quantum_ms,
        seed=seed,
        phi=phi,
        keep_results=keep_results,
        spin_fraction=spin_fraction,
        topology=topology,
    )
    if workers <= 1 or len(cells) == 1:
        # Not worth a pool; run the cells in-process through the same
        # code path (so workers=1 still exercises _run_cell).  The spec
        # is passed explicitly — no module global is touched, so a
        # sweep may run inside another sweep's cell.
        summaries = [_run_cell(cell, spec) for cell in cells]
    else:
        context = _pool_context()
        with context.Pool(
            processes=min(workers, len(cells)),
            initializer=_init_worker,
            initargs=(spec,),
        ) as pool:
            # chunksize=1: cells are heterogeneous (high-RPS cells
            # simulate far more events), so fine-grained dispatch is
            # what makes the speedup near-linear.
            summaries = pool.map(_run_cell_pooled, cells, chunksize=1)

    by_cell = dict(zip(cells, summaries))
    series: dict[str, PolicySeries] = {}
    for policy_index, (name, _) in enumerate(named):
        tails: list[float] = []
        means: list[float] = []
        kept: list[list[SimulationResult]] = []
        histograms: list[LogHistogram] = []
        for rps_index in range(len(rps_values)):
            run_tails: list[float] = []
            run_means: list[float] = []
            point_results: list[SimulationResult] = []
            point_histogram = LogHistogram()
            for repeat in range(repeats):
                tail, mean, histogram, result = by_cell[
                    (policy_index, rps_index, repeat)
                ]
                run_tails.append(tail)
                run_means.append(mean)
                point_histogram.update(histogram)
                if keep_results:
                    point_results.append(result)
            tails.append(float(np.mean(run_tails)))
            means.append(float(np.mean(run_means)))
            histograms.append(point_histogram)
            if keep_results:
                kept.append(point_results)
        series[name] = PolicySeries(
            policy=name,
            rps_values=list(spec.rps_values),
            tail_ms=tails,
            mean_ms=means,
            results=kept,
            histograms=histograms,
        )
    return SweepResult(series=series)


# Sharded mega-sweep orchestration (imports from this module, so the
# import sits below everything it needs — DESIGN.md §14).
from repro.parallel.shards import (  # noqa: E402
    ShardedSweepResult,
    default_shards,
    get_default_shards,
    resolve_shards,
    run_sharded_sweep,
    set_default_shards,
    shard_sizes,
)
