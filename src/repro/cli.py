"""Command-line entry point: ``python -m repro`` / ``repro-fm``.

Runs any experiment from the EXPERIMENTS.md index and prints its
tables, e.g.::

    repro-fm fig8 --scale quick
    repro-fm all --scale full
    repro-fm robustness --trace trace.json   # then open chrome://tracing

``--trace`` installs an ambient :class:`~repro.telemetry.Telemetry`
pipeline for the run and writes every span the instrumented layers
emit (sim, search, runtime, cluster) as Chrome/Perfetto trace-event
JSON.

The ``repro`` alias adds subcommands for offline analysis::

    repro analyze trace.json --phi 0.99      # tail attribution report
    repro diff fig8#1 fig8#2                 # cross-run diff with CIs

(any other ``repro ...`` invocation behaves exactly like ``repro-fm``).

``--ledger DIR`` persists every :class:`~repro.observe.ledger.RunEntry`
an experiment offers (config fingerprint, seed, histogram state,
attribution, events) into the append-only run ledger at ``DIR``, making
the run a ``repro diff`` operand.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.ablations import ABLATIONS
from repro.experiments.config import FULL, QUICK, TINY, Scale, default_scale
from repro.experiments.extensions import EXTENSIONS
from repro.experiments.figures import ALL_EXPERIMENTS
from repro.experiments.hetero_energy import HETERO_ENERGY
from repro.experiments.live_tail import LIVE_TAIL
from repro.experiments.mega_sweep import MEGA_SWEEP
from repro.experiments.replication_phase import REPLICATION_PHASE
from repro.experiments.robustness import ROBUSTNESS
from repro.experiments.run_diff import RUN_DIFF
from repro.experiments.tail_attribution import TAIL_ATTRIBUTION
from repro.experiments.telemetry import TELEMETRY
from repro.telemetry import Telemetry, install
from repro.telemetry.export import write_chrome_trace

#: Every runnable experiment: the paper's figures/tables, the ablation
#: studies, the extension experiments, the robustness and replication
#: studies, the telemetry overhead study, and the tail-attribution study.
EXPERIMENTS = {
    **ALL_EXPERIMENTS,
    **ABLATIONS,
    **EXTENSIONS,
    **HETERO_ENERGY,
    **LIVE_TAIL,
    **MEGA_SWEEP,
    **REPLICATION_PHASE,
    **ROBUSTNESS,
    **RUN_DIFF,
    **TELEMETRY,
    **TAIL_ATTRIBUTION,
}

__all__ = ["main", "build_parser"]

_SCALES: dict[str, Scale] = {"tiny": TINY, "quick": QUICK, "full": FULL}


def build_parser() -> argparse.ArgumentParser:
    """The argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-fm",
        description=(
            "Reproduce tables/figures from 'Few-to-Many: Incremental "
            "Parallelism for Reducing Tail Latency in Interactive Services' "
            "(ASPLOS 2015)."
        ),
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="experiment id from DESIGN.md / EXPERIMENTS.md, or 'all'",
    )
    parser.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default=None,
        help="fidelity preset (default: $REPRO_SCALE or 'quick')",
    )
    parser.add_argument(
        "--trace",
        metavar="OUT.json",
        default=None,
        help=(
            "record telemetry spans from every instrumented layer and "
            "write Chrome/Perfetto trace-event JSON (open in "
            "chrome://tracing or ui.perfetto.dev)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        metavar="N",
        default=1,
        help=(
            "fan every load sweep across N worker processes "
            "(0 = all CPUs; results are identical to serial runs — "
            "see repro.parallel). Incompatible with --trace: sweep "
            "telemetry cannot cross process boundaries."
        ),
    )
    parser.add_argument(
        "--ledger",
        metavar="DIR",
        default=None,
        help=(
            "persist each experiment's run entries (RunCard + histogram/"
            "attribution/event artifacts) to the append-only ledger at "
            "DIR, ready for `repro diff`"
        ),
    )
    parser.add_argument(
        "--shards",
        type=int,
        metavar="K",
        default=1,
        help=(
            "split each sharded-sweep cell (e.g. mega-sweep) into K "
            "arrival shards (0 = one per worker). Unlike --workers "
            "this is a results knob: the shard decomposition defines "
            "which traces are simulated. See repro.parallel.shards."
        ),
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    ``analyze`` dispatches to the trace-analysis CLI
    (:mod:`repro.observe.analyze`); everything else is an experiment id.
    """
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "analyze":
        from repro.observe.analyze import main as analyze_main

        return analyze_main(argv[1:])
    if argv and argv[0] == "top":
        from repro.observe.top import main as top_main

        return top_main(argv[1:])
    if argv and argv[0] == "diff":
        from repro.observe.diff import main as diff_main

        return diff_main(argv[1:])
    args = build_parser().parse_args(argv)
    scale = _SCALES[args.scale] if args.scale else default_scale()
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if args.trace and args.workers != 1:
        print(
            "error: --trace requires --workers 1 (worker processes "
            "cannot feed the parent's telemetry pipeline)",
            file=sys.stderr,
        )
        return 2
    telemetry = Telemetry() if args.trace else None
    from repro.parallel import default_shards, default_workers

    ledger = None
    if args.ledger:
        from repro.observe.ledger import RunLedger

        ledger = RunLedger(args.ledger)
    with install(telemetry), default_workers(args.workers), default_shards(args.shards):
        for name in names:
            started = time.perf_counter()
            result = EXPERIMENTS[name](scale)
            elapsed = time.perf_counter() - started
            print(result.render())
            if ledger is not None:
                run_ids = [ledger.append(entry) for entry in result.entries]
                if run_ids:
                    print(
                        f"[ledger: {len(run_ids)} entries -> {args.ledger} "
                        f"({run_ids[0]} .. {run_ids[-1]})]"
                    )
            print(f"\n[{name} completed in {elapsed:.1f}s at scale={scale.name}]\n")
    if telemetry is not None:
        write_chrome_trace(args.trace, telemetry)
        print(
            f"[trace: {len(telemetry.tracer.spans)} spans from "
            f"{len(telemetry.tracer.tracks())} tracks -> {args.trace}]"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
