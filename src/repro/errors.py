"""Exception hierarchy for the ``repro`` package.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch package failures with a single ``except`` clause while still
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class InvalidScheduleError(ReproError):
    """A schedule violates the FM structural invariants.

    Raised when parallelism degrees are not strictly increasing, when
    times are not strictly increasing, or when interval durations are
    negative.
    """


class InvalidProfileError(ReproError):
    """A demand profile is empty or contains non-positive service demands."""


class InvalidSpeedupError(ReproError):
    """A speedup curve violates s(1) = 1 or monotonicity requirements."""


class SearchInfeasibleError(ReproError):
    """The offline interval search found no feasible schedule for a load."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class ConfigurationError(ReproError):
    """An experiment or component was configured with invalid parameters."""


class DeadlineExceededError(ReproError):
    """A request or query ran past its deadline budget.

    Raised only where no graceful degradation is possible; components
    that can degrade (e.g. the search executor's partial results)
    return a degraded answer instead of raising.
    """


class RequestShedError(ReproError):
    """A request was rejected by overload load shedding (fail fast)."""


class FaultInjectionError(ReproError):
    """A fault plan is malformed or inconsistent with the simulation."""
