"""Experiment harness: runners, scales, cached tables, and one function
per table/figure of the paper's evaluation."""

from repro.experiments.ablations import ABLATIONS
from repro.experiments.config import FULL, QUICK, TINY, Scale, default_scale
from repro.experiments.extensions import EXTENSIONS
from repro.experiments.figures import ALL_EXPERIMENTS
from repro.experiments.report import FigureResult, TableData, render_table
from repro.experiments.robustness import ROBUSTNESS
from repro.experiments.runner import PolicySeries, SweepResult, run_policy, run_sweep
from repro.experiments.tables import bing_table, lucene_table

__all__ = [
    "ABLATIONS",
    "ALL_EXPERIMENTS",
    "EXTENSIONS",
    "FULL",
    "FigureResult",
    "PolicySeries",
    "QUICK",
    "ROBUSTNESS",
    "Scale",
    "SweepResult",
    "TINY",
    "TableData",
    "bing_table",
    "default_scale",
    "lucene_table",
    "render_table",
    "run_policy",
    "run_sweep",
]
