"""Differential observability demo: ledgered runs + `repro diff`.

Three comparisons exercise the whole diff plane (DESIGN.md §15) at a
Fig. 8 load point:

* **Self-diff attestation** — an FM run diffed against its own
  ledger round-trip: the histogram state restores bit-identically, so
  every delta is *exactly* zero and the verdict is a certain null
  (this is the CI `diff-smoke` invariant).
* **FM vs FIX-3** — the paper's headline comparison with error bars:
  the p99 delta carries a bootstrap CI and a significance verdict
  instead of a bare point gap.  The explanation ranking attributes the
  gap to the over-subscription phase — in this simulator FIX's
  overload cost is booked as processor-sharing *contention* (FIX
  admits immediately; only FM's admission control produces queue
  spans), the analogue of the real system's thread-pool queueing.
* **FM overload regression** — FM at the sweep's highest load vs the
  headline load: a significant p99 regression whose explanation
  ranking puts *queue* first, because FM's admission delays are
  exactly where extra load lands.  This is the "automatic regression
  explanation" shape: same config, one knob moved, the diff names the
  phase that pays.

Every run is offered as a ledger entry, so ``--ledger runs/`` makes
each of these diffs reproducible offline::

    repro-fm run-diff --ledger runs/
    repro diff 'FM@45#1' 'FIX-3@45#4' --runs runs/
"""

from __future__ import annotations

from repro.experiments.config import Scale, default_scale
from repro.experiments.report import FigureResult
from repro.experiments.runner import run_sweep
from repro.experiments.tables import lucene_table
from repro.observe.diff import (
    PHASE_COLUMNS,
    QUANTILE_COLUMNS,
    diff_runs,
    phase_rows,
    quantile_rows,
)
from repro.observe.ledger import RunEntry, entry_from_result
from repro.schedulers import FixedScheduler, FMScheduler
from repro.workloads import lucene as lucene_mod

__all__ = ["experiment_run_diff", "RUN_DIFF"]

#: Fig. 8 load points: the paper's headline 40 RPS, the significance
#: point 45, and the overload point 47 for the regression diff.
LOAD_POINTS = (40.0, 45.0, 47.0)
#: The FM-vs-FIX comparison load (significant at quick scale and up).
COMPARE_RPS = 45.0
SEED = 4100
FIX_DEGREE = 3

def experiment_run_diff(scale: Scale | None = None) -> FigureResult:
    """Self-diff null, FM-vs-FIX-3 with CIs, and a queue-explained FM
    overload regression — all through :func:`diff_runs`."""
    scale = scale or default_scale()
    table = lucene_table(scale)
    workload = lucene_mod.lucene_workload(profile_size=scale.profile_size)
    policies = {"FM": FMScheduler(table), f"FIX-{FIX_DEGREE}": FixedScheduler(FIX_DEGREE)}

    # repeats=1 regardless of scale: each ledger entry is ONE run (a
    # ledger records executions), and the paired-comparison seed grid
    # keeps serial and --workers sweeps bit-identical.
    sweep = run_sweep(
        policies,
        workload,
        rps_values=LOAD_POINTS,
        cores=lucene_mod.CORES,
        num_requests=scale.num_requests,
        quantum_ms=lucene_mod.QUANTUM_MS,
        seed=SEED,
        repeats=1,
        keep_results=True,
        spin_fraction=lucene_mod.SPIN_FRACTION,
    )

    entries: dict[tuple[str, float], RunEntry] = {}
    for policy in policies:
        for rps_index, rps in enumerate(LOAD_POINTS):
            run = sweep[policy].results[rps_index][0]
            entries[(policy, rps)] = entry_from_result(
                f"{policy}@{rps:g}",
                run,
                config={
                    "experiment": "run-diff",
                    "policy": policy,
                    "rps": rps,
                    "num_requests": scale.num_requests,
                    "cores": lucene_mod.CORES,
                    "quantum_ms": lucene_mod.QUANTUM_MS,
                    "seed": SEED,
                },
                seed=SEED,
                scheduler=policy,
                workload=workload,
                scale=scale.name,
            )

    result = FigureResult(
        "run-diff",
        "Differential observability: ledgered runs compared with CIs",
    )
    for entry in entries.values():
        result.add_entry(entry)

    # Panel 1: self-diff — ledger round-trip must be an exact null.
    fm_mid = entries[("FM", COMPARE_RPS)]
    round_trip = RunEntry.from_dict(fm_mid.to_dict())
    self_diff = diff_runs(fm_mid, round_trip)
    result.add_table(
        f"self-diff: FM@{COMPARE_RPS:g} vs its ledger round-trip "
        f"(identical={self_diff.identical})",
        QUANTILE_COLUMNS,
        quantile_rows(self_diff),
    )
    result.add_note(
        "self-diff verdict: "
        + ("NULL (exact)" if self_diff.is_null() and self_diff.identical
           else "UNEXPECTED DELTAS — ledger round-trip is lossy")
    )

    # Panel 2: FM vs FIX-3 on the identical trace at the compare load.
    versus = diff_runs(entries[("FM", COMPARE_RPS)], entries[(f"FIX-{FIX_DEGREE}", COMPARE_RPS)])
    result.add_table(
        f"FM vs FIX-{FIX_DEGREE} at {COMPARE_RPS:g} RPS: quantile deltas "
        "(negative = FM faster)",
        QUANTILE_COLUMNS,
        quantile_rows(versus),
    )
    result.add_table(
        f"FM vs FIX-{FIX_DEGREE} at {COMPARE_RPS:g} RPS: explanation ranking",
        PHASE_COLUMNS,
        phase_rows(versus),
    )
    result.add_note(f"FM vs FIX-{FIX_DEGREE}: {versus.explanation()}")
    result.add_note(
        "FIX admits every request immediately, so its over-subscription "
        "cost is booked as processor-sharing contention — the "
        "simulator's analogue of thread-pool queueing (DESIGN.md §15)"
    )

    # Panel 3: FM overload regression — highest load vs headline load.
    high, low = LOAD_POINTS[-1], LOAD_POINTS[0]
    regression = diff_runs(entries[("FM", high)], entries[("FM", low)])
    result.add_table(
        f"FM regression: {high:g} RPS vs {low:g} RPS, explanation ranking",
        PHASE_COLUMNS,
        phase_rows(regression),
    )
    result.add_note(f"FM {high:g} vs {low:g} RPS: {regression.explanation()}")
    result.add_note(
        "rerun any of these offline: `repro-fm run-diff --ledger runs/` "
        "then `repro diff 'FM@45' 'FIX-3@45' --runs runs/`"
    )
    return result


#: Registry (merged into the CLI's experiment list).
RUN_DIFF = {"run-diff": experiment_run_diff}
