"""One function per table/figure of the paper's evaluation.

Each function runs the corresponding experiment at a configurable
:class:`~repro.experiments.config.Scale` and returns a
:class:`~repro.experiments.report.FigureResult` whose panels carry the
same rows/series the paper plots.  The EXPERIMENTS.md index records
paper-vs-measured numbers produced by these functions at full scale.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.aggregator import cluster_tail, required_per_server_percentile
from repro.core.capacity import max_sustainable_rps, server_reduction
from repro.core.demand import DemandProfile
from repro.core.scalability import speedup_report
from repro.core.search import SearchConfig, build_interval_table
from repro.core.speedup import TabulatedSpeedup
from repro.core.theory import WorkSchedule, WorkSegment
from repro.experiments.config import Scale, default_scale
from repro.experiments.report import FigureResult
from repro.experiments.runner import run_policy, run_sweep
from repro.experiments.tables import bing_table, lucene_table
from repro.schedulers import (
    AdaptiveScheduler,
    ClairvoyantScheduler,
    FixedScheduler,
    FMScheduler,
    SequentialScheduler,
    SimpleIntervalScheduler,
)
from repro.schedulers.clairvoyant import tune_threshold
from repro.workloads import bing as bing_mod
from repro.workloads import lucene as lucene_mod
from repro.workloads.arrivals import PiecewiseRateProcess

__all__ = [
    "fig1_bing_workload",
    "fig2_lucene_workload",
    "fig3_fixed_parallelism",
    "fig4_simple_interval",
    "fig5_example_table",
    "table2_lucene_intervals",
    "fig8_fm_vs_fixed",
    "fig9_fm_characteristics",
    "fig10_state_of_the_art",
    "fig11_load_variation",
    "fig12_bing",
    "tco_capacity",
    "theorem1_check",
    "cluster_aggregation",
    "ALL_EXPERIMENTS",
]

#: Lucene RPS grid used across figures (subset of the paper's 30-48).
_LUCENE_RPS = [30, 33, 36, 38, 40, 43, 45, 47]
#: Bing RPS grid (Figure 12).
_BING_RPS = [100, 150, 180, 220, 260, 300, 350]


def _workload_panel(result: FigureResult, profile: DemandProfile, bin_ms: float) -> None:
    """Shared demand-histogram + statistics panels for Figures 1/2."""
    edges, counts = profile.histogram(bin_ms)
    rows = [
        [f"{edges[i]:.0f}-{edges[i + 1]:.0f}", int(counts[i])]
        for i in range(len(counts))
        if counts[i] > 0
    ]
    result.add_table("(a) sequential execution time histogram",
                     ["bin (ms)", "# requests"], rows)
    result.add_table(
        "demand statistics",
        ["metric", "value"],
        [
            ["requests", len(profile)],
            ["median (ms)", profile.median()],
            ["mean (ms)", profile.mean()],
            ["99th percentile (ms)", profile.percentile(0.99)],
            ["max (ms)", profile.max()],
            ["p99 / median", profile.percentile(0.99) / profile.median()],
        ],
    )
    speedups = speedup_report(profile)
    result.add_table(
        "(b) average speedup by parallelism degree",
        ["degree", "longest 5%", "all requests", "shortest 5%"],
        [[r.degree, r.longest, r.all_requests, r.shortest] for r in speedups],
    )


def fig1_bing_workload(scale: Scale | None = None) -> FigureResult:
    """Figure 1: Bing demand distribution and average speedup."""
    scale = scale or default_scale()
    workload = bing_mod.bing_workload(profile_size=scale.profile_size)
    profile = workload.profile
    result = FigureResult("fig1", "Bing demand distribution and average speedup")
    _workload_panel(result, profile, bin_ms=5.0)
    below_15 = float(np.dot(profile.seq < 15.0, profile.weights) / profile.total_weight)
    result.add_note(f"fraction below 15 ms: {below_15:.3f} (paper: > 0.85)")
    result.add_note("paper: long requests exceed 2x speedup at degree 3; short ~1.2x")
    return result


def fig2_lucene_workload(scale: Scale | None = None) -> FigureResult:
    """Figure 2: Lucene demand distribution and average speedup."""
    scale = scale or default_scale()
    workload = lucene_mod.lucene_workload(profile_size=scale.profile_size)
    profile = workload.profile
    result = FigureResult("fig2", "Lucene demand distribution and average speedup")
    _workload_panel(result, profile, bin_ms=20.0)
    result.add_note(f"median {profile.median():.0f} ms (paper: 186 ms)")
    result.add_note("paper: near-linear speedup at degree 2, ineffective at 5+")
    return result


def _lucene_sweep(schedulers, scale: Scale, rps_values=None, keep_results=False):
    workload = lucene_mod.lucene_workload(profile_size=scale.profile_size)
    return run_sweep(
        schedulers,
        workload,
        rps_values or _LUCENE_RPS,
        cores=lucene_mod.CORES,
        num_requests=scale.num_requests,
        quantum_ms=lucene_mod.QUANTUM_MS,
        repeats=scale.repeats,
        keep_results=keep_results,
        spin_fraction=lucene_mod.SPIN_FRACTION,
    )


def _series_tables(result: FigureResult, sweep, caption_prefix: str = "") -> None:
    policies = sweep.policies()
    rps_values = sweep[policies[0]].rps_values
    tail_rows = [
        [rps] + [sweep[p].tail_ms[i] for p in policies]
        for i, rps in enumerate(rps_values)
    ]
    mean_rows = [
        [rps] + [sweep[p].mean_ms[i] for p in policies]
        for i, rps in enumerate(rps_values)
    ]
    result.add_table(
        f"{caption_prefix}(a) 99th percentile latency (ms) vs RPS",
        ["RPS"] + policies, tail_rows,
    )
    result.add_table(
        f"{caption_prefix}(b) mean latency (ms) vs RPS",
        ["RPS"] + policies, mean_rows,
    )


def fig3_fixed_parallelism(scale: Scale | None = None) -> FigureResult:
    """Figure 3: effect of fixed parallelism (SEQ vs FIX-4) on latency."""
    scale = scale or default_scale()
    sweep = _lucene_sweep([SequentialScheduler(), FixedScheduler(4)], scale)
    result = FigureResult("fig3", "Effect of fixed parallelism on latency in Lucene")
    _series_tables(result, sweep)
    result.add_note(
        "paper: FIX-4 beats SEQ at low load but crosses above it around 42 RPS"
    )
    return result


def fig4_simple_interval(scale: Scale | None = None) -> FigureResult:
    """Figure 4: fixed-interval incremental parallelism strawman."""
    scale = scale or default_scale()
    schedulers = [
        SequentialScheduler(),
        FixedScheduler(4),
        SimpleIntervalScheduler(20.0, lucene_mod.MAX_DEGREE),
        SimpleIntervalScheduler(100.0, lucene_mod.MAX_DEGREE),
        SimpleIntervalScheduler(500.0, lucene_mod.MAX_DEGREE),
    ]
    sweep = _lucene_sweep(schedulers, scale)
    result = FigureResult(
        "fig4", "99th percentile latency of simple fixed-interval parallelism"
    )
    _series_tables(result, sweep)
    result.add_note(
        "paper: short intervals win at low load, long intervals at high load; "
        "no fixed interval wins across the spectrum"
    )
    return result


def fig5_example_table(scale: Scale | None = None) -> FigureResult:
    """Figure 5: the worked 50/150 ms example's interval table."""
    seq = np.array([50.0, 150.0])
    speedups = np.array([[1.0, 1.5, 2.0], [1.0, 1.5, 2.0]])
    profile = DemandProfile(seq, speedups)
    config = SearchConfig(max_degree=3, target_parallelism=6.0, step_ms=50.0)
    table = build_interval_table(profile, config)
    result = FigureResult("fig5", "Worked example interval table (6 cores, s(3)=2)")
    result.add_table(
        "interval table",
        ["q_r", "schedule"],
        [[load, schedule.describe()] for load, schedule in table.rows()],
    )
    result.add_note(
        "paper rows: q<=2 -> (0,d3); q=3 -> (0,d1)(50,d3); 4-6 -> (50,d1)(100,d3); "
        ">=7 -> e1.  The search may find strictly better rows under Eq.(1)-(5) "
        "(e.g. (0,d1)(100,d3) at q=4 has tail 125 ms vs the paper's 150 ms) — "
        "the paper's hand-built example is illustrative, not optimal."
    )
    return result


def table2_lucene_intervals(scale: Scale | None = None) -> FigureResult:
    """Table 2: the Lucene interval table (target_p = 24, n = 4)."""
    scale = scale or default_scale()
    table = lucene_table(scale)
    result = FigureResult("table2", "Lucene interval table")
    result.add_table(
        "interval table (ms)",
        ["q_r", "schedule"],
        [[load, schedule.describe()] for load, schedule in table.rows()],
    )
    capacity = table.admission_capacity()
    result.add_note(f"admission capacity (e1 row): {capacity} (paper: 25)")
    result.add_note(
        "paper structure: low loads start at degree 4; intervals lengthen and "
        "admission delays grow with load"
    )
    return result


def fig8_fm_vs_fixed(scale: Scale | None = None) -> FigureResult:
    """Figure 8: FM vs SEQ/FIX-2/FIX-4 latency."""
    scale = scale or default_scale()
    table = lucene_table(scale)
    schedulers = [
        SequentialScheduler(),
        FixedScheduler(2),
        FixedScheduler(4),
        FMScheduler(table),
    ]
    sweep = _lucene_sweep(schedulers, scale)
    result = FigureResult("fig8", "Lucene latency compared to fixed parallelism")
    _series_tables(result, sweep)
    if 40 in sweep["FM"].rps_values:
        improvement = sweep.improvement("FIX-2", "FM", 40)
        result.add_note(
            f"FM vs FIX-2 tail reduction at 40 RPS: {improvement:.0%} (paper: 33%)"
        )
    if 43 in sweep["FM"].rps_values:
        improvement = sweep.improvement("FIX-2", "FM", 43)
        result.add_note(
            f"FM vs FIX-2 tail reduction at 43 RPS: {improvement:.0%} (paper: 40%)"
        )
    return result


def fig9_fm_characteristics(scale: Scale | None = None) -> FigureResult:
    """Figure 9: FM parallelism degrees and thread counts."""
    scale = scale or default_scale()
    table = lucene_table(scale)
    workload = lucene_mod.lucene_workload(profile_size=scale.profile_size)
    result = FigureResult("fig9", "Lucene FM parallelism breakdown")

    rows_a = []
    rows_c = []
    degree_panels = []
    load_labels = {31: "Very low", 36: "Low", 40: "Medium", 45: "High"}
    for rps in [31, 33, 36, 38, 40, 43, 45, 47]:
        run = run_policy(
            FMScheduler(table),
            workload,
            rps=rps,
            cores=lucene_mod.CORES,
            num_requests=scale.num_requests,
            quantum_ms=lucene_mod.QUANTUM_MS,
            seed=911 + rps,
            spin_fraction=lucene_mod.SPIN_FRACTION,
        )
        rows_a.append(
            [
                rps,
                run.average_parallelism(0.95, 1.0),
                run.average_parallelism(0.0, 1.0),
                run.average_parallelism(0.0, 0.05),
            ]
        )
        rows_c.append([rps, run.average_threads(), 100.0 * run.cpu_utilization()])
        if rps in load_labels:
            hist = run.final_degree_histogram()
            degree_panels.append(
                [load_labels[rps]]
                + [100.0 * hist.get(d, 0.0) for d in range(1, lucene_mod.MAX_DEGREE + 1)]
            )

    result.add_table(
        "(a) average request parallelism vs RPS",
        ["RPS", "longest 5%", "all requests", "shortest 5%"], rows_a,
    )
    result.add_table(
        "(b) completion-degree distribution by load (% of requests)",
        ["load"] + [f"d{d}" for d in range(1, lucene_mod.MAX_DEGREE + 1)],
        degree_panels,
    )
    result.add_table(
        "(c) threads in system and CPU utilization",
        ["RPS", "avg threads", "CPU util %"], rows_c,
    )
    result.add_note(
        "paper: avg threads 17-25 (target 24); high load runs 19% of requests "
        "sequentially; long requests get ~3x the parallelism of short ones"
    )
    return result


def fig10_state_of_the_art(scale: Scale | None = None) -> FigureResult:
    """Figure 10: FM vs Adaptive and RC; boosting ablation."""
    scale = scale or default_scale()
    table = lucene_table(scale)
    workload = lucene_mod.lucene_workload(profile_size=scale.profile_size)
    rc_threshold = tune_threshold(
        workload.profile,
        degree=lucene_mod.MAX_DEGREE,
        target_parallelism=lucene_mod.TARGET_PARALLELISM,
    )
    schedulers = {
        "Adaptive": AdaptiveScheduler(
            lucene_mod.MAX_DEGREE, lucene_mod.TARGET_PARALLELISM
        ),
        "RC": ClairvoyantScheduler(rc_threshold, lucene_mod.MAX_DEGREE),
        "FM": FMScheduler(table),
    }
    sweep = _lucene_sweep(schedulers, scale)
    result = FigureResult("fig10", "Lucene: FM vs Adaptive and Request-Clairvoyant")
    _series_tables(result, sweep)
    result.add_note(f"RC threshold tuned offline: {rc_threshold:.0f} ms (paper: 225 ms)")

    boost_sweep = _lucene_sweep(
        {
            "FIX-3": FixedScheduler(3),
            "FIX-3 boosting": FixedScheduler(3, boost_after_ms=rc_threshold),
            "FM no boosting": FMScheduler(table, boosting=False),
            "FM": FMScheduler(table),
        },
        scale,
        rps_values=[36, 40, 43, 45],
    )
    policies = boost_sweep.policies()
    result.add_table(
        "(c) selective thread priority boosting: 99th percentile latency (ms)",
        ["RPS"] + policies,
        [
            [rps] + [boost_sweep[p].tail_ms[i] for p in policies]
            for i, rps in enumerate(boost_sweep[policies[0]].rps_values)
        ],
    )
    if 40 in boost_sweep["FM"].rps_values:
        gain = boost_sweep.improvement("FM no boosting", "FM", 40)
        result.add_note(f"boosting gain for FM at 40 RPS: {gain:.0%} (paper: 12%)")
    result.add_note("paper: FM beats Adaptive by 32% and RC by 22% at 40 RPS")
    return result


def fig11_load_variation(scale: Scale | None = None) -> FigureResult:
    """Figure 11: tail latency under alternating 45/30 RPS load bursts."""
    scale = scale or default_scale()
    table = lucene_table(scale)
    workload = lucene_mod.lucene_workload(profile_size=scale.profile_size)
    quantum = max(50, scale.num_requests // 4)
    window = max(20, quantum // 5)
    process = PiecewiseRateProcess(
        [(45.0, quantum), (30.0, quantum), (45.0, quantum), (30.0, quantum)]
    )
    n = 4 * quantum
    schedulers = [
        SequentialScheduler(),
        FixedScheduler(2),
        FixedScheduler(4),
        FMScheduler(table),
    ]
    result = FigureResult("fig11", "Lucene tail latency under load variation")
    rows = []
    labels = ["45 RPS", "30 RPS", "45 RPS (2)", "30 RPS (2)"]
    columns = ["quantum"] + [s.name for s in schedulers]
    per_policy: dict[str, list[float]] = {}
    for scheduler in schedulers:
        run = run_policy(
            scheduler,
            workload,
            rps=45.0,  # ignored: process overrides
            cores=lucene_mod.CORES,
            num_requests=n,
            quantum_ms=lucene_mod.QUANTUM_MS,
            seed=1311,
            process=process,
            spin_fraction=lucene_mod.SPIN_FRACTION,
        )
        tails = []
        for start, stop in process.quantum_boundaries(n):
            window_slice = run.slice_by_arrival(max(start, stop - window), stop)
            tails.append(window_slice.tail_latency_ms(0.99))
        per_policy[scheduler.name] = tails
    for i, label in enumerate(labels):
        rows.append([label] + [per_policy[s.name][i] for s in schedulers])
    result.add_table(
        f"99th percentile latency of the last {window} requests per quantum (ms)",
        columns, rows,
    )
    result.add_note(
        "paper: FM adapts within the quantum and is consistently best; FIX-4 "
        "matches FM at low load but degrades badly in the bursts"
    )
    return result


def fig12_bing(scale: Scale | None = None) -> FigureResult:
    """Figure 12: Bing ISN comparisons and parallelism distributions."""
    scale = scale or default_scale()
    table = bing_table(scale)
    workload = bing_mod.bing_workload(profile_size=scale.profile_size)
    n = scale.num_requests * scale.bing_factor
    schedulers = {
        "SEQ": SequentialScheduler(),
        "FIX-3": FixedScheduler(3, load_protection=30),
        "Adaptive": AdaptiveScheduler(bing_mod.MAX_DEGREE, bing_mod.TARGET_PARALLELISM),
        "FM": FMScheduler(table, boosting=False),
    }
    sweep = run_sweep(
        schedulers,
        workload,
        _BING_RPS,
        cores=bing_mod.CORES,
        num_requests=n,
        quantum_ms=bing_mod.QUANTUM_MS,
        repeats=scale.repeats,
        spin_fraction=bing_mod.SPIN_FRACTION,
    )
    result = FigureResult("fig12", "Bing ISN: FM vs SEQ, FIX-3, Adaptive")
    policies = sweep.policies()
    result.add_table(
        "(a) 99th percentile latency (ms) vs RPS",
        ["RPS"] + policies,
        [
            [rps] + [sweep[p].tail_ms[i] for p in policies]
            for i, rps in enumerate(sweep[policies[0]].rps_values)
        ],
    )

    degree_rows = []
    thread_rows = []
    for label, rps in [("Low (200 RPS)", 200), ("High (280 RPS)", 280)]:
        run = run_policy(
            FMScheduler(table, boosting=False),
            workload,
            rps=rps,
            cores=bing_mod.CORES,
            num_requests=n,
            quantum_ms=bing_mod.QUANTUM_MS,
            seed=1207 + rps,
            spin_fraction=bing_mod.SPIN_FRACTION,
        )
        hist = run.final_degree_histogram()
        degree_rows.append(
            [label] + [100.0 * hist.get(d, 0.0) for d in range(1, bing_mod.MAX_DEGREE + 1)]
        )
        dist = run.thread_count_distribution([(0, 10), (11, 20), (21, 23)])
        thread_rows.append([label] + [100.0 * v for v in dist.values()])
    result.add_table(
        "(b) request-parallelism distribution (% of requests)",
        ["load"] + [f"d{d}" for d in range(1, bing_mod.MAX_DEGREE + 1)],
        degree_rows,
    )
    result.add_table(
        "(c) thread-count distribution (% of time)",
        ["load", "<11", "11-20", "21-23"],
        thread_rows,
    )
    if 180 in sweep["FM"].rps_values:
        improvement = sweep.improvement("Adaptive", "FM", 180)
        result.add_note(
            f"FM vs Adaptive tail reduction at 180 RPS: {improvement:.0%} (paper: 26%)"
        )
    result.add_note(
        "paper: FM holds ~100 ms to 260 RPS; FIX-3 exceeds 200 ms past 150 RPS; "
        ">50% of requests finish sequentially at high load"
    )
    return result


def tco_capacity(scale: Scale | None = None) -> FigureResult:
    """Section 7 TCO claim: servers saved by FM vs Adaptive at a 120 ms
    tail target."""
    scale = scale or default_scale()
    table = bing_table(scale)
    workload = bing_mod.bing_workload(profile_size=scale.profile_size)
    n = scale.num_requests * scale.bing_factor
    sweep = run_sweep(
        {
            "Adaptive": AdaptiveScheduler(bing_mod.MAX_DEGREE, bing_mod.TARGET_PARALLELISM),
            "FM": FMScheduler(table, boosting=False),
        },
        workload,
        _BING_RPS,
        cores=bing_mod.CORES,
        num_requests=n,
        quantum_ms=bing_mod.QUANTUM_MS,
        repeats=scale.repeats,
        spin_fraction=bing_mod.SPIN_FRACTION,
    )
    target = 120.0
    adaptive_rps = max_sustainable_rps(sweep["Adaptive"].tail_points(), target)
    fm_rps = max_sustainable_rps(sweep["FM"].tail_points(), target)
    result = FigureResult("tco", "Capacity planning at a 120 ms tail target")
    result.add_table(
        "max sustainable load under the target",
        ["policy", "max RPS @ 120 ms tail"],
        [["Adaptive", adaptive_rps], ["FM", fm_rps]],
    )
    if adaptive_rps > 0 and fm_rps > 0:
        saving = server_reduction(
            sweep["Adaptive"].tail_points(), sweep["FM"].tail_points(), target
        )
        result.add_table(
            "fleet sizing", ["metric", "value"],
            [["server reduction (FM vs Adaptive)", f"{saving:.0%}"]],
        )
        result.add_note(f"paper: 42% fewer servers (measured: {saving:.0%})")
    else:
        result.add_note("a policy failed to meet the target at all measured loads")
    return result


def theorem1_check(scale: Scale | None = None) -> FigureResult:
    """Theorem 1 ablation: few-to-many ordering minimizes resource usage."""
    scale = scale or default_scale()
    workload = lucene_mod.lucene_workload(profile_size=scale.profile_size)
    profile = workload.profile
    speedup = TabulatedSpeedup([1.0, 1.8, 2.4, 2.8])
    w = profile.percentile(0.99)
    segments = [
        WorkSegment(0.4 * w, 1),
        WorkSegment(0.3 * w, 2),
        WorkSegment(0.2 * w, 3),
        WorkSegment(0.1 * w, 4),
    ]
    fm_order = WorkSchedule(segments)
    rows = []
    rng = np.random.default_rng(5)
    orderings = {"few-to-many": fm_order}
    for trial in range(4):
        perm = list(segments)
        rng.shuffle(perm)
        orderings[f"shuffle-{trial}"] = WorkSchedule(perm)
    orderings["many-to-few"] = WorkSchedule(list(reversed(segments)))
    for name, schedule in orderings.items():
        rows.append(
            [
                name,
                schedule.resource_usage(profile, speedup),
                schedule.processing_time(speedup),
                schedule.is_non_decreasing(),
            ]
        )
    result = FigureResult("thm1", "Theorem 1: resource usage by parallelism ordering")
    result.add_table(
        "expected resource usage (core-ms/request) by segment ordering",
        ["ordering", "resource usage", "processing time", "non-decreasing"],
        rows,
    )
    best = min(row[1] for row in rows)
    result.add_note(
        f"few-to-many usage {rows[0][1]:.1f} equals the minimum {best:.1f}; "
        "processing time identical for all orderings (Theorem 1)"
    )
    return result


def cluster_aggregation(scale: Scale | None = None) -> FigureResult:
    """Section 7 motivation: per-ISN 99th drives the cluster 90th."""
    scale = scale or default_scale()
    table = bing_table(scale)
    workload = bing_mod.bing_workload(profile_size=scale.profile_size)
    run = run_policy(
        FMScheduler(table, boosting=False),
        workload,
        rps=230,
        cores=bing_mod.CORES,
        num_requests=scale.num_requests * scale.bing_factor,
        quantum_ms=bing_mod.QUANTUM_MS,
        seed=77,
        spin_fraction=bing_mod.SPIN_FRACTION,
    )
    latencies = run.latencies_ms()
    rng = np.random.default_rng(99)
    rows = []
    for num_isns in (1, 10, 40, 100):
        rows.append(
            [
                num_isns,
                required_per_server_percentile(0.9, num_isns),
                cluster_tail(latencies, num_isns, 0.9, rng),
            ]
        )
    result = FigureResult("agg", "Fan-out aggregation: per-ISN tails at cluster scale")
    result.add_table(
        "cluster 90th percentile under n-way fan-out (FM ISN at 230 RPS)",
        ["ISNs", "required per-ISN percentile", "cluster p90 (ms)"],
        rows,
    )
    result.add_note(
        "paper: with 10 ISNs, a 90% cluster target needs ~99% per-ISN compliance"
    )
    return result


#: Registry for the CLI and smoke tests.
ALL_EXPERIMENTS = {
    "fig1": fig1_bing_workload,
    "fig2": fig2_lucene_workload,
    "fig3": fig3_fixed_parallelism,
    "fig4": fig4_simple_interval,
    "fig5": fig5_example_table,
    "table2": table2_lucene_intervals,
    "fig8": fig8_fm_vs_fixed,
    "fig9": fig9_fm_characteristics,
    "fig10": fig10_state_of_the_art,
    "fig11": fig11_load_variation,
    "fig12": fig12_bing,
    "tco": tco_capacity,
    "thm1": theorem1_check,
    "agg": cluster_aggregation,
}
