"""Experiment runner: single runs and load sweeps.

Mirrors the paper's methodology: an open-loop client replays a request
trace at a configured RPS against one simulated server; each plotted
point is the 99th-percentile / mean response time over the run
(optionally averaged over independent seeds).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.hetero.pools import Topology
from repro.sim.api import Scheduler
from repro.sim.engine import simulate
from repro.sim.metrics import SimulationResult
from repro.telemetry import Telemetry
from repro.telemetry.histogram import LogHistogram
from repro.workloads.arrivals import ArrivalProcess, PoissonProcess
from repro.workloads.workload import Workload

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.faults.plan import FaultPlan
    from repro.observe.live import LivePlane

__all__ = [
    "run_policy",
    "stream_policy",
    "run_sweep",
    "SweepResult",
    "PolicySeries",
    "cell_seed",
    "latency_histogram",
]


def cell_seed(seed: int, rps_index: int, repeat: int) -> int:
    """The RNG seed for one ``(rps, repeat)`` sweep cell.

    Depends only on the base seed and the cell coordinates — *not* on
    the policy — so every policy sees identical traces at each load
    point (the paired-comparison discipline), and so the serial and
    parallel sweep paths reproduce each other's runs exactly.
    """
    return seed + 7919 * rps_index + 104729 * repeat


def latency_histogram(result: SimulationResult) -> LogHistogram:
    """One run's completion latencies as a mergeable log histogram.

    Built per run and merged across repeats (rather than recorded
    straight into an accumulating histogram) so the serial and parallel
    sweep paths perform the identical sequence of float operations.
    """
    histogram = LogHistogram()
    for record in result.records:
        histogram.record(record.latency_ms)
    return histogram


def _named_schedulers(
    schedulers: Sequence[Scheduler] | dict[str, Scheduler],
) -> list[tuple[str, Scheduler]]:
    """Normalize a scheduler collection to unique ``(name, scheduler)``."""
    if isinstance(schedulers, dict):
        named = list(schedulers.items())
    else:
        named = [(s.name, s) for s in schedulers]
    if len({name for name, _ in named}) != len(named):
        raise ConfigurationError("duplicate policy names in sweep")
    return named


def run_policy(
    scheduler: Scheduler,
    workload: Workload,
    rps: float,
    cores: int,
    num_requests: int = 2000,
    quantum_ms: float = 5.0,
    seed: int = 42,
    process: ArrivalProcess | None = None,
    spin_fraction: float = 0.25,
    telemetry: Telemetry | None = None,
    topology: Topology | None = None,
    fault_plan: "FaultPlan | None" = None,
    live: "LivePlane | None" = None,
) -> SimulationResult:
    """One experiment run: ``num_requests`` open-loop arrivals at
    ``rps`` against a ``cores``-core server under ``scheduler``.

    ``topology`` switches the server to heterogeneous core pools with
    energy accounting (``topology.total_cores`` must equal ``cores``).
    ``fault_plan`` injects canned faults (``repro.faults``), and
    ``live`` attaches a live observability plane
    (:class:`~repro.observe.live.LivePlane`) fed by every completion.
    """
    rng = np.random.default_rng(seed)
    arrivals = workload.arrivals(num_requests, process or PoissonProcess(rps), rng)
    return simulate(
        arrivals,
        scheduler,
        cores=cores,
        quantum_ms=quantum_ms,
        spin_fraction=spin_fraction,
        telemetry=telemetry,
        topology=topology,
        fault_plan=fault_plan,
        live=live,
    )


def stream_policy(
    scheduler: Scheduler,
    workload: Workload,
    rps: float,
    cores: int,
    num_requests: int,
    quantum_ms: float = 5.0,
    seed: int = 42,
    process: ArrivalProcess | None = None,
    spin_fraction: float = 0.25,
    fault_plan: "FaultPlan | None" = None,
    vectorized: bool = False,
    chunk_size: int = 8192,
):
    """:func:`run_policy` for million-request runs: arrivals are
    generated lazily and completions fold into a
    :class:`~repro.sim.stream.StreamSummary`, so memory stays
    O(running set) regardless of ``num_requests`` (DESIGN.md §14).

    Note the seeded universe differs from :func:`run_policy`'s —
    :meth:`~repro.workloads.workload.Workload.arrival_stream` splits
    the demand and time RNG streams (that split is what makes the
    trace chunk-size invariant), so the same seed denotes different
    traces in the two APIs.
    """
    from repro.sim.stream import simulate_stream

    arrivals = workload.arrival_stream(
        num_requests,
        process or PoissonProcess(rps),
        seed=seed,
        chunk_size=chunk_size,
    )
    return simulate_stream(
        arrivals,
        scheduler,
        cores=cores,
        quantum_ms=quantum_ms,
        spin_fraction=spin_fraction,
        fault_plan=fault_plan,
        vectorized=vectorized,
    )


@dataclass
class PolicySeries:
    """One policy's measurements across the swept loads."""

    policy: str
    rps_values: list[float]
    tail_ms: list[float]
    mean_ms: list[float]
    results: list[list[SimulationResult]] = field(default_factory=list)
    #: Per-load-point completion-latency histograms, merged across
    #: repeats — the mergeable summary that lets the parallel sweep
    #: runner combine worker results without shipping full records.
    histograms: list[LogHistogram] = field(default_factory=list)

    def tail_points(self) -> list[tuple[float, float]]:
        """``(rps, 99th-percentile latency)`` pairs."""
        return list(zip(self.rps_values, self.tail_ms))

    def mean_points(self) -> list[tuple[float, float]]:
        """``(rps, mean latency)`` pairs."""
        return list(zip(self.rps_values, self.mean_ms))


@dataclass
class SweepResult:
    """All policies' series over one load sweep."""

    series: dict[str, PolicySeries]

    def __getitem__(self, policy: str) -> PolicySeries:
        return self.series[policy]

    def policies(self) -> list[str]:
        return list(self.series)

    def improvement(self, baseline: str, improved: str, rps: float) -> float:
        """Relative 99th-percentile reduction of ``improved`` over
        ``baseline`` at the given load: ``1 - improved/baseline``."""
        base = dict(self.series[baseline].tail_points())[rps]
        new = dict(self.series[improved].tail_points())[rps]
        return 1.0 - new / base


def run_sweep(
    schedulers: Sequence[Scheduler] | dict[str, Scheduler],
    workload: Workload,
    rps_values: Sequence[float],
    cores: int,
    num_requests: int = 2000,
    quantum_ms: float = 5.0,
    seed: int = 42,
    repeats: int = 1,
    phi: float = 0.99,
    keep_results: bool = False,
    spin_fraction: float = 0.25,
    workers: int | None = None,
    topology: Topology | None = None,
) -> SweepResult:
    """Sweep load for every policy.

    Each (policy, rps, repeat) run draws its trace from a seed that
    depends only on ``(seed, rps, repeat)`` — all policies see
    *identical traces* at each point, the paired-comparison discipline
    that makes relative improvements meaningful at small run counts.

    ``workers`` fans the policy x load grid across a process pool (see
    :mod:`repro.parallel`); ``None`` uses the ambient default installed
    by :func:`repro.parallel.default_workers` (1 — in-process serial —
    unless something like the CLI's ``--workers`` raised it).  Both
    paths produce identical results for the same seed.
    """
    if workers is None:
        from repro.parallel import get_default_workers

        workers = get_default_workers()
    if workers != 1:
        from repro.parallel import run_sweep_parallel

        return run_sweep_parallel(
            schedulers,
            workload,
            rps_values,
            cores,
            num_requests=num_requests,
            quantum_ms=quantum_ms,
            seed=seed,
            repeats=repeats,
            phi=phi,
            keep_results=keep_results,
            spin_fraction=spin_fraction,
            workers=workers,
            topology=topology,
        )

    named = _named_schedulers(schedulers)
    if repeats < 1:
        raise ConfigurationError(f"repeats must be >= 1: {repeats}")

    series: dict[str, PolicySeries] = {}
    for name, scheduler in named:
        tails: list[float] = []
        means: list[float] = []
        kept: list[list[SimulationResult]] = []
        histograms: list[LogHistogram] = []
        for rps_index, rps in enumerate(rps_values):
            run_tails: list[float] = []
            run_means: list[float] = []
            point_results: list[SimulationResult] = []
            point_histogram = LogHistogram()
            for repeat in range(repeats):
                result = run_policy(
                    scheduler,
                    workload,
                    rps=rps,
                    cores=cores,
                    num_requests=num_requests,
                    quantum_ms=quantum_ms,
                    seed=cell_seed(seed, rps_index, repeat),
                    spin_fraction=spin_fraction,
                    topology=topology,
                )
                run_tails.append(result.tail_latency_ms(phi))
                run_means.append(result.mean_latency_ms())
                point_histogram.update(latency_histogram(result))
                if keep_results:
                    point_results.append(result)
            tails.append(float(np.mean(run_tails)))
            means.append(float(np.mean(run_means)))
            histograms.append(point_histogram)
            if keep_results:
                kept.append(point_results)
        series[name] = PolicySeries(
            policy=name,
            rps_values=[float(r) for r in rps_values],
            tail_ms=tails,
            mean_ms=means,
            results=kept,
            histograms=histograms,
        )
    return SweepResult(series=series)
