"""Telemetry overhead experiment (beyond the paper).

Instrumentation only earns its keep if the disabled path is free and
the enabled path is cheap.  This experiment measures both, per layer:

* **Simulator** — the same FM run with telemetry explicitly disabled
  vs enabled; overhead is the wall-time ratio, throughput is requests
  simulated per second.
* **Search executor** — a query batch against a synthetic segmented
  index, disabled vs enabled (two spans + five metric updates per
  query).
* **Cluster** — a robust fan-out run with hedging and a deadline,
  reporting the spans and counters the cluster layer emits.

The "off" runs pass an explicit ``Telemetry(enabled=False)``, which
also suppresses any ambiently installed pipeline (e.g. the CLI's
``--trace``) — the comparison stays honest under tracing.
"""

from __future__ import annotations

import time

from repro.cluster.hedging import HedgePolicy
from repro.cluster.simulation import simulate_cluster_robust
from repro.experiments.config import Scale, default_scale
from repro.experiments.report import FigureResult
from repro.experiments.runner import run_policy
from repro.experiments.tables import bing_table
from repro.schedulers import FMScheduler
from repro.search.corpus import generate_corpus, generate_query_log
from repro.search.executor import SearchEngine
from repro.search.index import InvertedIndex
from repro.search.query import parse_query
from repro.telemetry import Telemetry
from repro.workloads import bing as bing_mod
from repro.workloads.arrivals import PoissonProcess

__all__ = ["experiment_telemetry", "TELEMETRY"]

#: Timing repetitions per cell (best-of, to shed scheduler noise).
TIMING_REPEATS = 3


def _best_of(fn, repeats: int = TIMING_REPEATS) -> tuple[float, object]:
    """Wall-time the callable ``repeats`` times; return (best_s, last_result)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _sim_cell(scale: Scale, telemetry: Telemetry) -> tuple[float, int]:
    """One simulator timing cell; returns (best_s, events recorded)."""
    table = bing_table(scale)
    workload = bing_mod.bing_workload(profile_size=scale.profile_size)

    def run():
        telemetry.reset()
        return run_policy(
            FMScheduler(table),
            workload,
            rps=180.0,
            cores=bing_mod.CORES,
            num_requests=scale.num_requests * 2,
            quantum_ms=bing_mod.QUANTUM_MS,
            spin_fraction=bing_mod.SPIN_FRACTION,
            telemetry=telemetry,
        )

    best, _ = _best_of(run)
    return best, len(telemetry.tracer.spans)


def _search_cell(scale: Scale, telemetry: Telemetry) -> tuple[float, int, int]:
    """One search timing cell; returns (best_s, queries, spans)."""
    documents = generate_corpus(max(200, scale.num_requests), seed=7)
    index = InvertedIndex.build(documents, num_segments=8)
    queries = [
        parse_query(text)
        for text in generate_query_log(max(100, scale.num_requests // 2), seed=11)
    ]
    engine = SearchEngine(index, telemetry=telemetry)

    def run():
        telemetry.reset()
        for query in queries:
            engine.execute(query)

    best, _ = _best_of(run)
    return best, len(queries), len(telemetry.tracer.spans)


def experiment_telemetry(scale: Scale | None = None) -> FigureResult:
    """Per-layer telemetry overhead: disabled vs enabled wall time."""
    scale = scale or default_scale()
    result = FigureResult(
        "telemetry", "Telemetry overhead: metrics + spans, per layer"
    )

    # --- Panel 1: simulator off vs on --------------------------------
    off = Telemetry(enabled=False)
    on = Telemetry()
    off_s, _ = _sim_cell(scale, off)
    on_s, spans = _sim_cell(scale, on)
    num_requests = scale.num_requests * 2
    result.add_table(
        "FM simulator at 180 RPS (Bing workload, best of "
        f"{TIMING_REPEATS} runs)",
        ["telemetry", "wall (s)", "requests/s", "spans", "overhead"],
        [
            ["off", off_s, num_requests / off_s, 0, "--"],
            ["on", on_s, num_requests / on_s, spans, f"{on_s / off_s - 1:+.1%}"],
        ],
    )

    # --- Panel 2: search executor off vs on --------------------------
    off_s, num_queries, _ = _search_cell(scale, Telemetry(enabled=False))
    on_s, _, spans = _search_cell(scale, Telemetry())
    result.add_table(
        "search executor, synthetic Zipf corpus (8 segments, best of "
        f"{TIMING_REPEATS} runs)",
        ["telemetry", "wall (s)", "queries/s", "spans", "overhead"],
        [
            ["off", off_s, num_queries / off_s, 0, "--"],
            ["on", on_s, num_queries / on_s, spans, f"{on_s / off_s - 1:+.1%}"],
        ],
    )

    # --- Panel 3: what the cluster layer emits -----------------------
    cluster_tel = Telemetry()
    workload = bing_mod.bing_workload(profile_size=scale.profile_size)
    table = bing_table(scale)
    simulate_cluster_robust(
        scheduler_factory=lambda: FMScheduler(table, boosting=False),
        workload=workload,
        num_servers=4,
        num_queries=scale.num_requests,
        process=PoissonProcess(180.0),
        cores=bing_mod.CORES,
        quantum_ms=bing_mod.QUANTUM_MS,
        spin_fraction=bing_mod.SPIN_FRACTION,
        seed=71,
        hedge=HedgePolicy(delay_percentile=0.9),
        deadline_ms=bing_mod.TERMINATION_MS,
        telemetry=cluster_tel,
    )
    track_rows = [
        [track, len(cluster_tel.tracer.by_track(track))]
        for track in cluster_tel.tracer.tracks()
    ]
    counter_rows = [
        [name, counter.value]
        for name, counter in sorted(cluster_tel.metrics.counters.items())
    ]
    result.add_table(
        "cluster robust run (4-way fan-out, p90 hedge, 200 ms deadline): "
        "spans per track",
        ["track", "spans"],
        track_rows,
    )
    result.add_table(
        "cluster robust run: counters",
        ["counter", "value"],
        counter_rows,
    )

    # --- Ambient demo: feed the CLI's --trace pipeline ---------------
    # These runs pass NO explicit telemetry, so they emit into the
    # ambient pipeline when one is installed (the CLI's --trace flag):
    # one `repro-fm telemetry --trace out.json` yields sim, search, and
    # cluster spans in a single Chrome trace.  Without an ambient
    # pipeline they resolve to None and record nothing.
    run_policy(
        FMScheduler(table),
        workload,
        rps=180.0,
        cores=bing_mod.CORES,
        num_requests=scale.num_requests,
        quantum_ms=bing_mod.QUANTUM_MS,
        spin_fraction=bing_mod.SPIN_FRACTION,
    )
    demo_engine = SearchEngine(
        InvertedIndex.build(generate_corpus(200, seed=7), num_segments=4)
    )
    for text in generate_query_log(20, seed=11):
        demo_engine.execute(parse_query(text))
    simulate_cluster_robust(
        scheduler_factory=lambda: FMScheduler(table, boosting=False),
        workload=workload,
        num_servers=2,
        num_queries=max(10, scale.num_requests // 4),
        process=PoissonProcess(180.0),
        cores=bing_mod.CORES,
        quantum_ms=bing_mod.QUANTUM_MS,
        spin_fraction=bing_mod.SPIN_FRACTION,
        seed=71,
        hedge=HedgePolicy(delay_percentile=0.9),
        deadline_ms=bing_mod.TERMINATION_MS,
    )

    latency = cluster_tel.metrics.histograms["cluster.query_latency_ms"]
    result.add_note(
        f"cluster p99 from the streaming histogram: {latency.percentile(0.99):.1f} ms "
        "(±1% relative error by construction)"
    )
    result.add_note(
        "disabled-path cost is one attribute load + None check per hot-path "
        "site; the acceptance bound is <3% simulator regression "
        "(see BENCH_telemetry.json)"
    )
    result.add_note(
        "an explicit Telemetry(enabled=False) also vetoes an ambient "
        "pipeline, so off/on cells stay honest under `--trace`"
    )
    return result


#: Registry (merged into the CLI's experiment list).
TELEMETRY = {"telemetry": experiment_telemetry}
