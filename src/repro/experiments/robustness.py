"""Robustness experiment: faults, hedging, and load shedding (beyond the paper).

The paper's evaluation assumes a fault-free server.  This experiment
injects the failure modes interactive services actually see and
measures the two classic mitigations against each other:

* **Stragglers + hedging** (Vulimiri et al., "Low Latency via
  Redundancy"): at moderate load, duplicating late shard requests to a
  replica cuts the cluster p99 — the more stragglers, the bigger the
  win.
* **Overload + shedding** (Poloczek & Ciucu, "Contrasting Effects of
  Replication"): past saturation no amount of redundancy helps — the
  open-loop backlog grows without bound and the only way to keep the
  p99 of *answered* requests finite is to reject the excess (fail
  fast).

Three panels: cluster hedging under a straggler sweep, aggressive
hedging at saturation (where redundancy stops paying), and single-node
overload with and without shedding.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.hedging import HedgePolicy
from repro.cluster.simulation import simulate_cluster_robust
from repro.experiments.config import Scale, default_scale
from repro.experiments.report import FigureResult
from repro.experiments.runner import run_policy
from repro.experiments.tables import bing_table, lucene_table
from repro.faults import FaultPlan
from repro.schedulers import FMScheduler
from repro.workloads import bing as bing_mod
from repro.workloads import lucene as lucene_mod
from repro.workloads.arrivals import PoissonProcess

__all__ = ["experiment_robustness", "ROBUSTNESS"]

#: Fan-out width for the cluster panels (kept small: each point runs
#: num_servers primaries + up to num_servers replica engines).
NUM_SERVERS = 4
#: Straggler inflation: ~3.7x mean work for an afflicted request.
STRAGGLER_MU = 1.0
STRAGGLER_SIGMA = 0.4
#: The ISN's answer deadline (Section 2: "the server terminates any
#: request at 200 ms and returns the partial results computed so far").
DEADLINE_MS = bing_mod.TERMINATION_MS


def _straggler_plans(rate: float, seed: int):
    """Per-server fault-plan factory: independent straggler draws."""
    if rate <= 0.0:
        return None

    def factory(server_index: int) -> FaultPlan:
        return FaultPlan(
            straggler_rate=rate,
            straggler_mu=STRAGGLER_MU,
            straggler_sigma=STRAGGLER_SIGMA,
            seed=seed + 1009 * server_index,
        )

    return factory


def _cluster_point(
    scale: Scale,
    rps: float,
    straggler_rate: float,
    hedge: HedgePolicy | None,
    seed: int = 71,
):
    """One robust cluster run on the Bing workload."""
    workload = bing_mod.bing_workload(profile_size=scale.profile_size)
    table = bing_table(scale)
    return simulate_cluster_robust(
        scheduler_factory=lambda: FMScheduler(table, boosting=False),
        workload=workload,
        num_servers=NUM_SERVERS,
        num_queries=scale.num_requests * 2,
        process=PoissonProcess(rps),
        cores=bing_mod.CORES,
        quantum_ms=bing_mod.QUANTUM_MS,
        spin_fraction=bing_mod.SPIN_FRACTION,
        seed=seed,
        fault_plan_factory=_straggler_plans(straggler_rate, seed),
        hedge=hedge,
        deadline_ms=DEADLINE_MS,
    )


def experiment_robustness(scale: Scale | None = None) -> FigureResult:
    """Straggler rate x hedging delay x shedding bound."""
    scale = scale or default_scale()
    result = FigureResult(
        "robustness", "Robustness: stragglers, hedging, deadlines, shedding"
    )

    # --- Panel 1: hedging vs stragglers at moderate load -------------
    moderate_rps = 180.0
    hedge_policies: list[tuple[str, HedgePolicy | None]] = [
        ("no hedge", None),
        ("hedge p95", HedgePolicy(delay_percentile=0.95)),
        ("hedge p85", HedgePolicy(delay_percentile=0.85)),
    ]
    rows = []
    for straggler_rate in (0.0, 0.05, 0.10):
        for label, hedge in hedge_policies:
            run = _cluster_point(scale, moderate_rps, straggler_rate, hedge)
            rows.append(
                [
                    straggler_rate,
                    label,
                    run.cluster_tail_ms(0.99),
                    run.mean_quality(),
                    run.hedges_sent,
                ]
            )
    result.add_table(
        f"cluster p99 + answer quality at {moderate_rps:.0f} RPS "
        f"({NUM_SERVERS}-way fan-out, {DEADLINE_MS:.0f} ms deadline)",
        ["straggler rate", "policy", "p99 (ms)", "quality", "hedges"],
        rows,
    )

    # --- Panel 2: the cost of redundancy as load rises ---------------
    # A fixed hedge delay exposes the Poloczek/Ciucu side of the
    # trade-off: as the fleet approaches saturation, the hedge fires on
    # most shard requests — redundancy converges to full 2x
    # replication, and the gain *per duplicate* collapses.  Latency
    # still improves (replicas here are dedicated spare capacity) but
    # the overload remedy is shedding (panel 3), not more duplicates.
    hedge_fixed = HedgePolicy(delay_ms=30.0)
    rows = []
    for rps in (180.0, 300.0, 420.0):
        for label, hedge in (("no hedge", None), ("hedge 30ms", hedge_fixed)):
            run = _cluster_point(scale, rps, 0.05, hedge)
            shard_requests = NUM_SERVERS * len(run.query_latencies_ms)
            rows.append(
                [
                    rps,
                    label,
                    float(np.quantile(run.raw_query_latencies_ms, 0.99)),
                    run.mean_quality(),
                    run.hedges_sent,
                    run.hedges_sent / shard_requests,
                ]
            )
    result.add_table(
        "fixed 30 ms hedge vs load (raw p99, pre-deadline): the duplicate "
        "fraction climbs toward full replication as load rises",
        ["RPS", "policy", "raw p99 (ms)", "quality", "hedges", "dup frac"],
        rows,
    )

    # --- Panel 3: overload shedding on a single Lucene server --------
    table = lucene_table(scale)
    overload_rows = []
    for rps in (40.0, 70.0, 90.0):
        for label, scheduler in (
            ("FM", FMScheduler(table)),
            ("FM+shed", FMScheduler(table, max_backlog=8, deadline_ms=1000.0)),
        ):
            run = run_policy(
                scheduler,
                lucene_mod.lucene_workload(profile_size=scale.profile_size),
                rps=rps,
                cores=lucene_mod.CORES,
                num_requests=scale.num_requests * 2,
                quantum_ms=lucene_mod.QUANTUM_MS,
                seed=42,
                spin_fraction=lucene_mod.SPIN_FRACTION,
            )
            overload_rows.append(
                [
                    rps,
                    label,
                    run.tail_latency_ms(0.99),
                    run.mean_latency_ms(),
                    run.admitted_fraction,
                    run.shed_count,
                ]
            )
    result.add_table(
        "single Lucene server across the saturation knee "
        "(p99/mean over *admitted* requests)",
        ["RPS", "policy", "p99 (ms)", "mean (ms)", "admitted", "shed"],
        overload_rows,
    )

    result.add_note(
        "moderate load + stragglers: hedging cuts the cluster p99 "
        "(Vulimiri et al.) and restores answer quality lost to the deadline"
    )
    result.add_note(
        "past saturation the backlog, not the stragglers, owns the tail: "
        "shedding keeps the admitted p99 bounded while the no-shed tail "
        "diverges with run length (Poloczek & Ciucu: redundancy cannot "
        "help an overloaded system)"
    )
    result.add_note(
        "deterministic: every fault, hedge, and shed decision replays "
        "bit-for-bit under the same seed (FaultPlan is fully materialized)"
    )
    return result


#: Registry (merged into the CLI's experiment list).
ROBUSTNESS = {"robustness": experiment_robustness}
