"""Cached interval tables for the two evaluation systems.

The offline phase "can run daily, weekly, or at any other coarse
granularity"; within a process the tables are memoized so every figure
bench reuses one build per scale.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.search import SearchConfig, build_interval_table
from repro.core.table import IntervalTable
from repro.experiments.config import Scale
from repro.workloads import bing as bing_mod
from repro.workloads import lucene as lucene_mod

__all__ = ["lucene_table", "bing_table", "bing_table_for_capacity"]


@lru_cache(maxsize=8)
def _lucene_table_cached(
    profile_size: int, num_bins: int | None, step_ms: float
) -> IntervalTable:
    workload = lucene_mod.lucene_workload(profile_size=profile_size)
    config = SearchConfig(
        max_degree=lucene_mod.MAX_DEGREE,
        target_parallelism=lucene_mod.TARGET_PARALLELISM,
        step_ms=step_ms,
        num_bins=num_bins,
    )
    return build_interval_table(workload.profile, config)


@lru_cache(maxsize=16)
def _bing_table_cached(
    profile_size: int,
    num_bins: int | None,
    step_ms: float,
    target_parallelism: float = bing_mod.TARGET_PARALLELISM,
) -> IntervalTable:
    workload = bing_mod.bing_workload(profile_size=profile_size)
    config = SearchConfig(
        max_degree=bing_mod.MAX_DEGREE,
        target_parallelism=target_parallelism,
        step_ms=step_ms,
        num_bins=num_bins,
    )
    return build_interval_table(workload.profile, config)


def lucene_table(scale: Scale) -> IntervalTable:
    """The Lucene interval table (Table 2) at the given scale."""
    return _lucene_table_cached(scale.profile_size, scale.num_bins, scale.step_ms)


def bing_table(scale: Scale) -> IntervalTable:
    """The Bing ISN interval table at the given scale.

    Bing demand is an order of magnitude shorter than Lucene's, so the
    search step shrinks proportionally to keep comparable resolution.
    """
    return _bing_table_cached(scale.profile_size, scale.num_bins, max(1.0, scale.step_ms / 10))


def bing_table_for_capacity(scale: Scale, target_parallelism: float) -> IntervalTable:
    """The Bing ISN interval table tuned for a specific machine capacity.

    The offline search's ``target_parallelism`` encodes how much
    parallelism the machine can absorb; a heterogeneous topology's
    capacity is its speed-weighted core count
    (:meth:`~repro.hetero.pools.Topology.equivalent_capacity`), not its
    core count, so FM on a big/little box needs a table built for that
    capacity to avoid mis-tuned degrees at high load.
    """
    return _bing_table_cached(
        scale.profile_size,
        scale.num_bins,
        max(1.0, scale.step_ms / 10),
        target_parallelism,
    )
