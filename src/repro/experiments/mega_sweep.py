"""Mega-sweep: million-request load points via sharded streaming.

The paper's evaluation plots each load point from 2K-request runs; at
that size the 99.9th percentile rests on two requests and run-to-run
repeat variance swamps policy differences deep in the tail.  This
experiment scales one Lucene FM-vs-FIX comparison to mega-cells —
``num_requests`` per load point growing with scale up to 10^6 at
``full`` — using the DESIGN.md §14 machinery end to end: lazily
generated arrival streams (O(running set) memory),
:class:`~repro.sim.stream.StreamSummary` histograms instead of
per-request records, and :func:`~repro.parallel.shards.run_sharded_sweep`
splitting each cell into arrival shards across the ambient worker pool
(``repro-fm mega-sweep --shards 0 --workers 0`` saturates the machine).

The shard/worker split is attested elsewhere (tests + CI smoke): the
merged histograms are bit-identical for any ``--workers``, and
``--shards 1`` equals a plain streamed run of the whole cell.
"""

from __future__ import annotations

from repro.experiments.config import Scale, default_scale
from repro.experiments.report import FigureResult
from repro.experiments.tables import lucene_table
from repro.parallel import get_default_shards, get_default_workers, run_sharded_sweep
from repro.parallel.shards import ShardedSweepResult
from repro.schedulers import FixedScheduler, FMScheduler
from repro.workloads import lucene as lucene_mod

__all__ = ["experiment_mega_sweep", "run_mega_sweep", "MEGA_SWEEP"]

SEED = 4242
#: Lucene loads spanning moderate to near-saturation (paper Figure 8
#: plots 30-48 RPS; the tail gap is widest at the top of that band).
RPS_VALUES = [36.0, 42.0, 46.0]
#: Requests per load point = scale.num_requests x this (150 -> 75K at
#: tiny, 2000 -> 10^6 at full) — big enough that p99.9 rests on
#: hundreds of samples even at tiny.
REQUESTS_PER_SCALE_UNIT = 500


def run_mega_sweep(
    scale: Scale | None = None,
    shards: int | None = None,
    workers: int | None = None,
    vectorized: bool = False,
) -> ShardedSweepResult:
    """The sharded sweep itself (also the CI smoke entry point)."""
    scale = scale or default_scale()
    table = lucene_table(scale)
    workload = lucene_mod.lucene_workload(profile_size=scale.profile_size)
    return run_sharded_sweep(
        {"FM": FMScheduler(table), "FIX-4": FixedScheduler(4)},
        workload,
        RPS_VALUES,
        cores=lucene_mod.CORES,
        num_requests=scale.num_requests * REQUESTS_PER_SCALE_UNIT,
        shards=shards,
        workers=workers,
        quantum_ms=lucene_mod.QUANTUM_MS,
        seed=SEED,
        spin_fraction=lucene_mod.SPIN_FRACTION,
        vectorized=vectorized,
    )


def experiment_mega_sweep(scale: Scale | None = None) -> FigureResult:
    """FM vs FIX-4 at mega-cell resolution: deep-tail percentiles that
    2K-request runs cannot estimate."""
    scale = scale or default_scale()
    sweep = run_mega_sweep(scale)

    result = FigureResult(
        "mega-sweep",
        "Million-request load points: sharded streamed sweep "
        "(FM vs FIX-4, Lucene)",
    )
    rows = []
    for policy in sweep.policies():
        for rps, summary in zip(sweep.rps_values, sweep.series[policy]):
            rows.append(
                [
                    policy,
                    f"{rps:g}",
                    summary.count,
                    f"{summary.mean_latency_ms():.1f}",
                    f"{summary.tail_latency_ms(0.99):.1f}",
                    f"{summary.tail_latency_ms(0.999):.1f}",
                    f"{100 * summary.cpu_utilization():.1f}%",
                ]
            )
    result.add_table(
        "Per-load-point merged shard summaries",
        ["policy", "rps", "completed", "mean ms", "p99 ms", "p99.9 ms", "cpu"],
        rows,
    )
    result.add_note(
        f"{sweep.num_requests} requests per (policy, rps) cell in "
        f"{sweep.shards} shard(s); ambient shards="
        f"{get_default_shards()}, workers={get_default_workers()} "
        "(raise with --shards/--workers; results depend on shards, "
        "never on workers)"
    )
    result.add_note(
        "percentiles read from merged LogHistograms (1% relative "
        "error); memory stays O(running set) per shard at any "
        "request count"
    )
    return result


MEGA_SWEEP = {"mega-sweep": experiment_mega_sweep}
