"""Replication phase diagram: static hedging melts down, adaptive doesn't.

PAPERS.md holds both halves of the redundancy story.  Vulimiri et al.
("Low Latency via Redundancy") measure duplicates cutting the tail
while spare capacity absorbs them; Poloczek & Ciucu ("Contrasting
Effects of Replication in Parallel Systems") prove the same duplicates
destabilize the system past a utilization threshold.  Put together the
latency-vs-load curve of a *static* hedge is non-monotone: it beats
the unhedged baseline at low load and then melts down past the knee,
because every hedge taxes a peer that is already saturated.

This experiment draws that phase diagram on the Bing ISN workload with
*shared* replicas (hedges of shard ``s`` land on the primary of shard
``s+1`` — redundancy costs real capacity, as in production fleets
without dedicated spares), then shows the
:class:`~repro.cluster.adaptive.AdaptiveReplicationController`
navigating it: eager hedging at low load, shedding hedges as
utilization climbs, full brownout past the knee — tracking the best
static policy at every load without knowing the load in advance.

Panel 2 replays a deterministic *overload→underload flip*
(:func:`~repro.faults.scenarios.overload_flip`: every server loses
most of its cores mid-run, then gets them back) and prints the
controller's mode-transition log — escalation is immediate, recovery
is hysteretic, and the same seed reproduces the same transitions bit
for bit.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.adaptive import AdaptiveReplicationController, ControllerConfig
from repro.cluster.hedging import HedgePolicy, RetryPolicy
from repro.cluster.simulation import RobustClusterResult, simulate_cluster_robust
from repro.experiments.config import Scale, default_scale
from repro.experiments.report import FigureResult
from repro.experiments.tables import bing_table
from repro.faults import FaultPlan
from repro.faults.scenarios import overload_flip
from repro.observe.diff import QUANTILE_COLUMNS, diff_runs, quantile_rows
from repro.observe.ledger import entry_from_cluster
from repro.observe.slo import SLOMonitor, SLOTarget
from repro.schedulers import FMScheduler
from repro.workloads import bing as bing_mod
from repro.workloads.arrivals import PoissonProcess

__all__ = ["experiment_replication_phase", "REPLICATION_PHASE"]

#: Fan-out width.  Shared replica mode runs a second (loaded) engine
#: pass per server, so the fleet is kept narrow.
NUM_SERVERS = 3
#: Controller window; short enough that tiny-scale runs close several.
WINDOW_MS = 100.0
#: Approximate per-server saturation of the Bing ISN: ~30 core-ms mean
#: demand on 12 cores -> ~400 QPS.  The sweep is expressed in offered
#: utilization and converted through this constant.
SATURATION_RPS = 400.0
#: Offered utilization sweep (nominal, i.e. before straggler
#: inflation — the background straggler rate below multiplies real
#: utilization by ~1.24x): comfortably under the knee, approaching it,
#: at it, and past it (where a static hedge feeds the overload).
RHO_SWEEP = (0.30, 0.50, 0.70, 0.90)

#: The two static bets the controller replaces: an aggressive hedge
#: (duplicate the slowest 20%) and a conservative one (slowest 5%).
#: Hedge-only on purpose: static retries would exploit the simulator's
#: open-loop retry approximation (retry load is not fed back into
#: queues), which is exactly the regime where that approximation lies.
STATIC_POLICIES: tuple[tuple[str, HedgePolicy], ...] = (
    ("static p80", HedgePolicy(delay_percentile=0.80)),
    ("static p95", HedgePolicy(delay_percentile=0.95)),
)


#: Background straggler rate for the phase diagram: enough slow-replica
#: luck that hedging has something to win against at low load.
STRAGGLER_RATE = 0.08
STRAGGLER_MU = 1.0
STRAGGLER_SIGMA = 0.4


def _stragglers(seed: int = 97):
    """Per-server straggler plans shared by every policy at a load point
    (the comparison is policy vs policy, never plan vs plan)."""

    def factory(server_index: int) -> FaultPlan:
        return FaultPlan(
            straggler_rate=STRAGGLER_RATE,
            straggler_mu=STRAGGLER_MU,
            straggler_sigma=STRAGGLER_SIGMA,
            seed=seed + 1009 * server_index,
        )

    return factory


def _controller() -> AdaptiveReplicationController:
    # The SLO target is matched to this workload's healthy tail (p99 a
    # bit above the straggler-inflated baseline at low load): with the
    # default 250 ms target the monitor would report a permanent breach
    # and the breach floor — not utilization — would drive every mode.
    slo = SLOMonitor(
        SLOTarget(percentile=0.99, threshold_ms=500.0),
        short_window_ms=2 * WINDOW_MS,
        long_window_ms=8 * WINDOW_MS,
        min_samples=10,
    )
    # steady_at sits above the low-load sweep point (measured ~0.45
    # smoothed utilization with straggler inflation) so light load
    # rides in eager mode, and the utilization signal is EWMA-smoothed: Bing
    # demand is heavy-tailed enough that one inflated query can fill a
    # 100 ms window by itself.
    config = ControllerConfig(
        window_ms=WINDOW_MS,
        cores=bing_mod.CORES,
        steady_at=0.60,
        utilization_smoothing=0.75,
    )
    return AdaptiveReplicationController(config, slo=slo)


def _phase_point(
    scale: Scale,
    rps: float,
    *,
    hedge: HedgePolicy | None = None,
    retry: RetryPolicy | None = None,
    controller: AdaptiveReplicationController | None = None,
    fault_plan_factory=None,
    seed: int = 97,
) -> RobustClusterResult:
    """One shared-replica cluster run on the Bing workload."""
    workload = bing_mod.bing_workload(profile_size=scale.profile_size)
    table = bing_table(scale)
    return simulate_cluster_robust(
        scheduler_factory=lambda: FMScheduler(table, boosting=False),
        workload=workload,
        num_servers=NUM_SERVERS,
        num_queries=scale.num_requests * 2,
        process=PoissonProcess(rps),
        cores=bing_mod.CORES,
        quantum_ms=bing_mod.QUANTUM_MS,
        spin_fraction=bing_mod.SPIN_FRACTION,
        seed=seed,
        fault_plan_factory=fault_plan_factory,
        hedge=hedge,
        retry=retry,
        controller=controller,
        replica_mode="shared",
    )


def experiment_replication_phase(scale: Scale | None = None) -> FigureResult:
    """Latency vs load for static vs adaptive redundancy (shared replicas)."""
    scale = scale or default_scale()
    result = FigureResult(
        "replication-phase",
        "Replication phase diagram: static hedging vs adaptive control",
    )

    # --- Panel 1: the phase diagram ----------------------------------
    def _entry(label: str, rho: float, run: RobustClusterResult):
        entry = entry_from_cluster(
            f"repl:{label}@{rho:g}",
            run,
            config={
                "experiment": "replication-phase",
                "policy": label,
                "rho": rho,
                "num_queries": scale.num_requests * 2,
                "servers": NUM_SERVERS,
            },
            seed=97,
            scheduler="FM",
            scale=scale.name,
        )
        result.add_entry(entry)
        return entry

    rows = []
    knee_entries: dict[str, object] = {}
    for rho in RHO_SWEEP:
        rps = rho * SATURATION_RPS
        p99: dict[str, float] = {}

        baseline = _phase_point(scale, rps, fault_plan_factory=_stragglers())
        p99["no redundancy"] = baseline.cluster_tail_ms(0.99)
        rows.append([rho, "no redundancy", p99["no redundancy"], 0, 0, "", ""])
        _entry("none", rho, baseline)

        for label, hedge in STATIC_POLICIES:
            run = _phase_point(
                scale, rps, hedge=hedge, fault_plan_factory=_stragglers()
            )
            p99[label] = run.cluster_tail_ms(0.99)
            rows.append(
                [rho, label, p99[label], run.hedges_sent, run.retries_sent, "", ""]
            )
            entry = _entry(label.replace(" ", "-"), rho, run)
            if rho == RHO_SWEEP[-1] and label == STATIC_POLICIES[0][0]:
                knee_entries["static"] = entry

        controller = _controller()
        run = _phase_point(
            scale, rps, controller=controller, fault_plan_factory=_stragglers()
        )
        adaptive_p99 = run.cluster_tail_ms(0.99)
        best_static = min(p99[label] for label, _ in STATIC_POLICIES)
        rows.append(
            [
                rho,
                "adaptive",
                adaptive_p99,
                run.hedges_sent,
                run.retries_sent,
                adaptive_p99 / best_static,
                len(run.mode_transitions),
            ]
        )
        entry = _entry("adaptive", rho, run)
        if rho == RHO_SWEEP[-1]:
            knee_entries["adaptive"] = entry
    result.add_table(
        f"cluster p99 vs offered utilization (shared replicas, "
        f"{NUM_SERVERS}-way fan-out; 'vs best static' is the adaptive p99 "
        "over the better static policy at that load)",
        ["rho", "policy", "p99 (ms)", "hedges", "retries", "vs best static", "transitions"],
        rows,
    )

    # The knee comparison through the diff engine: is "adaptive beats
    # the aggressive static hedge past the knee" statistically real,
    # or seed luck?  CIs come from the stored query-latency histograms.
    knee = diff_runs(knee_entries["adaptive"], knee_entries["static"])
    result.add_table(
        f"repro diff at rho={RHO_SWEEP[-1]:g}: adaptive (A) vs "
        f"{STATIC_POLICIES[0][0]} (B), bootstrap CIs",
        QUANTILE_COLUMNS,
        quantile_rows(knee),
    )
    if knee.events:
        result.add_note(
            "past-the-knee event diff: "
            + "; ".join(
                f"{e.kind}->{e.signature or '?'} {e.count_a}x in adaptive "
                f"vs {e.count_b}x in static"
                for e in knee.events[:4]
            )
        )

    # --- Panel 2: the overload -> underload flip ---------------------
    # Offered load is calm (rho ~0.4 nominal) but the fleet loses 10 of
    # 12 cores for the middle third of the run: capacity drops to a
    # sixth, the effective utilization flips far past 1, and — because the
    # *offered*-work utilization signal cannot see reclaimed cores —
    # it is the SLO burn rate that must trip the brownout.
    flip_rho = 0.40
    flip_rps = flip_rho * SATURATION_RPS
    flip_cores_lost = bing_mod.CORES - 2
    num_queries = scale.num_requests * 2
    horizon_ms = num_queries / flip_rps * 1000.0
    scenario = overload_flip(
        seed=131,
        horizon_ms=horizon_ms,
        cores_lost=flip_cores_lost,
        stall_ms=2 * bing_mod.QUANTUM_MS,
    )
    controller = _controller()
    flip_run = _phase_point(
        scale, flip_rps, controller=controller, fault_plan_factory=scenario
    )
    _entry("flip-adaptive", flip_rho, flip_run)
    transition_rows = [
        [f"{t.at_ms:.0f}", t.window, t.from_mode, t.to_mode, t.reason,
         f"{t.utilization:.2f}" if not np.isnan(t.utilization) else "nan"]
        for t in controller.transitions[:12]
    ]
    if not transition_rows:
        transition_rows = [["-", "-", "steady", "steady", "(no transition)", "-"]]
    result.add_table(
        f"mode transitions through the capacity flip at rho={flip_rho} "
        f"(every server loses {flip_cores_lost}/{bing_mod.CORES} cores "
        f"for the middle ~third of the run); p99 "
        f"{flip_run.cluster_tail_ms(0.99):.0f} ms, "
        f"{controller.brownout_entries} brownout(s)",
        ["t (ms)", "window", "from", "to", "reason", "utilization"],
        transition_rows,
    )

    result.add_note(
        "the static curves are non-monotone: aggressive hedging beats the "
        "unhedged baseline at low utilization and melts down past the knee, "
        "where every duplicate taxes an already-saturated peer (Poloczek & "
        "Ciucu); the conservative hedge just fails later"
    )
    result.add_note(
        "the adaptive controller tracks the better static policy at every "
        "load point without knowing the load in advance: eager hedging at "
        "low rho, hedge shedding near the knee, brownout (max_retries=0, no "
        "hedges) past it"
    )
    result.add_note(
        "deterministic: the flip scenario is placed (not drawn), and the "
        "same seed replays the same mode-transition log bit for bit — the "
        "regression suite asserts this across processes"
    )
    return result


#: Registry (merged into the CLI's experiment list).
REPLICATION_PHASE = {"replication-phase": experiment_replication_phase}
