"""Extension experiments beyond the paper's evaluation.

* :func:`extension_reprofiling` — closes the paper's periodic-analysis
  loop: under workload drift, FM with online re-profiling
  (:class:`~repro.schedulers.reprofiling.ReprofilingFMScheduler`)
  versus FM frozen on the stale table.
* :func:`extension_cluster_simulation` — replaces the independence
  approximation of :mod:`repro.cluster.aggregator` with a true
  multi-ISN simulation where fan-out queries hit all shards
  simultaneously, quantifying the correlated-burst penalty on the
  cluster tail.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.aggregator import cluster_tail
from repro.cluster.simulation import simulate_cluster
from repro.core.search import SearchConfig, build_interval_table
from repro.experiments.config import Scale, default_scale
from repro.experiments.report import FigureResult
from repro.experiments.runner import run_policy
from repro.schedulers import FMScheduler
from repro.schedulers.reprofiling import ReprofilingFMScheduler
from repro.workloads import bing as bing_mod
from repro.workloads import lucene as lucene_mod
from repro.workloads.arrivals import PoissonProcess
from repro.workloads.synthetic import DemandDistribution, LognormalComponent
from repro.workloads.workload import Workload

__all__ = [
    "extension_reprofiling",
    "extension_cluster_simulation",
    "EXTENSIONS",
]

#: Pre-drift demand: a light search mix.
_REGIME_A = DemandDistribution(
    [LognormalComponent(0.7, 110.0, 0.5), LognormalComponent(0.3, 260.0, 0.6)],
    cap_ms=900.0,
    floor_ms=5.0,
)
#: Post-drift demand: the tail doubles (e.g. a new query feature ships).
_REGIME_B = DemandDistribution(
    [LognormalComponent(0.5, 110.0, 0.5), LognormalComponent(0.5, 420.0, 0.65)],
    cap_ms=1400.0,
    floor_ms=5.0,
)


def _drifting_workload(profile_size: int) -> Workload:
    """First half of any draw follows regime A, second half regime B —
    positional drift becomes temporal drift through the open-loop client."""
    model = lucene_mod.lucene_workload(profile_size=10).speedup_model

    def sampler(rng: np.random.Generator, n: int) -> np.ndarray:
        half = n // 2
        a = _REGIME_A.sample(rng, max(half, 1))
        b = _REGIME_B.sample(rng, max(n - half, 1))
        return np.concatenate([a[:half], b[: n - half]])

    return Workload(
        name="drifting",
        sampler=sampler,
        speedup_model=model,
        max_degree=6,
        profile_size=profile_size,
    )


def extension_reprofiling(scale: Scale | None = None) -> FigureResult:
    """Workload drift: static FM table vs online re-profiling."""
    scale = scale or default_scale()
    workload = _drifting_workload(scale.profile_size)

    # The deploy-time table only ever saw regime A.
    rng = np.random.default_rng(41)
    from repro.core.demand import DemandProfile

    initial_profile = DemandProfile.from_model(
        _REGIME_A.sample(rng, scale.profile_size), workload.speedup_model, 4
    )
    search = SearchConfig(
        max_degree=4,
        target_parallelism=lucene_mod.TARGET_PARALLELISM,
        step_ms=50.0,
        num_bins=30,
    )
    initial_table = build_interval_table(initial_profile, search)

    n = 2 * scale.num_requests  # half regime A, half regime B
    # Regime A runs light (~55% utilization); the drift pushes the mix
    # to ~75% — loaded enough that a mis-calibrated table hurts, not so
    # saturated that queueing drowns the comparison.
    rps = 38.0
    schedulers = {
        "FM (static table)": FMScheduler(initial_table),
        "FM (re-profiling)": ReprofilingFMScheduler(
            initial_table,
            workload.speedup_model,
            search,
            window=max(200, scale.num_requests // 2),
            rebuild_every_ms=3_000.0,
            min_samples=100,
        ),
    }
    result = FigureResult(
        "ext-reprofile", "Extension: online re-profiling under workload drift"
    )
    rows = []
    rebuild_counts = {}
    for name, scheduler in schedulers.items():
        run = run_policy(
            scheduler, workload, rps=rps, cores=lucene_mod.CORES,
            num_requests=n, quantum_ms=lucene_mod.QUANTUM_MS, seed=42,
            spin_fraction=lucene_mod.SPIN_FRACTION,
        )
        before = run.slice_by_arrival(0, n // 2)
        after = run.slice_by_arrival(n // 2, n)
        rows.append(
            [name, before.tail_latency_ms(0.99), after.tail_latency_ms(0.99)]
        )
        if isinstance(scheduler, ReprofilingFMScheduler):
            rebuild_counts[name] = len(scheduler.rebuilds)
    result.add_table(
        "99th percentile latency (ms) before/after the drift",
        ["policy", "regime A (light)", "regime B (heavy tail)"],
        rows,
    )
    for name, count in rebuild_counts.items():
        result.add_note(f"{name}: {count} table rebuilds during the run")
    result.add_note(
        "the paper runs the offline analysis 'daily, weekly, or at any "
        "other coarse granularity'; this closes that loop online"
    )
    result.add_note(
        "the gain is deliberately modest: FM degrades gracefully under "
        "drift because its load index self-corrects even when the table "
        "is stale — re-profiling recovers the remaining few percent"
    )
    return result


def extension_cluster_simulation(scale: Scale | None = None) -> FigureResult:
    """Correlated fan-out bursts vs the independence approximation."""
    scale = scale or default_scale()
    workload = bing_mod.bing_workload(profile_size=scale.profile_size)
    table = build_interval_table(
        workload.profile,
        SearchConfig(
            max_degree=bing_mod.MAX_DEGREE,
            target_parallelism=bing_mod.TARGET_PARALLELISM,
            step_ms=5.0,
            num_bins=scale.num_bins or 40,
        ),
    )
    num_servers = 8
    num_queries = scale.num_requests * 2
    rps = 260.0

    cluster = simulate_cluster(
        scheduler_factory=lambda: FMScheduler(table, boosting=False),
        workload=workload,
        num_servers=num_servers,
        num_queries=num_queries,
        process=PoissonProcess(rps),
        cores=bing_mod.CORES,
        quantum_ms=bing_mod.QUANTUM_MS,
        spin_fraction=bing_mod.SPIN_FRACTION,
        seed=51,
    )
    # Independence approximation from one server's marginal distribution.
    rng = np.random.default_rng(52)
    marginal = cluster.server_latencies_ms[0]
    rows = []
    for phi in (0.9, 0.95, 0.99):
        rows.append(
            [
                phi,
                cluster.server_tail_ms(phi),
                cluster_tail(marginal, num_servers, phi, rng),
                cluster.cluster_tail_ms(phi),
            ]
        )
    result = FigureResult(
        "ext-cluster", "Extension: correlated fan-out vs independence"
    )
    result.add_table(
        f"latency percentiles (ms), {num_servers}-way fan-out at {rps:.0f} RPS",
        ["phi", "per-ISN", "cluster (independent approx)", "cluster (simulated)"],
        rows,
    )
    result.add_note(
        "fan-out queries hit every shard simultaneously, so queueing is "
        "correlated across ISNs; the independence approximation "
        "understates or overstates the cluster tail depending on how much "
        "of the tail is queueing vs intrinsic demand"
    )
    return result


#: Registry (merged into the CLI's experiment list).
EXTENSIONS = {
    "ext-reprofile": extension_reprofiling,
    "ext-cluster": extension_cluster_simulation,
}
