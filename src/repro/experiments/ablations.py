"""Ablation experiments for the design choices DESIGN.md calls out.

These go beyond the paper's figures: each isolates one mechanism of the
FM design (or of this reproduction) and quantifies its effect.

* :func:`ablation_progress_index` — wall-clock vs contention-normalized
  execution progress as the interval-table index.
* :func:`ablation_quantum` — sensitivity to the self-scheduling quantum
  (the paper uses 5 ms and argues short quanta react faster).
* :func:`ablation_search_modes` — binned vs exact offline search:
  agreement of the resulting tables and the speedup of binning (the
  paper's "hours to minutes" claim).
* :func:`ablation_load_metric` — FM driven by instantaneous request
  count (the paper's choice) vs a stale, periodically sampled count,
  quantifying why "instantaneous" matters (Section 4.2).
* :func:`ablation_spin_fraction` — robustness of the headline result to
  the simulator's one free modeling parameter: the fraction of lost
  parallelism that burns CPU rather than blocking.  If FM's win were an
  artifact of the contention model, it would invert somewhere on
  ``spin in [0, 1]``.
"""

from __future__ import annotations

import time

from repro.core.search import SearchConfig, build_interval_table
from repro.core.table import IntervalTable
from repro.experiments.config import Scale, default_scale
from repro.experiments.report import FigureResult
from repro.experiments.runner import run_policy, run_sweep
from repro.experiments.tables import lucene_table
from repro.schedulers import FMScheduler
from repro.schedulers.fm import FMScheduler as _FM
from repro.sim.api import SchedulerContext
from repro.sim.request import SimRequest
from repro.workloads import lucene as lucene_mod

__all__ = [
    "ablation_progress_index",
    "ablation_quantum",
    "ablation_search_modes",
    "ablation_load_metric",
    "ablation_spin_fraction",
    "ABLATIONS",
]

_RPS_POINTS = [36, 40, 43, 45, 47]


def ablation_progress_index(scale: Scale | None = None) -> FigureResult:
    """Wall-clock vs effective (contention-normalized) progress index."""
    scale = scale or default_scale()
    table = lucene_table(scale)
    sweep = run_sweep(
        {
            "FM/effective": FMScheduler(table, progress="effective"),
            "FM/wall": FMScheduler(table, progress="wall"),
        },
        lucene_mod.lucene_workload(profile_size=scale.profile_size),
        _RPS_POINTS,
        cores=lucene_mod.CORES,
        num_requests=scale.num_requests,
        quantum_ms=lucene_mod.QUANTUM_MS,
        repeats=scale.repeats,
        spin_fraction=lucene_mod.SPIN_FRACTION,
    )
    result = FigureResult(
        "abl-progress", "Ablation: interval-table progress index"
    )
    result.add_table(
        "99th percentile latency (ms) vs RPS",
        ["RPS", "FM/effective", "FM/wall"],
        [
            [rps, sweep["FM/effective"].tail_ms[i], sweep["FM/wall"].tail_ms[i]]
            for i, rps in enumerate(_RPS_POINTS)
        ],
    )
    result.add_note(
        "wall-clock indexing over-parallelizes under sustained contention: "
        "requests age without progressing, climb the table early, and feed "
        "back into more contention"
    )
    return result


def ablation_quantum(scale: Scale | None = None) -> FigureResult:
    """Self-scheduling quantum sensitivity (the paper uses 5 ms)."""
    scale = scale or default_scale()
    table = lucene_table(scale)
    workload = lucene_mod.lucene_workload(profile_size=scale.profile_size)
    result = FigureResult("abl-quantum", "Ablation: scheduling quantum length")
    rows = []
    for quantum in (1.0, 5.0, 20.0, 50.0):
        tails = []
        for rps in (40, 45):
            run = run_policy(
                FMScheduler(table),
                workload,
                rps=rps,
                cores=lucene_mod.CORES,
                num_requests=scale.num_requests,
                quantum_ms=quantum,
                seed=19,
                spin_fraction=lucene_mod.SPIN_FRACTION,
            )
            tails.append(run.tail_latency_ms())
        rows.append([quantum, *tails])
    result.add_table(
        "99th percentile latency (ms) by quantum",
        ["quantum (ms)", "@40 RPS", "@45 RPS"], rows,
    )
    result.add_note(
        "quanta well below the table's interval step cost little and react "
        "fast; very long quanta delay degree steps and admission re-checks"
    )
    return result


def ablation_search_modes(scale: Scale | None = None) -> FigureResult:
    """Binned vs exact offline search: agreement and speedup."""
    scale = scale or default_scale()
    profile = lucene_mod.lucene_workload(profile_size=scale.profile_size).profile
    base = dict(
        max_degree=lucene_mod.MAX_DEGREE,
        target_parallelism=lucene_mod.TARGET_PARALLELISM,
        step_ms=max(25.0, scale.step_ms),
    )

    started = time.perf_counter()
    exact = build_interval_table(profile, SearchConfig(**base))
    exact_s = time.perf_counter() - started

    started = time.perf_counter()
    binned = build_interval_table(
        profile, SearchConfig(**base, num_bins=scale.num_bins or 60)
    )
    binned_s = time.perf_counter() - started

    # Table agreement: evaluate each row's schedule against the full
    # profile and compare predicted tails.
    from repro.core.formulas import tail_latency

    deltas = []
    for (load, a), (_, b) in zip(exact.rows(), binned.rows()):
        if a.wait_for_exit or b.wait_for_exit:
            continue
        ta = tail_latency(profile, a.to_intervals(lucene_mod.MAX_DEGREE))
        tb = tail_latency(profile, b.to_intervals(lucene_mod.MAX_DEGREE))
        deltas.append(abs(ta - tb) / ta)
    worst = max(deltas) if deltas else 0.0

    result = FigureResult("abl-search", "Ablation: binned vs exact offline search")
    result.add_table(
        "search cost and agreement",
        ["mode", "bins", "seconds", "rows"],
        [
            ["exact", len(profile), exact_s, len(exact)],
            ["binned", scale.num_bins or 60, binned_s, len(binned)],
        ],
    )
    result.add_table(
        "row-level predicted-tail divergence",
        ["metric", "value"],
        [["max relative tail difference", worst]],
    )
    result.add_note(
        "the paper: exact per-request search takes hours; demand binning "
        "reduces it to minutes with near-identical schedules"
    )
    return result


class _StaleLoadFM(_FM):
    """FM variant whose load metric is sampled only every
    ``refresh_ms`` — the coarse-grained indicator the paper rejects."""

    def __init__(self, table: IntervalTable, refresh_ms: float) -> None:
        super().__init__(table)
        self.name = f"FM/stale{refresh_ms:g}ms"
        self.refresh_ms = refresh_ms
        self._cached_load = 1
        self._last_refresh = -1e18

    def reset(self) -> None:
        self._cached_load = 1
        self._last_refresh = -1e18

    def _load(self, ctx: SchedulerContext) -> int:
        if ctx.now_ms - self._last_refresh >= self.refresh_ms:
            self._cached_load = ctx.system_count
            self._last_refresh = ctx.now_ms
        return self._cached_load

    def on_arrival(self, ctx: SchedulerContext, request: SimRequest):
        row = self.table.lookup(max(1, self._load(ctx)))
        from repro.sim.api import Admission

        if row.wait_for_exit:
            return Admission.wait_for_exit()
        if row.admission_delay_ms > 0:
            return Admission.delay(row.admission_delay_ms)
        return Admission.start(row.initial_degree)

    def on_quantum(self, ctx: SchedulerContext, request: SimRequest) -> int:
        row = self.table.lookup(max(1, self._load(ctx)))
        progress = request.effective_progress_ms()
        desired = max(row.degree_at_progress(progress), request.degree)
        if (
            self.boosting
            and desired > request.degree
            and desired >= row.max_degree
            and not request.boosted
        ):
            ctx.try_boost(request, desired)
        return desired


def ablation_load_metric(scale: Scale | None = None) -> FigureResult:
    """Instantaneous vs stale load as the interval-table index."""
    scale = scale or default_scale()
    table = lucene_table(scale)
    sweep = run_sweep(
        {
            "FM (instantaneous)": FMScheduler(table),
            "FM (stale 250 ms)": _StaleLoadFM(table, 250.0),
            "FM (stale 1000 ms)": _StaleLoadFM(table, 1000.0),
        },
        lucene_mod.lucene_workload(profile_size=scale.profile_size),
        _RPS_POINTS,
        cores=lucene_mod.CORES,
        num_requests=scale.num_requests,
        quantum_ms=lucene_mod.QUANTUM_MS,
        repeats=scale.repeats,
        spin_fraction=lucene_mod.SPIN_FRACTION,
    )
    policies = sweep.policies()
    result = FigureResult("abl-load", "Ablation: load-metric freshness")
    result.add_table(
        "99th percentile latency (ms) vs RPS",
        ["RPS"] + policies,
        [
            [rps] + [sweep[p].tail_ms[i] for p in policies]
            for i, rps in enumerate(_RPS_POINTS)
        ],
    )
    result.add_note(
        "Section 4.2: the instantaneous request count self-corrects within "
        "a quantum; stale indicators mis-index the table during bursts"
    )
    return result


def ablation_spin_fraction(scale: Scale | None = None) -> FigureResult:
    """Robustness of FM's headline win to the contention model.

    ``spin_fraction`` is this reproduction's only free hardware
    parameter (DESIGN.md §4): 0 means lost parallelism is entirely
    blocked/idle (harvestable), 1 means it entirely burns cores.  The
    Lucene experiments use 0.25.  Sweep the whole range and check the
    FM-vs-FIX-2 tail reduction at the paper's headline operating
    points.
    """
    scale = scale or default_scale()
    table = lucene_table(scale)
    workload = lucene_mod.lucene_workload(profile_size=scale.profile_size)
    from repro.schedulers import FixedScheduler, SequentialScheduler

    rows = []
    for spin in (0.0, 0.15, 0.25, 0.5, 1.0):
        sweep = run_sweep(
            {
                "SEQ": SequentialScheduler(),
                "FIX-2": FixedScheduler(2),
                "FM": FMScheduler(table),
            },
            workload,
            [40, 43],
            cores=lucene_mod.CORES,
            num_requests=scale.num_requests,
            quantum_ms=lucene_mod.QUANTUM_MS,
            repeats=scale.repeats,
            spin_fraction=spin,
        )
        rows.append(
            [
                spin,
                sweep["FM"].tail_ms[0],
                f"{sweep.improvement('FIX-2', 'FM', 40):.0%}",
                f"{sweep.improvement('SEQ', 'FM', 40):.0%}",
                f"{sweep.improvement('FIX-2', 'FM', 43):.0%}",
            ]
        )
    result = FigureResult(
        "abl-spin", "Ablation: contention-model (spin fraction) sensitivity"
    )
    result.add_table(
        "FM tail and reductions vs spin fraction",
        ["spin", "FM p99 @40 (ms)", "vs FIX-2 @40", "vs SEQ @40", "vs FIX-2 @43"],
        rows,
    )
    result.add_note(
        "the headline ordering (FM < FIX-2 < SEQ at the paper's operating "
        "points) must hold across the whole spin range for the "
        "reproduction to be model-robust; the magnitude varies with spin"
    )
    return result


#: Registry (merged into the CLI's experiment list).
ABLATIONS = {
    "abl-progress": ablation_progress_index,
    "abl-quantum": ablation_quantum,
    "abl-search": ablation_search_modes,
    "abl-load": ablation_load_metric,
    "abl-spin": ablation_spin_fraction,
}
