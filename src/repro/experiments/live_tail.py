"""Live-tail: the observability plane catching an overload flip early.

Replays the canned ``overload_flip`` scenario (repro.faults.scenarios:
a core-loss dip plus stall bursts and stragglers, onset at 30% of the
horizon) through a Bing/FM server with a
:class:`~repro.observe.live.LivePlane` attached, and shows the plane's
changepoint detector flagging the ramp *before* the SLO monitor's
breach floor confirms it — the detector needs one anomalous window;
the multi-window burn-rate discipline needs the error budget to burn
across both sliding windows first.

Determinism is the point and the test: the fault plan, arrival trace,
windows, and detector are all seeded/derived state, so the flagged
onset window index is bit-stable across runs and across worker
processes (see tests/experiments/test_live_tail.py).

Run it traced to drive the rest of the live plane end to end::

    repro-fm live-tail --trace flip.json
    repro top --replay flip.json          # same windows, offline
    repro analyze flip.json               # same attribution totals
"""

from __future__ import annotations

from repro.experiments.config import Scale, default_scale
from repro.experiments.replication_phase import SATURATION_RPS
from repro.experiments.report import FigureResult
from repro.experiments.runner import run_policy
from repro.experiments.tables import bing_table
from repro.faults.scenarios import overload_flip
from repro.observe.anomaly import ChangepointDetector
from repro.observe.live import LivePlane
from repro.observe.slo import SLOMonitor, SLOTarget
from repro.schedulers import FMScheduler
from repro.workloads import bing as bing_mod

__all__ = ["experiment_live_tail", "run_live_tail", "LIVE_TAIL"]

#: Offered load as a fraction of the paper's Bing saturation point —
#: healthy headroom before the flip, clear overload during it.
LOAD_FRACTION = 0.55
SEED = 131
#: SLO: p99 under 8x the workload's median demand (breaches only
#: inside the flip at this load).
SLO_PERCENTILE = 0.99
#: Plane windows per run horizon (window span derives from the
#: horizon, so every scale sees the same window *indexes*).
WINDOWS_PER_RUN = 60


def run_live_tail(scale: Scale | None = None) -> tuple[LivePlane, object]:
    """One seeded overload-flip run with the plane attached.

    Returns ``(plane, result)`` — the experiment and its tests both
    read the plane's windows/events; the result carries fault stats.
    """
    scale = scale or default_scale()
    rps = LOAD_FRACTION * SATURATION_RPS
    num_requests = scale.num_requests * 2
    horizon_ms = num_requests / rps * 1000.0
    window_ms = horizon_ms / WINDOWS_PER_RUN
    scenario = overload_flip(
        seed=SEED,
        horizon_ms=horizon_ms,
        cores_lost=bing_mod.CORES - 2,
        stall_ms=2 * bing_mod.QUANTUM_MS,
    )
    slo = SLOMonitor(
        SLOTarget(percentile=SLO_PERCENTILE, threshold_ms=120.0),
        short_window_ms=2 * window_ms,
        long_window_ms=8 * window_ms,
        min_samples=20,
    )
    plane = LivePlane(
        window_ms=window_ms,
        capacity=2 * WINDOWS_PER_RUN,
        slo=slo,
        detector=ChangepointDetector(warmup=4, threshold=3.5),
    )
    result = run_policy(
        FMScheduler(bing_table(scale)),
        bing_mod.bing_workload(profile_size=scale.profile_size),
        rps=rps,
        cores=bing_mod.CORES,
        num_requests=num_requests,
        quantum_ms=bing_mod.QUANTUM_MS,
        seed=SEED,
        spin_fraction=bing_mod.SPIN_FRACTION,
        fault_plan=scenario(0),
        live=plane,
    )
    return plane, result


def onset_signature(plane: LivePlane) -> tuple[int | None, int | None, int | None]:
    """The determinism pin: (fault-onset window, first upward anomaly
    window at/after onset, first breached window)."""
    fault_window = next(
        (e.window for e in plane.events if e.kind == "fault"), None
    )
    flagged = next(
        (
            e.window
            for e in plane.events
            if e.kind == "anomaly"
            and e.detail.get("direction") == 1
            and (fault_window is None or e.window >= fault_window)
        ),
        None,
    )
    breach_floor = next(
        (w.index for w in plane.windows() if w.breached), None
    )
    return fault_window, flagged, breach_floor


def experiment_live_tail(scale: Scale | None = None) -> FigureResult:
    """The live plane over an overload flip: detection vs breach floor."""
    scale = scale or default_scale()
    plane, result = run_live_tail(scale)
    fault_window, flagged, breach_floor = onset_signature(plane)

    result_fig = FigureResult(
        "live-tail",
        "Live plane over overload_flip: anomaly flags lead the SLO "
        "breach floor",
    )
    rows = []
    for window in plane.windows():
        if not window.count and not window.events:
            continue
        p99 = window.p99_ms
        total = sum(window.components.values())
        dominant = (
            max(window.components.items(), key=lambda kv: kv[1])[0]
            if window.components
            else "-"
        )
        rows.append(
            [
                window.index,
                window.count,
                f"{p99:.1f}" if p99 == p99 else "-",
                dominant.removesuffix("_ms"),
                f"{100.0 * window.components.get(dominant, 0.0) / total:.0f}%"
                if total > 0
                else "-",
                "yes" if window.breached else "",
                " ".join(sorted({e.kind for e in window.events})),
            ]
        )
    result_fig.add_table(
        "Per-window live view (windows with activity)",
        ["window", "n", "p99 (ms)", "dominant", "share", "breached", "events"],
        rows,
    )
    stats = result.fault_stats
    result_fig.add_note(
        f"fault plan fired {stats.faults_fired} faults "
        f"({stats.core_faults_applied} core dips, "
        f"{stats.stalls_injected} stalls, "
        f"{stats.stragglers_injected} stragglers)"
    )
    if fault_window is not None and flagged is not None:
        lead = (
            f", {breach_floor - flagged} window(s) before the SLO breach floor "
            f"(window {breach_floor})"
            if breach_floor is not None and flagged <= breach_floor
            else ""
        )
        result_fig.add_note(
            f"flip onset lands in window {fault_window}; the changepoint "
            f"detector flags window {flagged}{lead} — deterministic across "
            "runs (the test pins the signature)"
        )
    anomalies = plane.anomalies()
    if anomalies:
        result_fig.add_note(
            "anomaly flags: "
            + "; ".join(
                f"w{e.window} {e.detail['signal']} "
                f"{'up' if e.detail['direction'] > 0 else 'down'} "
                f"(z={e.detail['z_score']:.1f})"
                for e in anomalies
            )
        )
    result_fig.add_note(
        "replay this view offline from any traced run: "
        "`repro-fm live-tail --trace flip.json && repro top --replay flip.json`"
    )
    return result_fig


#: Registry (merged into the CLI's experiment list).
LIVE_TAIL = {"live-tail": experiment_live_tail}
