"""Collate rendered benchmark outputs into one report.

After a benchmark session, ``benchmarks/output/`` holds one rendered
text file per experiment.  :func:`collect` parses them back into
(id, title, body) records and :func:`render_summary` produces a single
markdown document — the raw material behind EXPERIMENTS.md.

Usage::

    python -m repro.experiments.summary [output_dir]
"""

from __future__ import annotations

import re
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError

__all__ = ["ExperimentOutput", "collect", "render_summary", "main"]

_HEADER_RE = re.compile(r"^=== (?P<id>\S+): (?P<title>.*) ===$", re.MULTILINE)


@dataclass(frozen=True)
class ExperimentOutput:
    """One experiment's rendered output."""

    experiment_id: str
    title: str
    body: str
    notes: tuple[str, ...]


def parse_output(text: str) -> ExperimentOutput:
    """Parse one rendered FigureResult back into structured form."""
    match = _HEADER_RE.search(text)
    if not match:
        raise ConfigurationError("not a rendered FigureResult (missing === header)")
    notes = tuple(
        line[len("note: "):]
        for line in text.splitlines()
        if line.startswith("note: ")
    )
    body = text[match.end():].strip()
    body = "\n".join(
        line for line in body.splitlines() if not line.startswith("note: ")
    ).strip()
    return ExperimentOutput(
        experiment_id=match.group("id"),
        title=match.group("title"),
        body=body,
        notes=notes,
    )


def collect(output_dir: str | Path) -> list[ExperimentOutput]:
    """Parse every ``*.txt`` under ``output_dir``, sorted by id."""
    directory = Path(output_dir)
    if not directory.is_dir():
        raise ConfigurationError(f"not a directory: {directory}")
    outputs = []
    for path in sorted(directory.glob("*.txt")):
        outputs.append(parse_output(path.read_text()))
    if not outputs:
        raise ConfigurationError(f"no rendered outputs in {directory}")
    return sorted(outputs, key=lambda o: o.experiment_id)


def render_summary(outputs: list[ExperimentOutput]) -> str:
    """One markdown document with every experiment's tables and notes."""
    parts = ["# Benchmark session summary", ""]
    parts.append(f"{len(outputs)} experiments.")
    parts.append("")
    for output in outputs:
        parts.append(f"## {output.experiment_id} — {output.title}")
        parts.append("")
        parts.append("```")
        parts.append(output.body)
        parts.append("```")
        for note in output.notes:
            parts.append(f"- {note}")
        parts.append("")
    return "\n".join(parts)


def main(argv: list[str] | None = None) -> int:
    """CLI: print the summary for a benchmark output directory."""
    args = argv if argv is not None else sys.argv[1:]
    directory = args[0] if args else "benchmarks/output"
    print(render_summary(collect(directory)))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests on main()
    sys.exit(main())
