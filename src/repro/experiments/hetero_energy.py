"""Hetero-energy: tail latency AND joules/query on big/little cores.

The paper evaluates FM on homogeneous machines, where the only
currency is cores.  On a heterogeneous (big/little) server there are
two: *where* a request runs decides both how fast it finishes and how
much energy each of its work-milliseconds costs — a big core here runs
2x as fast but burns 3.5x the power, so every work-millisecond placed
on big silicon costs ~1.75x the joules.  This experiment sweeps load
on two 16-core topologies:

* **homogeneous** — 16 identical little-class cores (the paper's
  regime, with energy accounting switched on);
* **big/little** — 4 big (2x speed) + 12 little cores, same total
  core count, 20 equivalent little-cores of capacity.  Idle power is
  power-gated (cluster power collapse), so reserving big cores is
  cheap but *using* them is not.

against four policies:

* **FIX-3** — the production baseline; placement is the engine
  default (fastest pool with headroom), so big cores fill first;
* **FM** — the paper's scheduler, same default placement;
* **Hurry-up** — Nishtala et al.'s big/little baseline: fixed degree,
  everything starts little, deadline-endangered requests migrate big;
* **EA-FM** — FM degrees plus Hurry-up-style placement: park on
  little, rescue the aging tail onto big
  (:class:`~repro.schedulers.energy_fm.EnergyAwareFMScheduler`).

FM and EA-FM use an interval table built for each topology's
*equivalent capacity* (speed-weighted cores), not its core count — a
table tuned for 16 cores under-parallelizes a 20-capacity box.

The headline claim, asserted by the regression suite: at low-to-mid
load EA-FM strictly dominates FIX-3 on the latency-energy frontier —
lower 99th-percentile latency AND fewer joules per query — because FM
keeps short requests narrow (less spin), little-first placement keeps
the work-mass on efficient cores, and only the tail that defines p99
spends big-core joules.
"""

from __future__ import annotations

from repro.experiments.config import Scale, default_scale
from repro.experiments.report import FigureResult
from repro.experiments.runner import SweepResult, run_sweep
from repro.experiments.tables import bing_table_for_capacity
from repro.hetero import Topology
from repro.observe.diff import QUANTILE_COLUMNS, diff_runs, quantile_rows
from repro.observe.ledger import entry_from_result
from repro.schedulers import (
    EnergyAwareFMScheduler,
    FixedScheduler,
    FMScheduler,
    HurryUpScheduler,
)
from repro.sim.api import Scheduler
from repro.workloads import bing as bing_mod

__all__ = ["experiment_hetero_energy", "HETERO_ENERGY"]

#: Total cores on both machines (the paper's Bing ISN has 12; one big
#: cluster more keeps the comparison big/little vs same-count flat).
CORES = 16
#: Offered load sweep (RPS).  The knee of the 20-capacity big/little
#: box sits near 500 RPS; the sweep covers comfortable load through
#: the approach to saturation.
RPS_SWEEP = (150.0, 250.0, 350.0, 450.0)
#: Hurry-up's service deadline and the rescue age EA-FM inherits from
#: its default (50 ms, i.e. past the healthy p90).
DEADLINE_MS = 200.0

#: Idle draw on the big/little machine is power-gated (cluster power
#: collapse): 0.25 W big / 0.1 W little.  With wall-powered idle
#: (0.6 W big) *reserving* big cores costs as much as using them and
#: no placement policy can win energy by parking work on little.
BIG_IDLE_W = 0.25
LITTLE_IDLE_W = 0.1


def homogeneous_topology() -> Topology:
    """16 identical little-class cores with energy accounting."""
    return Topology.homogeneous(
        CORES, active_power_w=1.0, idle_power_w=LITTLE_IDLE_W
    )


def big_little_topology() -> Topology:
    """4 big (2x) + 12 little cores: 16 cores, capacity 20."""
    return Topology.big_little(
        big=4,
        little=12,
        big_idle_power_w=BIG_IDLE_W,
        little_idle_power_w=LITTLE_IDLE_W,
    )


def hetero_policies(scale: Scale, topology: Topology) -> dict[str, Scheduler]:
    """The four evaluated policies, table-tuned to the topology."""
    table = bing_table_for_capacity(scale, topology.equivalent_capacity())
    return {
        "FIX-3": FixedScheduler(3),
        "FM": FMScheduler(table),
        "Hurry-up": HurryUpScheduler(degree=3, deadline_ms=DEADLINE_MS),
        "EA-FM": EnergyAwareFMScheduler(table),
    }


def run_hetero_sweep(scale: Scale, topology: Topology) -> SweepResult:
    """One full policy x load sweep on a topology (results kept so the
    energy reports survive into the tables)."""
    workload = bing_mod.bing_workload(profile_size=scale.profile_size)
    return run_sweep(
        hetero_policies(scale, topology),
        workload,
        RPS_SWEEP,
        cores=CORES,
        num_requests=scale.num_requests,
        quantum_ms=bing_mod.QUANTUM_MS,
        seed=42,
        repeats=scale.repeats,
        keep_results=True,
        spin_fraction=bing_mod.SPIN_FRACTION,
        topology=topology,
    )


def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else float("nan")


def _point_energy(sweep: SweepResult, policy: str, rps_index: int):
    """(J/query, big active share, migrated requests) at a load point,
    averaged across repeats."""
    results = sweep[policy].results[rps_index]
    jpq = _mean([r.joules_per_query() for r in results])
    shares = []
    migrated = []
    for r in results:
        if r.energy is not None and r.energy.active_j > 0:
            try:
                big = r.energy.pool("big").active_j
            except KeyError:
                big = float("nan")
            shares.append(big / r.energy.active_j)
        migrated.append(float(sum(1 for rec in r.records if rec.migrations)))
    return jpq, _mean(shares), _mean(migrated)


def experiment_hetero_energy(scale: Scale | None = None) -> FigureResult:
    """Latency-energy frontier: FM-family policies on big/little cores."""
    scale = scale or default_scale()
    result = FigureResult(
        "hetero-energy",
        "Tail latency and joules/query on homogeneous vs big/little cores",
    )

    sweeps: dict[str, SweepResult] = {}
    for topo_name, topology in (
        ("homogeneous", homogeneous_topology()),
        ("big/little", big_little_topology()),
    ):
        sweep = run_hetero_sweep(scale, topology)
        sweeps[topo_name] = sweep
        rows = []
        for i, rps in enumerate(RPS_SWEEP):
            for policy in sweep.policies():
                series = sweep[policy]
                jpq, big_share, migrated = _point_energy(sweep, policy, i)
                rows.append(
                    [
                        rps,
                        policy,
                        series.tail_ms[i],
                        series.mean_ms[i],
                        jpq,
                        big_share if topo_name == "big/little" else "-",
                        migrated if topo_name == "big/little" else "-",
                    ]
                )
        result.add_table(
            f"{topo_name}: {CORES} cores, capacity "
            f"{topology.equivalent_capacity():g} equivalent little-cores",
            ["rps", "policy", "p99 (ms)", "mean (ms)", "J/query", "big active share", "migrated"],
            rows,
        )

    # --- energy decomposition at one representative load -------------
    decomp_index = 1  # 250 RPS: comfortably loaded, pre-knee
    bl = sweeps["big/little"]
    rows = []
    for policy in bl.policies():
        results = bl[policy].results[decomp_index]
        cells: dict[str, float] = {}
        for pool_name in ("big", "little"):
            for part in ("active_j", "spin_j", "idle_j"):
                cells[f"{pool_name}.{part}"] = _mean(
                    [getattr(r.energy.pool(pool_name), part) for r in results]
                )
        total = _mean([r.energy.total_j for r in results])
        rows.append(
            [
                policy,
                cells["big.active_j"],
                cells["big.spin_j"],
                cells["big.idle_j"],
                cells["little.active_j"],
                cells["little.spin_j"],
                cells["little.idle_j"],
                total,
            ]
        )
    result.add_table(
        f"big/little energy decomposition at {RPS_SWEEP[decomp_index]:g} RPS "
        "(joules, averaged over repeats)",
        ["policy", "big act", "big spin", "big idle", "lit act", "lit spin", "lit idle", "total J"],
        rows,
    )

    # --- the EA-FM vs FIX-3 claim through the diff engine ------------
    # One ledger entry per policy at the decomposition load (repeat 0 —
    # a ledger records single executions); the frontier note below
    # still averages repeats, the diff adds CIs and the energy deltas.
    decomp_rps = RPS_SWEEP[decomp_index]
    entries = {}
    for policy in bl.policies():
        entries[policy] = entry_from_result(
            f"hetero:{policy}@{decomp_rps:g}",
            bl[policy].results[decomp_index][0],
            config={
                "experiment": "hetero-energy",
                "policy": policy,
                "rps": decomp_rps,
                "topology": "big/little",
                "num_requests": scale.num_requests,
            },
            seed=42,
            scheduler=policy,
            scale=scale.name,
        )
        result.add_entry(entries[policy])
    energy_diff = diff_runs(entries["EA-FM"], entries["FIX-3"])
    result.add_table(
        f"repro diff at {decomp_rps:g} RPS on big/little: EA-FM (A) vs "
        "FIX-3 (B), bootstrap CIs",
        QUANTILE_COLUMNS,
        quantile_rows(energy_diff),
    )
    if energy_diff.energy_j:
        result.add_note(
            "energy deltas EA-FM minus FIX-3 (J): "
            + ", ".join(
                f"{pool}={delta:+.3g}"
                for pool, delta in sorted(energy_diff.energy_j.items())
            )
        )

    # --- the frontier claim ------------------------------------------
    fix = bl["FIX-3"]
    ea = bl["EA-FM"]
    dominated = []
    for i, rps in enumerate(RPS_SWEEP):
        fix_jpq, _, _ = _point_energy(bl, "FIX-3", i)
        ea_jpq, _, _ = _point_energy(bl, "EA-FM", i)
        if ea.tail_ms[i] <= fix.tail_ms[i] and ea_jpq <= fix_jpq:
            dominated.append((rps, fix.tail_ms[i], ea.tail_ms[i], fix_jpq, ea_jpq))
    if dominated:
        rps, fp, ep, fj, ej = dominated[0]
        result.add_note(
            "EA-FM strictly dominates FIX-3 on the latency-energy frontier at "
            f"{len(dominated)}/{len(RPS_SWEEP)} load points "
            f"(first at {rps:g} RPS: p99 {ep:.1f} vs {fp:.1f} ms, "
            f"{ej:.4f} vs {fj:.4f} J/query)"
        )
    else:
        result.add_note(
            "EA-FM did not dominate FIX-3 at any swept load point at this "
            "scale — see the big/little table for the trade"
        )
    result.add_note(
        "placement, not parallelism, decides the energy bill: active joules "
        "per work-millisecond are fixed per pool (P/speed), so a policy wins "
        "by keeping the work-mass on little cores and spending big-core "
        "joules only on the tail that defines p99 — which is why EA-FM "
        "rescues by age (endangerment), never by degree (width)"
    )
    result.add_note(
        "Hurry-up is the energy floor of the four (everything starts "
        "little) but its fixed degree gives away FM's short-request spin "
        "savings and its tail degrades first as load grows"
    )
    result.add_note(
        "on the homogeneous machine every placement is the identity: EA-FM "
        "reproduces FM and Hurry-up tracks FIX-3 — the heterogeneous wins "
        "come from the topology, not from policy side effects"
    )
    return result


#: Registry (merged into the CLI's experiment list).
HETERO_ENERGY = {"hetero-energy": experiment_hetero_energy}
