"""Plain-text rendering of experiment output.

The paper's artifacts are plots; this harness reports the same numbers
as aligned ASCII tables and series, one table per figure panel, so runs
are diffable and greppable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["TableData", "FigureResult", "render_table", "format_cell"]


def format_cell(value: object) -> str:
    """Human formatting: floats to 4 significant digits, pass-through
    for everything else."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        return f"{value:.4g}"
    return str(value)


def render_table(columns: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned table with a header rule."""
    text_rows = [[format_cell(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(col)), *(len(row[i]) for row in text_rows)) if text_rows else len(str(col))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(w) for col, w in zip(columns, widths))
    rule = "  ".join("-" * w for w in widths)
    body = [
        "  ".join(cell.rjust(w) for cell, w in zip(row, widths)) for row in text_rows
    ]
    return "\n".join([header, rule, *body])


@dataclass
class TableData:
    """One panel: a caption plus tabular data."""

    caption: str
    columns: list[str]
    rows: list[list[object]]

    def render(self) -> str:
        return f"{self.caption}\n{render_table(self.columns, self.rows)}"


@dataclass
class FigureResult:
    """A reproduced table/figure: identifier, panels, and notes
    comparing against the paper's reported numbers."""

    figure_id: str
    title: str
    tables: list[TableData] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: Ledger entries the experiment offers for persistence
    #: (:class:`repro.observe.ledger.RunEntry`); written to the run
    #: ledger when the CLI is invoked with ``--ledger``, ignored
    #: otherwise.  Typed loosely to keep report rendering free of
    #: observe-layer imports.
    entries: list = field(default_factory=list)

    def add_table(
        self, caption: str, columns: list[str], rows: list[list[object]]
    ) -> None:
        self.tables.append(TableData(caption, columns, rows))

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def add_entry(self, entry) -> None:
        """Offer a ledger entry for ``--ledger`` persistence."""
        self.entries.append(entry)

    def render(self) -> str:
        parts = [f"=== {self.figure_id}: {self.title} ==="]
        for table in self.tables:
            parts.append("")
            parts.append(table.render())
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)
