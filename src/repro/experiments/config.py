"""Experiment scale presets and testbed configurations.

Every figure function accepts a :class:`Scale` so the same code path
serves three audiences: unit tests (tiny), pytest-benchmark runs
(quick), and full paper-fidelity reproductions (full).  The default is
read from the ``REPRO_SCALE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["Scale", "TINY", "QUICK", "FULL", "default_scale"]


@dataclass(frozen=True)
class Scale:
    """Knobs trading fidelity for runtime.

    Parameters
    ----------
    num_requests:
        Requests per online simulation run (the paper uses 2K for
        Lucene, 30K for Bing; Bing runs are scaled by ``bing_factor``).
    profile_size:
        Requests in the offline profiling set.
    num_bins:
        Demand bins for the interval search (``None`` = exact).
    step_ms:
        Interval-search quantization step.
    repeats:
        Independent seeds averaged per data point.
    """

    name: str
    num_requests: int
    profile_size: int
    num_bins: int | None
    step_ms: float
    repeats: int = 1
    bing_factor: int = 4

    def __post_init__(self) -> None:
        if self.num_requests < 10:
            raise ConfigurationError(f"num_requests too small: {self.num_requests}")
        if self.repeats < 1:
            raise ConfigurationError(f"repeats must be >= 1: {self.repeats}")


#: For unit tests: seconds per figure.
TINY = Scale("tiny", num_requests=150, profile_size=600, num_bins=24, step_ms=100.0)

#: For benchmark runs: tens of seconds per figure.
QUICK = Scale("quick", num_requests=500, profile_size=3000, num_bins=40, step_ms=50.0, repeats=2)

#: Paper fidelity: 2K-request runs, fine search grid.
FULL = Scale(
    "full", num_requests=2000, profile_size=10_000, num_bins=80, step_ms=20.0, repeats=3
)

_PRESETS = {scale.name: scale for scale in (TINY, QUICK, FULL)}


def default_scale() -> Scale:
    """Scale selected by ``REPRO_SCALE`` (default: quick)."""
    name = os.environ.get("REPRO_SCALE", "quick").lower()
    if name not in _PRESETS:
        raise ConfigurationError(
            f"unknown REPRO_SCALE={name!r}; choose from {sorted(_PRESETS)}"
        )
    return _PRESETS[name]
