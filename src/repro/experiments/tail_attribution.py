"""Tail attribution: *why* FM beats fixed parallelism (beyond the paper).

The paper's figures show *that* FM's p99 beats FIX-N across loads;
the flight recorder (DESIGN.md §9) shows *why*.  Every completion's
latency decomposes additively into queue wait, full-speed service,
processor-sharing contention, boost wait, and stall time, so each
policy's tail has a component budget.  This experiment runs FM and
FIX-2/FIX-4 on identical Lucene traces across load points and tables
the tail's composition:

* FIX-N's tail at load is queue- and contention-dominated — every
  request pays degree-N occupancy up front, so bursts oversubscribe
  the cores and the backlog grows;
* FM's tail spends those milliseconds on *service* instead: short
  requests finish sequentially before ever contending, and the saved
  capacity drains the queue.

The same decomposition is available offline from any ``--trace`` file
via ``repro analyze`` — this experiment is the ground-truth view from
:class:`~repro.sim.metrics.RequestRecord`.
"""

from __future__ import annotations

from repro.experiments.config import Scale, default_scale
from repro.experiments.report import FigureResult
from repro.experiments.runner import run_policy
from repro.experiments.tables import lucene_table
from repro.observe.diff import PHASE_COLUMNS, diff_runs, phase_rows
from repro.observe.ledger import entry_from_result
from repro.schedulers import FixedScheduler, FMScheduler
from repro.sim.metrics import ATTRIBUTION_COMPONENTS
from repro.workloads import lucene as lucene_mod

__all__ = ["experiment_tail_attribution", "TAIL_ATTRIBUTION"]

#: Lucene load points (RPS): low, the paper's headline 40, and high.
LOAD_POINTS = (36, 40, 45)
PHI = 0.99


def experiment_tail_attribution(scale: Scale | None = None) -> FigureResult:
    """Per-component tail budgets for FM vs FIX-N across loads."""
    scale = scale or default_scale()
    table = lucene_table(scale)
    workload = lucene_mod.lucene_workload(profile_size=scale.profile_size)
    policies = {
        "FIX-2": lambda: FixedScheduler(2),
        "FIX-4": lambda: FixedScheduler(4),
        "FM": lambda: FMScheduler(table),
    }

    result = FigureResult(
        "tail-attribution",
        f"Where the p{PHI * 100:g} tail's milliseconds go, FM vs FIX-N",
    )
    columns = [
        "policy",
        "p99 (ms)",
        *[name.removesuffix("_ms") for name in ATTRIBUTION_COMPONENTS],
        "tail mean (ms)",
    ]
    entries: dict[tuple[str, int], object] = {}
    for rps in LOAD_POINTS:
        rows = []
        for name, factory in policies.items():
            # Same seed per load point: all policies replay one trace.
            run = run_policy(
                factory(),
                workload,
                rps=float(rps),
                cores=lucene_mod.CORES,
                num_requests=scale.num_requests,
                quantum_ms=lucene_mod.QUANTUM_MS,
                seed=1300 + rps,
                spin_fraction=lucene_mod.SPIN_FRACTION,
            )
            tail = run.attribution_summary(PHI)["tail"]
            rows.append(
                [
                    name,
                    run.tail_latency_ms(PHI),
                    *[tail[component] for component in ATTRIBUTION_COMPONENTS],
                    tail["latency_ms"],
                ]
            )
            entries[(name, rps)] = entry_from_result(
                f"attr:{name}@{rps}",
                run,
                config={
                    "experiment": "tail-attribution",
                    "policy": name,
                    "rps": rps,
                    "num_requests": scale.num_requests,
                    "phi": PHI,
                },
                seed=1300 + rps,
                scheduler=name,
                workload=workload,
                scale=scale.name,
                phi=PHI,
            )
            result.add_entry(entries[(name, rps)])
        result.add_table(
            f"Lucene at {rps} RPS: mean tail-request milliseconds by component",
            columns,
            rows,
        )

    # The headline, through the diff engine: at the paper's 40 RPS
    # point, where do FIX-2's extra tail milliseconds come from — and
    # is the gap statistically real?  (Components sum to the tail mean
    # because the decomposition is additive in virtual time, §9.)
    if (("FIX-2", 40) in entries) and (("FM", 40) in entries):
        headline = diff_runs(entries[("FIX-2", 40)], entries[("FM", 40)])
        result.add_table(
            "repro diff at 40 RPS: FIX-2 (A) vs FM (B) explanation ranking",
            PHASE_COLUMNS,
            phase_rows(headline),
        )
        result.add_note(f"FIX-2 vs FM at 40 RPS: {headline.explanation()}")
    result.add_note(
        "reproduce offline from any run: `repro-fm fig8 --trace t.json && "
        "repro analyze t.json`"
    )
    return result


#: Registry (merged into the CLI's experiment list).
TAIL_ATTRIBUTION = {"tail-attribution": experiment_tail_attribution}
