"""Run-provenance ledger: persistent, mergeable artifacts per run.

Every comparison this repo cares about — FM vs FIX-N, adaptive vs
static hedging, before/after a perf PR — starts from two *runs*.  Until
now each experiment and each CI gate hand-rolled its own pair of runs
and its own formatting; nothing recorded what was actually run, so
"diff these two results" required re-running both.  The ledger fixes
the provenance half (DESIGN.md §15); :mod:`repro.observe.diff` fixes
the comparison half.

A ledger entry is a :class:`RunCard` (what was run: config fingerprint,
seed, scheduler, workload digest, git revision) bundled with
:class:`RunArtifacts` (what it produced: full-state
:class:`~repro.telemetry.histogram.LogHistogram` dumps, attribution
totals, scalar metrics, an energy report, and the ``observe.event``
timeline).  Artifacts are *mergeable state*, not rendered tables —
histograms round-trip through :meth:`LogHistogram.dump_state`, so a
restored entry supports the same bootstrap resampling and bucket-exact
equality checks as the live object.

Storage is an append-only ``runs/`` directory: one JSON object per
line in ``ledger.jsonl`` plus a rewritten ``index.json`` mapping run
ids to line numbers (the JSONL is the source of truth; the index is a
cache and is rebuilt when missing or stale).  Run ids are
``<name>#<n>`` where ``n`` is the entry's position in the file —
stable, greppable, and safe under concurrent readers.

Determinism: nothing in an entry's *diffable* payload depends on wall
clocks or host state.  ``created_s`` and ``git_rev`` are provenance
breadcrumbs only; :func:`repro.observe.diff.diff_runs` never reads
them, which is what keeps a diff bit-identical across machines and
``--workers`` counts.
"""

from __future__ import annotations

import hashlib
import json
import math
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.telemetry.histogram import LogHistogram

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from repro.cluster.simulation import RobustClusterResult
    from repro.sim.metrics import SimulationResult
    from repro.sim.stream import StreamSummary
    from repro.workloads.workload import Workload

__all__ = [
    "RunCard",
    "RunArtifacts",
    "RunEntry",
    "RunLedger",
    "config_fingerprint",
    "workload_digest",
    "git_revision",
    "entry_from_result",
    "entry_from_summary",
    "entry_from_cluster",
]

#: Default ledger directory (relative to the invoking process's cwd).
DEFAULT_LEDGER_DIR = "runs"

#: The quantile grid every entry records point estimates for.
QUANTILE_GRID = (0.50, 0.95, 0.99, 0.999)


def config_fingerprint(config: dict) -> str:
    """A stable 12-hex-digit digest of a JSON-able config dict.

    Canonical JSON (sorted keys, no whitespace variance) hashed with
    SHA-256 — two runs share a fingerprint iff their configs are
    value-identical, regardless of dict insertion order.
    """
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def workload_digest(workload: "Workload") -> str:
    """Digest of a workload's deterministic identity.

    Hashes the declared shape (name, max degree, profile size) plus a
    fixed-seed demand sample, so two workloads digest equal iff they
    would hand the same traces to a run.
    """
    import numpy as np

    sample = workload.sampler(np.random.default_rng(90001), 64)
    payload = {
        "name": workload.name,
        "max_degree": workload.max_degree,
        "profile_size": workload.profile_size,
        "sample": [round(float(v), 9) for v in np.asarray(sample).ravel()],
    }
    return config_fingerprint(payload)


def git_revision() -> str:
    """The repo's HEAD revision, or ``"unknown"`` outside a checkout.

    Provenance only — excluded from fingerprints and diffs.
    """
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):  # pragma: no cover - env
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


@dataclass(frozen=True)
class RunCard:
    """What was run: the provenance half of a ledger entry."""

    name: str
    fingerprint: str
    seed: int
    scheduler: str = ""
    workload: str = ""
    scale: str = ""
    config: dict = field(default_factory=dict)
    git_rev: str = ""
    #: Wall-clock stamp (seconds since epoch); provenance only, never
    #: read by the diff engine.
    created_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "seed": self.seed,
            "scheduler": self.scheduler,
            "workload": self.workload,
            "scale": self.scale,
            "config": self.config,
            "git_rev": self.git_rev,
            "created_s": self.created_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunCard":
        return cls(
            name=data["name"],
            fingerprint=data["fingerprint"],
            seed=int(data["seed"]),
            scheduler=data.get("scheduler", ""),
            workload=data.get("workload", ""),
            scale=data.get("scale", ""),
            config=data.get("config", {}),
            git_rev=data.get("git_rev", ""),
            created_s=float(data.get("created_s", 0.0)),
        )


@dataclass
class RunArtifacts:
    """What a run produced: the mergeable, diffable half of an entry.

    ``histograms`` maps instrument name to full
    :meth:`LogHistogram.dump_state` payloads; ``"latency_ms"`` is the
    conventional primary series the quantile diff reads.
    ``attribution`` is :meth:`SimulationResult.attribution_summary`
    output (``{"overall": {...}, "tail": {...}}``); ``metrics`` holds
    flat scalars (counts, utilizations, bench numbers); ``energy`` an
    :meth:`EnergyReport.as_dict`; ``events`` the ``observe.event``
    timeline as dicts.
    """

    histograms: dict[str, dict] = field(default_factory=dict)
    attribution: dict = field(default_factory=dict)
    metrics: dict[str, float] = field(default_factory=dict)
    energy: dict = field(default_factory=dict)
    events: list[dict] = field(default_factory=list)

    def histogram(self, name: str) -> LogHistogram:
        """Restore one stored histogram to a live object."""
        if name not in self.histograms:
            raise ConfigurationError(
                f"no histogram {name!r} in artifacts "
                f"(have: {sorted(self.histograms) or 'none'})"
            )
        return LogHistogram.from_state(self.histograms[name])

    def add_histogram(self, name: str, histogram: LogHistogram) -> None:
        self.histograms[name] = histogram.dump_state()

    def to_dict(self) -> dict:
        return {
            "histograms": self.histograms,
            "attribution": self.attribution,
            "metrics": self.metrics,
            "energy": self.energy,
            "events": self.events,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunArtifacts":
        return cls(
            histograms=data.get("histograms", {}),
            attribution=data.get("attribution", {}),
            metrics=data.get("metrics", {}),
            energy=data.get("energy", {}),
            events=data.get("events", []),
        )


@dataclass
class RunEntry:
    """One ledger line: provenance card + artifacts."""

    card: RunCard
    artifacts: RunArtifacts
    #: Assigned at append time (``<name>#<n>``); empty for in-memory
    #: entries that were never persisted.
    run_id: str = ""

    def to_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "card": self.card.to_dict(),
            "artifacts": self.artifacts.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunEntry":
        return cls(
            card=RunCard.from_dict(data["card"]),
            artifacts=RunArtifacts.from_dict(data.get("artifacts", {})),
            run_id=data.get("run_id", ""),
        )


class RunLedger:
    """Append-only run store: ``<root>/ledger.jsonl`` + ``index.json``."""

    def __init__(self, root: str | Path = DEFAULT_LEDGER_DIR) -> None:
        self.root = Path(root)
        self.path = self.root / "ledger.jsonl"
        self.index_path = self.root / "index.json"

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def append(self, entry: RunEntry) -> str:
        """Persist ``entry``; returns the assigned run id.

        The entry's ``run_id`` is (re)assigned from its position in the
        file — appending the same in-memory entry twice yields two
        distinct runs, by design (a ledger records executions, not
        configurations).
        """
        self.root.mkdir(parents=True, exist_ok=True)
        position = self._line_count()
        entry.run_id = f"{entry.card.name}#{position}"
        with self.path.open("a") as handle:
            handle.write(json.dumps(entry.to_dict(), sort_keys=True) + "\n")
        self._write_index()
        return entry.run_id

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def entries(self) -> list[RunEntry]:
        """Every entry, file order (oldest first)."""
        if not self.path.exists():
            return []
        out = []
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if line:
                out.append(RunEntry.from_dict(json.loads(line)))
        return out

    def get(self, ref: str) -> RunEntry:
        """Resolve ``ref`` to an entry.

        Accepts an exact run id (``name#3``), a bare integer position
        (``"3"`` or ``"-1"`` for the latest), or a run name (resolves
        to the *latest* entry with that name).
        """
        entries = self.entries()
        if not entries:
            raise ConfigurationError(f"ledger at {self.root} is empty")
        try:
            position = int(ref)
        except ValueError:
            position = None
        if position is not None:
            try:
                return entries[position]
            except IndexError:
                raise ConfigurationError(
                    f"run position {position} out of range "
                    f"(ledger holds {len(entries)} entries)"
                )
        for entry in entries:
            if entry.run_id == ref:
                return entry
        named = [entry for entry in entries if entry.card.name == ref]
        if named:
            return named[-1]
        raise ConfigurationError(
            f"no run {ref!r} in ledger at {self.root} "
            f"(have: {', '.join(e.run_id for e in entries[-8:])})"
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _line_count(self) -> int:
        if not self.path.exists():
            return 0
        return sum(
            1 for line in self.path.read_text().splitlines() if line.strip()
        )

    def _write_index(self) -> None:
        """Rewrite the index cache from the JSONL source of truth."""
        index = {}
        for position, entry in enumerate(self.entries()):
            index[entry.run_id] = {
                "line": position,
                "name": entry.card.name,
                "fingerprint": entry.card.fingerprint,
                "seed": entry.card.seed,
            }
        self.index_path.write_text(json.dumps(index, indent=2, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# Entry builders
# ----------------------------------------------------------------------
def _finite_metrics(pairs: dict[str, float]) -> dict[str, float]:
    """Drop NaN/inf scalars — JSON round-trips them inconsistently and
    a diff over them is meaningless."""
    return {
        name: float(value)
        for name, value in pairs.items()
        if isinstance(value, (int, float)) and math.isfinite(value)
    }


def _card(
    name: str,
    config: dict,
    seed: int,
    scheduler: str,
    workload: "Workload | None",
    scale: str,
    stamp: bool,
) -> RunCard:
    return RunCard(
        name=name,
        fingerprint=config_fingerprint(config),
        seed=seed,
        scheduler=scheduler,
        workload=workload_digest(workload) if workload is not None else "",
        scale=scale,
        config=config,
        git_rev=git_revision() if stamp else "",
        created_s=time.time() if stamp else 0.0,
    )


def entry_from_result(
    name: str,
    result: "SimulationResult",
    *,
    config: dict,
    seed: int,
    scheduler: str = "",
    workload: "Workload | None" = None,
    scale: str = "",
    phi: float = 0.99,
    stamp: bool = False,
) -> RunEntry:
    """Build a ledger entry from a completed :class:`SimulationResult`.

    Records the latency histogram plus one histogram per additive
    attribution component (``attr.queue_ms`` ...), the exact
    attribution summary at ``phi``, scalar run metrics, and the energy
    report when the run had one.  ``stamp=False`` (the default) leaves
    wall-clock/git provenance blank so tests and determinism
    attestations get byte-identical entries.
    """
    from repro.sim.metrics import ATTRIBUTION_COMPONENTS

    artifacts = RunArtifacts()
    latency = LogHistogram()
    components = {c: LogHistogram() for c in ATTRIBUTION_COMPONENTS}
    for record in result.records:
        latency.record(record.latency_ms)
        attribution = record.attribution()
        for component, histogram in components.items():
            histogram.record(attribution[component])
    artifacts.add_histogram("latency_ms", latency)
    for component, histogram in components.items():
        artifacts.add_histogram(f"attr.{component}", histogram)
    artifacts.attribution = result.attribution_summary(phi)
    artifacts.metrics = _finite_metrics(
        {
            "count": len(result.records),
            "shed_count": result.shed_count,
            "duration_ms": result.duration_ms,
            "cpu_utilization": result.cpu_utilization(),
            "average_threads": result.average_threads(),
            "joules_per_query": result.joules_per_query(),
            **{
                f"p{q * 100:g}_ms".replace(".", "_"): latency.percentile(q)
                for q in QUANTILE_GRID
            },
        }
    )
    if result.energy is not None:
        artifacts.energy = result.energy.as_dict()
    return RunEntry(
        card=_card(name, config, seed, scheduler, workload, scale, stamp),
        artifacts=artifacts,
    )


def entry_from_summary(
    name: str,
    summary: "StreamSummary",
    *,
    config: dict,
    seed: int,
    scheduler: str = "",
    workload: "Workload | None" = None,
    scale: str = "",
    stamp: bool = False,
) -> RunEntry:
    """Build a ledger entry from a streamed :class:`StreamSummary`
    (latency histogram + scalar gauges; no per-request attribution —
    streamed runs do not retain it)."""
    artifacts = RunArtifacts()
    artifacts.add_histogram("latency_ms", summary.histogram)
    artifacts.metrics = _finite_metrics(
        {
            "count": summary.count,
            "shed_count": summary.shed_count,
            "duration_ms": summary.duration_ms,
            "cpu_utilization": summary.cpu_utilization(),
            "average_threads": summary.average_threads(),
            **{
                f"p{q * 100:g}_ms".replace(".", "_"): summary.histogram.percentile(q)
                for q in QUANTILE_GRID
            },
        }
    )
    return RunEntry(
        card=_card(name, config, seed, scheduler, workload, scale, stamp),
        artifacts=artifacts,
    )


def entry_from_cluster(
    name: str,
    result: "RobustClusterResult",
    *,
    config: dict,
    seed: int,
    scheduler: str = "",
    workload: "Workload | None" = None,
    scale: str = "",
    stamp: bool = False,
) -> RunEntry:
    """Build a ledger entry from a robust cluster run: query-latency
    and redundancy-wait histograms, redundancy counters, and the
    controller's mode transitions as ``observe.event`` records."""
    artifacts = RunArtifacts()
    latency = LogHistogram()
    for value in result.query_latencies_ms:
        latency.record(float(value))
    artifacts.add_histogram("latency_ms", latency)
    if len(result.query_redundancy_wait_ms):
        waits = LogHistogram()
        for value in result.query_redundancy_wait_ms:
            waits.record(float(value))
        artifacts.add_histogram("redundancy_wait_ms", waits)
    artifacts.metrics = _finite_metrics(
        {
            "count": len(result.query_latencies_ms),
            "hedges_sent": result.hedges_sent,
            "retries_sent": result.retries_sent,
            "timeouts": result.timeouts,
            "injected_work_ms": result.injected_work_ms,
            "mean_quality": float(result.quality.mean()),
            **{
                f"p{q * 100:g}_ms".replace(".", "_"): latency.percentile(q)
                for q in QUANTILE_GRID
            },
        }
    )
    for transition in result.mode_transitions:
        at_ms, window, from_mode, to_mode, reason = transition[:5]
        artifacts.events.append(
            {
                "at_ms": float(at_ms),
                "kind": "mode_transition",
                "window": int(window),
                "detail": {
                    "from_mode": from_mode,
                    "to_mode": to_mode,
                    "reason": reason,
                },
            }
        )
    return RunEntry(
        card=_card(name, config, seed, scheduler, workload, scale, stamp),
        artifacts=artifacts,
    )
