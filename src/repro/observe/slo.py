"""Online SLO monitoring: windowed percentiles, burn rates, drift.

An :class:`SLOMonitor` watches a latency stream against a percentile
target (e.g. "p99 <= 250 ms") over two sliding time windows — the
multi-window burn-rate discipline from SRE practice: the *short* window
reacts fast, the *long* window filters blips, and an alert (a *breach*)
fires only when both burn their error budget faster than allowed.

It also detects **drift**: when the short-window target percentile
moves away from the long-window one by more than ``drift_factor`` in
either direction, the demand mix has shifted and any offline-derived
policy state (FM's interval table) is stale.
:class:`~repro.schedulers.reprofiling.ReprofilingFMScheduler` uses this
signal to trigger a profile rebuild immediately instead of waiting for
its timer, and :class:`~repro.runtime.server.LiveFMServer` exports the
monitor's state as ``slo.*`` gauges and a degradation signal.

The monitor is deterministic and clock-free: callers pass timestamps
(virtual ms in the simulator, tracer-clock ms in the live runtime), so
the same stream always yields the same verdicts.

Empty-quantile contract (see :mod:`repro.telemetry.histogram`): this is
a *monitoring* surface, so quantiles over an empty window return
``nan`` — never raise — and ``nan`` never signals a breach or drift.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["SLOTarget", "SLOStatus", "SLOMonitor"]


@dataclass(frozen=True)
class SLOTarget:
    """A latency objective: ``percentile`` of requests under ``threshold_ms``.

    ``percentile=0.99, threshold_ms=250`` reads "99% of requests answer
    within 250 ms"; the error budget is the remaining 1%.
    """

    percentile: float
    threshold_ms: float

    def __post_init__(self) -> None:
        if not 0.0 < self.percentile < 1.0:
            raise ConfigurationError(
                f"percentile must be in (0, 1): {self.percentile}"
            )
        if self.threshold_ms <= 0:
            raise ConfigurationError(
                f"threshold_ms must be positive: {self.threshold_ms}"
            )

    @property
    def error_budget(self) -> float:
        """Allowed violation fraction (``1 - percentile``)."""
        return 1.0 - self.percentile


@dataclass(frozen=True)
class SLOStatus:
    """One snapshot of the monitor (all quantiles ``nan`` when empty)."""

    at_ms: float
    #: Target percentile over the short / long window.
    short_percentile_ms: float
    long_percentile_ms: float
    #: Error-budget burn rates (1.0 = burning exactly the budget).
    short_burn_rate: float
    long_burn_rate: float
    #: Samples currently inside each window.
    short_count: int
    long_count: int
    #: Both windows over-budget: page-worthy.
    breached: bool
    #: Short-window percentile moved > drift_factor from the long one.
    drifted: bool

    def as_dict(self) -> dict[str, float | int | bool]:
        """Plain-dict view (for gauges, reports, JSON)."""
        return {
            "at_ms": self.at_ms,
            "short_percentile_ms": self.short_percentile_ms,
            "long_percentile_ms": self.long_percentile_ms,
            "short_burn_rate": self.short_burn_rate,
            "long_burn_rate": self.long_burn_rate,
            "short_count": self.short_count,
            "long_count": self.long_count,
            "breached": self.breached,
            "drifted": self.drifted,
        }


class _Window:
    """A time-bounded sliding window of ``(at_ms, latency_ms)`` samples."""

    __slots__ = ("span_ms", "samples", "violations", "threshold_ms")

    def __init__(self, span_ms: float, threshold_ms: float) -> None:
        self.span_ms = span_ms
        self.threshold_ms = threshold_ms
        self.samples: deque[tuple[float, float]] = deque()
        self.violations = 0

    def add(self, at_ms: float, latency_ms: float) -> None:
        self.samples.append((at_ms, latency_ms))
        if latency_ms > self.threshold_ms:
            self.violations += 1
        self.evict(at_ms)

    def evict(self, now_ms: float) -> None:
        cutoff = now_ms - self.span_ms
        samples = self.samples
        while samples and samples[0][0] < cutoff:
            _, latency = samples.popleft()
            if latency > self.threshold_ms:
                self.violations -= 1

    def __len__(self) -> int:
        return len(self.samples)

    def percentile(self, q: float) -> float:
        """Order-statistic ``ceil(q*n)`` quantile; ``nan`` when empty."""
        n = len(self.samples)
        if n == 0:
            return math.nan
        ordered = sorted(latency for _, latency in self.samples)
        return ordered[max(0, math.ceil(q * n) - 1)]

    def violation_rate(self) -> float:
        """Fraction of windowed samples over threshold; ``nan`` when empty."""
        n = len(self.samples)
        return self.violations / n if n else math.nan

    def clear(self) -> None:
        self.samples.clear()
        self.violations = 0


class SLOMonitor:
    """Streaming SLO evaluation over short and long sliding windows.

    Parameters
    ----------
    target:
        The latency objective to police.
    short_window_ms / long_window_ms:
        Spans of the two sliding windows (short must not exceed long).
    burn_rate_threshold:
        Breach when *both* windows burn the error budget at or above
        this multiple (1.0 = exactly on budget; SRE alerting typically
        pages at several x).
    drift_factor:
        Drift when the short-window target percentile is more than this
        factor above — or below ``1/factor`` of — the long-window one.
        Must be > 1.
    min_samples:
        Both windows need at least this many samples before the monitor
        will declare a breach or drift (cold monitors stay quiet).
    """

    def __init__(
        self,
        target: SLOTarget,
        short_window_ms: float = 1_000.0,
        long_window_ms: float = 10_000.0,
        burn_rate_threshold: float = 1.0,
        drift_factor: float = 1.5,
        min_samples: int = 30,
    ) -> None:
        if short_window_ms <= 0 or long_window_ms <= 0:
            raise ConfigurationError("window spans must be positive")
        if short_window_ms > long_window_ms:
            raise ConfigurationError(
                f"short window {short_window_ms} exceeds long {long_window_ms}"
            )
        if burn_rate_threshold <= 0:
            raise ConfigurationError(
                f"burn_rate_threshold must be positive: {burn_rate_threshold}"
            )
        if drift_factor <= 1.0:
            raise ConfigurationError(f"drift_factor must be > 1: {drift_factor}")
        if min_samples < 1:
            raise ConfigurationError(f"min_samples must be >= 1: {min_samples}")
        self.target = target
        self.burn_rate_threshold = burn_rate_threshold
        self.drift_factor = drift_factor
        self.min_samples = min_samples
        self._short = _Window(short_window_ms, target.threshold_ms)
        self._long = _Window(long_window_ms, target.threshold_ms)
        self._observed = 0
        self._now_ms = 0.0
        #: Total samples that violated the threshold (whole stream).
        self.total_violations = 0

    # ------------------------------------------------------------------
    @property
    def observed(self) -> int:
        """Samples observed over the monitor's lifetime."""
        return self._observed

    def observe(self, latency_ms: float, at_ms: float) -> None:
        """Feed one completion (timestamps must be non-decreasing)."""
        if latency_ms < 0:
            raise ConfigurationError(f"latency must be >= 0: {latency_ms}")
        self._now_ms = at_ms
        self._observed += 1
        if latency_ms > self.target.threshold_ms:
            self.total_violations += 1
        self._short.add(at_ms, latency_ms)
        self._long.add(at_ms, latency_ms)

    # ------------------------------------------------------------------
    def burn_rate(self, window: str = "short") -> float:
        """Error-budget burn multiple over one window (``nan`` when empty).

        1.0 means violations arrive exactly at the budgeted rate; above
        1.0 the budget is burning down.
        """
        rate = self._window(window).violation_rate()
        return rate / self.target.error_budget if rate == rate else math.nan

    def percentile(self, window: str = "short") -> float:
        """Windowed target-percentile latency (``nan`` when empty)."""
        return self._window(window).percentile(self.target.percentile)

    def breached(self) -> bool:
        """Both windows burning at or above the threshold (and warm)."""
        if not self._warm():
            return False
        short, long = self.burn_rate("short"), self.burn_rate("long")
        # NaN comparisons are False, so empty windows never breach.
        return (
            short >= self.burn_rate_threshold and long >= self.burn_rate_threshold
        )

    def drifted(self) -> bool:
        """Short-window percentile diverged from the long-window one."""
        if not self._warm():
            return False
        short = self.percentile("short")
        long = self.percentile("long")
        if short != short or long != long or long <= 0.0:
            return False
        ratio = short / long
        return ratio > self.drift_factor or ratio < 1.0 / self.drift_factor

    def status(self, at_ms: float | None = None) -> SLOStatus:
        """Snapshot every signal at once (evicting up to ``at_ms``)."""
        if at_ms is not None:
            self._now_ms = max(self._now_ms, at_ms)
            self._short.evict(self._now_ms)
            self._long.evict(self._now_ms)
        return SLOStatus(
            at_ms=self._now_ms,
            short_percentile_ms=self.percentile("short"),
            long_percentile_ms=self.percentile("long"),
            short_burn_rate=self.burn_rate("short"),
            long_burn_rate=self.burn_rate("long"),
            short_count=len(self._short),
            long_count=len(self._long),
            breached=self.breached(),
            drifted=self.drifted(),
        )

    def reset(self) -> None:
        """Forget every sample (between runs)."""
        self._short.clear()
        self._long.clear()
        self._observed = 0
        self.total_violations = 0
        self._now_ms = 0.0

    # ------------------------------------------------------------------
    def _warm(self) -> bool:
        return (
            len(self._short) >= self.min_samples
            and len(self._long) >= self.min_samples
        )

    def _window(self, name: str) -> _Window:
        if name == "short":
            return self._short
        if name == "long":
            return self._long
        raise ConfigurationError(f"window must be short|long: {name!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SLOMonitor(p{self.target.percentile * 100:g}<="
            f"{self.target.threshold_ms:g}ms, observed={self._observed})"
        )
