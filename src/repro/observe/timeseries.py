"""Windowed metric time series: the live plane's storage layer.

The rest of the telemetry stack is *cumulative* — counters only grow,
histograms only fill.  Operators and controllers need *windows*: what
happened in the last 100 ms, not since boot.  This module turns the
cumulative instruments into a bounded stream of
:class:`WindowSnapshot`\\ s:

* :class:`TimeseriesRecorder` snapshots a
  :class:`~repro.telemetry.metrics.MetricsRegistry` at window
  boundaries (:meth:`MetricsRegistry.snapshot` +
  :meth:`RegistrySnapshot.delta_since`) and keeps the last ``capacity``
  windows in a ring buffer — O(instruments) per snapshot, O(capacity)
  memory, zero cost on the recording hot path;
* :func:`merge_window_streams` folds per-shard window streams into one
  (the ``repro.parallel --workers N`` reduction) — **bit-identically**,
  provided the caller passes streams in shard-index order, because the
  fold visits shards left to right in one level (no tree reduction:
  float addition is non-associative, so a two-level merge would drift);
* :func:`render_prometheus` exposes any snapshot (or a whole registry)
  in the Prometheus text exposition format;
* :func:`write_timeseries_jsonl` / :func:`read_timeseries_jsonl`
  round-trip window streams through JSONL with full histogram bucket
  state (:meth:`LogHistogram.dump_state`), so ``repro top --follow``
  can tail a file another process appends to.

Determinism contract (DESIGN.md §13): a window snapshot is a pure
function of the instrument stream and the window grid, both of which
are deterministic per shard; merging in shard-index order is therefore
reproducible across any worker count.
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.telemetry.histogram import LogHistogram
from repro.telemetry.metrics import MetricsRegistry, RegistrySnapshot

__all__ = [
    "WindowSnapshot",
    "TimeseriesRecorder",
    "TimeseriesTailer",
    "merge_window_streams",
    "render_prometheus",
    "write_timeseries_jsonl",
    "read_timeseries_jsonl",
]


@dataclass(frozen=True)
class WindowSnapshot:
    """One window of metric activity on a fixed grid.

    ``index`` is the window's position on the grid (``start_ms = index
    * window_ms`` relative to the recorder's anchor), so snapshots from
    different shards of the same run align by index.  ``counters`` are
    in-window increments, ``gauges`` last-in-window point readings,
    ``histograms`` per-window slices (exact bucket deltas).
    """

    index: int
    start_ms: float
    end_ms: float
    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, LogHistogram] = field(default_factory=dict)

    def merge(self, other: "WindowSnapshot") -> "WindowSnapshot":
        """Combine two shards' views of the *same* window.

        Counters add, histogram slices merge bucket-wise, gauges take
        the max (high-water semantics: queue depths and breach flags
        from any shard should surface, and ``max`` is exact in floats
        so the merge stays bit-identical whatever the shard count).
        """
        if other.index != self.index:
            raise ConfigurationError(
                f"cannot merge window {self.index} with window {other.index}"
            )
        counters = dict(self.counters)
        for name, value in other.counters.items():
            counters[name] = counters.get(name, 0) + value
        gauges = dict(self.gauges)
        for name, value in other.gauges.items():
            gauges[name] = max(gauges[name], value) if name in gauges else value
        histograms = {name: h.copy() for name, h in self.histograms.items()}
        for name, histogram in other.histograms.items():
            if name in histograms:
                histograms[name].update(histogram)
            else:
                histograms[name] = histogram.copy()
        return WindowSnapshot(
            index=self.index,
            start_ms=min(self.start_ms, other.start_ms),
            end_ms=max(self.end_ms, other.end_ms),
            counters=counters,
            gauges=gauges,
            histograms=histograms,
        )

    def state(self) -> tuple:
        """Hashable full state (histograms via
        :meth:`LogHistogram.state`) — the bit-identity comparison
        object for cross-shard merge audits."""
        return (
            self.index,
            self.start_ms,
            self.end_ms,
            tuple(sorted(self.counters.items())),
            tuple(sorted(self.gauges.items())),
            tuple(
                (name, histogram.state())
                for name, histogram in sorted(self.histograms.items())
            ),
        )

    def to_dict(self) -> dict:
        """JSON-ready full-fidelity form (see the JSONL exporters)."""
        return {
            "index": self.index,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "counters": dict(sorted(self.counters.items())),
            "gauges": {
                name: _jsonable_float(value)
                for name, value in sorted(self.gauges.items())
            },
            "histograms": {
                name: histogram.dump_state()
                for name, histogram in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WindowSnapshot":
        return cls(
            index=data["index"],
            start_ms=data["start_ms"],
            end_ms=data["end_ms"],
            counters=dict(data.get("counters", {})),
            gauges={
                name: _parse_float(value)
                for name, value in data.get("gauges", {}).items()
            },
            histograms={
                name: LogHistogram.from_state(state)
                for name, state in data.get("histograms", {}).items()
            },
        )


def _jsonable_float(value: float) -> float | str:
    """JSON has no NaN/Inf literal; ship them as strings like the
    Chrome-trace exporter does."""
    return value if math.isfinite(value) else repr(value)


def _parse_float(value: float | str) -> float:
    return float(value)


class TimeseriesRecorder:
    """Snapshot a registry's deltas into a bounded window ring.

    Parameters
    ----------
    registry:
        The :class:`~repro.telemetry.metrics.MetricsRegistry` to watch.
        The recorder only ever *reads* it — recording call sites pay
        nothing for the recorder's existence.
    window_ms:
        Grid span.  Windows are keyed by ``floor((at_ms - anchor) /
        window_ms)``.
    capacity:
        Ring size: only the most recent ``capacity`` windows are
        retained (an operator tool wants recent history, not the whole
        run; exporters can drain the ring incrementally).
    anchor_ms:
        Grid origin.  The simulator's virtual clock starts at 0, so the
        default anchors there and every shard of a sharded run shares
        the grid; wall-clock users pass their epoch.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        window_ms: float,
        capacity: int = 512,
        anchor_ms: float = 0.0,
    ) -> None:
        if window_ms <= 0:
            raise ConfigurationError(f"window_ms must be positive: {window_ms}")
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1: {capacity}")
        self.registry = registry
        self.window_ms = window_ms
        self.anchor_ms = anchor_ms
        self._ring: deque[WindowSnapshot] = deque(maxlen=capacity)
        self._previous = registry.snapshot()
        self._last_index: int | None = None

    def snapshot(self, at_ms: float) -> WindowSnapshot:
        """Close the window containing ``at_ms``: delta the registry
        against the previous snapshot, append to the ring, return the
        new window.  Call at (or just past) window boundaries; windows
        with no snapshot call simply do not appear in the ring (an
        all-idle window has nothing to say)."""
        index = int(math.floor((at_ms - self.anchor_ms) / self.window_ms))
        if self._last_index is not None and index <= self._last_index:
            raise ConfigurationError(
                f"snapshot at window {index} after window {self._last_index}: "
                "snapshots must advance the grid"
            )
        current = self.registry.snapshot()
        delta = current.delta_since(self._previous)
        self._previous = current
        self._last_index = index
        window = WindowSnapshot(
            index=index,
            start_ms=self.anchor_ms + index * self.window_ms,
            end_ms=self.anchor_ms + (index + 1) * self.window_ms,
            counters={k: v for k, v in delta.counters.items() if v},
            gauges=dict(delta.gauges),
            histograms={
                name: histogram
                for name, histogram in delta.histograms.items()
                if histogram.count
            },
        )
        self._ring.append(window)
        return window

    def windows(self) -> list[WindowSnapshot]:
        """The retained windows, oldest first."""
        return list(self._ring)

    @property
    def cumulative(self) -> RegistrySnapshot:
        """The registry state as of the last snapshot."""
        return self._previous


def merge_window_streams(
    streams: Sequence[Sequence[WindowSnapshot]],
) -> list[WindowSnapshot]:
    """Fold per-shard window streams into one stream, by window index.

    **Order is the contract**: pass streams sorted by shard index.  The
    fold is a single left-to-right pass per window — never reduce
    shard subsets separately and merge the partials, because histogram
    sums are floats and float addition is non-associative.  Followed,
    this reproduces bit-identical merged windows for any worker count
    (each shard's stream is deterministic, so only fold order could
    differ — and it doesn't).
    """
    merged: dict[int, WindowSnapshot] = {}
    for stream in streams:
        for window in stream:
            existing = merged.get(window.index)
            merged[window.index] = (
                window if existing is None else existing.merge(window)
            )
    return [merged[index] for index in sorted(merged)]


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    """Dotted metric names -> Prometheus-legal (dots become underscores)."""
    return "repro_" + "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )


def _prom_value(value: float) -> str:
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value) if isinstance(value, float) else str(value)


def render_prometheus(
    source: MetricsRegistry | RegistrySnapshot | WindowSnapshot,
    at_ms: float | None = None,
) -> str:
    """The Prometheus text exposition format (version 0.0.4) for a
    registry, a registry snapshot, or one window.

    Counters render as ``counter``, gauges as ``gauge``, histograms as
    ``summary`` (quantile series plus ``_sum``/``_count``) — the
    idiomatic mapping for quantile-sketch instruments.  Output is
    sorted by metric name, so two renders of equal state are equal
    text.  ``at_ms`` appends the optional sample timestamp (Prometheus
    wants integer milliseconds).
    """
    if isinstance(source, MetricsRegistry):
        source = source.snapshot()
    stamp = "" if at_ms is None else f" {int(at_ms)}"
    lines: list[str] = []
    for name, value in sorted(source.counters.items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {value}{stamp}")
    for name, value in sorted(source.gauges.items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_value(value)}{stamp}")
    for name, histogram in sorted(source.histograms.items()):
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} summary")
        for q in (0.5, 0.9, 0.99):
            lines.append(
                f'{prom}{{quantile="{q}"}} '
                f"{_prom_value(histogram.percentile(q))}{stamp}"
            )
        lines.append(f"{prom}_sum {_prom_value(histogram.sum)}{stamp}")
        lines.append(f"{prom}_count {histogram.count}{stamp}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# JSONL time-series exporters
# ----------------------------------------------------------------------
def write_timeseries_jsonl(
    path: str | Path, windows: Iterable[WindowSnapshot], append: bool = False
) -> Path:
    """Write window snapshots one JSON object per line (full histogram
    bucket state, so readers can merge bit-identically).  ``append``
    lets a live exporter emit windows as they close and a
    ``repro top --follow`` reader tail the file."""
    path = Path(path)
    mode = "a" if append else "w"
    with path.open(mode) as handle:
        for window in windows:
            handle.write(json.dumps(window.to_dict(), sort_keys=True) + "\n")
    return path


def read_timeseries_jsonl(path: str | Path) -> list[WindowSnapshot]:
    """Read a JSONL window stream written by
    :func:`write_timeseries_jsonl` (gzip-transparent: ``.gz`` paths
    decompress, matching the trace loaders)."""
    path = Path(path)
    if path.suffix == ".gz":
        import gzip

        text = gzip.decompress(path.read_bytes()).decode("utf-8")
    else:
        text = path.read_text()
    windows = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            windows.append(WindowSnapshot.from_dict(json.loads(line)))
    return windows


class TimeseriesTailer:
    """Incremental reader for a live JSONL window stream.

    ``repro top --follow`` polls a file another process is still
    appending to, so a poll can land mid-``write()`` and see a torn
    last line — half a JSON record, or even half a UTF-8 character.
    The tailer therefore consumes only newline-*terminated* lines and
    carries the unterminated byte fragment to the next poll, where the
    writer's flush completes it.  Each poll reads only the bytes
    appended since the last one; a file that shrank (truncated or
    rotated) resets the tailer and re-reads from the start.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.windows: list[WindowSnapshot] = []
        self._offset = 0
        self._fragment = b""

    def poll(self) -> list[WindowSnapshot]:
        """Consume newly completed records; returns just the fresh ones
        (``self.windows`` accumulates everything seen so far)."""
        if not self.path.exists():
            return []
        with self.path.open("rb") as handle:
            handle.seek(0, 2)
            if handle.tell() < self._offset:
                self._offset = 0
                self._fragment = b""
                self.windows = []
            handle.seek(self._offset)
            chunk = handle.read()
            self._offset = handle.tell()
        lines = (self._fragment + chunk).split(b"\n")
        self._fragment = lines.pop()
        fresh = []
        for raw in lines:
            line = raw.decode("utf-8").strip()
            if line:
                fresh.append(WindowSnapshot.from_dict(json.loads(line)))
        self.windows.extend(fresh)
        return fresh
