"""The live observability plane: windowed tail attribution, events,
exemplars, and anomaly detection — while the system runs.

:mod:`repro.observe.analyze` answers "who is the p99 and why" after the
run, from an exported trace.  :class:`LivePlane` answers it *during*
the run, from the same flight-recorder signals, without retaining full
traces (DESIGN.md §13):

* every completion lands in the current **window** (a fixed grid,
  anchored so sharded runs align): a per-window latency histogram
  slice, additive component sums (queue / service / contention /
  boost-wait / stall), per-pool joules, and a worst-k **exemplar**
  reservoir linking the window back to concrete request ids (= span
  lanes, so an operator can jump from a breach window to its span
  trees in any exported trace);
* component subsystems annotate the same stream with first-class
  **events** — adaptive-controller mode flips, reprofiling rebuilds,
  fault injections, SLO breach onsets — and the plane's deterministic
  :class:`~repro.observe.anomaly.ChangepointDetector` adds anomaly
  events over burn rate, window p99, and joules/query as each window
  closes;
* when a telemetry pipeline is attached, a
  :class:`~repro.observe.timeseries.TimeseriesRecorder` snapshots the
  MetricsRegistry deltas per window into the same bounded ring, and
  detector flags are emitted as ``observe.event`` instants so they
  ride ``--trace`` exports.

Everything is **zero-cost when disabled**: the engine and live server
guard their single hook on ``live is not None``, matching the
telemetry precedent (<3% disabled-path overhead).

Determinism: windows, attribution sums, exemplars, events, and
anomaly flags are pure functions of the observation stream and the
grid — the ``live-tail`` experiment pins the flagged window index of
the ``overload_flip`` onset across runs.

Offline **replay**: :func:`replay_spans` drives a fresh plane from any
exported trace (run spans become observations, ``observe.event``
instants become annotations), which is what ``repro top --replay``
renders — its per-window attribution totals match ``repro analyze`` on
the same trace to float residue.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import ConfigurationError
from repro.observe.anomaly import ChangepointDetector
from repro.observe.slo import SLOMonitor
from repro.observe.timeseries import TimeseriesRecorder, WindowSnapshot
from repro.sim.metrics import ATTRIBUTION_COMPONENTS
from repro.telemetry import Telemetry, resolve_telemetry
from repro.telemetry.histogram import LogHistogram
from repro.telemetry.spans import INSTANT, Span

__all__ = [
    "ObserveEvent",
    "Exemplar",
    "WindowStats",
    "LivePlane",
    "events_from_spans",
    "replay_spans",
]

#: Signals the changepoint detector watches at every window close.
DETECTOR_SIGNALS = ("p99_ms", "burn_rate", "joules_per_query")

#: Single-letter legend for attribution bars, in component order.
_BAR_LETTERS = {
    "queue_ms": "q",
    "service_ms": "s",
    "contention_ms": "c",
    "boost_wait_ms": "b",
    "stall_ms": "t",
}


@dataclass(frozen=True)
class ObserveEvent:
    """One structured event on the observability stream.

    ``kind`` is open-ended but the built-in emitters use:
    ``mode_transition`` (adaptive replication controller),
    ``reprofile`` (scheduler rebuild), ``fault`` (injected core loss /
    restore / stall), ``slo_breach`` / ``slo_clear`` (server degraded
    mode), and ``anomaly`` (changepoint detector).  ``detail`` holds
    flat JSON-able scalars.
    """

    at_ms: float
    kind: str
    window: int
    detail: dict = field(default_factory=dict)

    def as_tuple(self) -> tuple:
        """Hashable view for determinism audits."""
        return (
            self.at_ms,
            self.kind,
            self.window,
            tuple(sorted((k, v) for k, v in self.detail.items())),
        )

    def to_dict(self) -> dict:
        return {
            "at_ms": self.at_ms,
            "kind": self.kind,
            "window": self.window,
            "detail": dict(sorted(self.detail.items())),
        }


@dataclass(frozen=True)
class Exemplar:
    """A worst-k tail request pinned to its window.

    ``rid`` doubles as the span *lane*: with a ``--trace`` export of
    the same run, ``rid`` looks up the request's queue/run span tree.
    """

    rid: int
    latency_ms: float
    components: dict[str, float] = field(default_factory=dict)
    energy_j: float = 0.0
    pool: str = ""

    def dominant_component(self) -> str:
        if not self.components:
            return "unknown"
        return max(self.components.items(), key=lambda kv: kv[1])[0]


@dataclass
class WindowStats:
    """One closed window of the live plane's stream."""

    index: int
    start_ms: float
    end_ms: float
    count: int
    #: Per-window latency slice (mergeable; ``relative_error`` as
    #: configured on the plane).
    latency: LogHistogram
    #: Additive component sums over the window's completions (ms).
    components: dict[str, float]
    #: Per-pool joules ("" pools collapse into "total").
    energy_j: dict[str, float]
    #: SLO verdicts at window close (NaN burn when no monitor).
    breached: bool = False
    burn_rate: float = math.nan
    #: Last known controller mode ("" = no controller annotated yet).
    mode: str = ""
    events: list[ObserveEvent] = field(default_factory=list)
    exemplars: list[Exemplar] = field(default_factory=list)

    @property
    def p50_ms(self) -> float:
        return self.latency.percentile(0.50)

    @property
    def p99_ms(self) -> float:
        return self.latency.percentile(0.99)

    @property
    def joules_per_query(self) -> float:
        if not self.count or not self.energy_j:
            return math.nan
        return sum(self.energy_j.values()) / self.count

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "start_ms": self.start_ms,
            "end_ms": self.end_ms,
            "count": self.count,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "components": dict(sorted(self.components.items())),
            "energy_j": dict(sorted(self.energy_j.items())),
            "breached": self.breached,
            "burn_rate": self.burn_rate,
            "mode": self.mode,
            "events": [event.to_dict() for event in self.events],
            "exemplars": [
                {
                    "rid": e.rid,
                    "latency_ms": e.latency_ms,
                    "dominant": e.dominant_component(),
                    "energy_j": e.energy_j,
                    "pool": e.pool,
                }
                for e in self.exemplars
            ],
        }


class LivePlane:
    """Windowed streaming observability over a completion stream.

    Parameters
    ----------
    window_ms:
        Grid span (100 ms default — fine enough to catch the
        overload-flip ramp, coarse enough to hold p99s).
    capacity:
        Ring bound: windows retained (and, when telemetry is attached,
        registry snapshots retained by the piggybacked
        :class:`TimeseriesRecorder`).
    anchor_ms:
        Grid origin.  ``0.0`` (default) suits the simulator's virtual
        clock and keeps sharded runs aligned; ``None`` anchors at the
        first observation (wall clocks must not replay an idle epoch).
    slo:
        Optional :class:`~repro.observe.slo.SLOMonitor` read at every
        window close for breach/burn columns and the detector's
        burn-rate signal.
    feed_slo:
        Whether :meth:`observe` feeds the monitor.  ``True`` when the
        plane owns the monitor (engine wiring); ``False`` when the
        serving layer already feeds the same monitor
        (:class:`~repro.runtime.server.LiveFMServer` does) and the
        plane must only *read* it — double-feeding would double-count
        the error budget.
    detector:
        The changepoint detector; ``None`` builds the default.  Runs at
        window closes over :data:`DETECTOR_SIGNALS`.
    exemplars:
        Worst-k reservoir size per window.
    telemetry:
        Optional pipeline: wires the per-window
        :class:`TimeseriesRecorder` over its MetricsRegistry and emits
        detector flags as ``observe.event`` instants (component
        subsystems emit their own kinds).  Resolved like every other
        instrumented component.
    """

    def __init__(
        self,
        window_ms: float = 100.0,
        capacity: int = 512,
        anchor_ms: float | None = 0.0,
        slo: SLOMonitor | None = None,
        feed_slo: bool = True,
        detector: ChangepointDetector | None = None,
        exemplars: int = 3,
        telemetry: Telemetry | None = None,
        relative_error: float = 0.01,
    ) -> None:
        if window_ms <= 0:
            raise ConfigurationError(f"window_ms must be positive: {window_ms}")
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1: {capacity}")
        if exemplars < 0:
            raise ConfigurationError(f"exemplars must be >= 0: {exemplars}")
        self.window_ms = window_ms
        self.capacity = capacity
        self.slo = slo
        self.feed_slo = feed_slo
        self.detector = detector or ChangepointDetector()
        self.exemplar_k = exemplars
        self.relative_error = relative_error
        self.telemetry = resolve_telemetry(telemetry)
        self.timeseries: TimeseriesRecorder | None = None
        self._anchor_ms = anchor_ms
        self._ring: deque[WindowStats] = deque(maxlen=capacity)
        #: Every event observed or raised, in stream order (bounded by
        #: the same capacity discipline: events of evicted windows are
        #: pruned lazily when the list doubles the ring's span).
        self.events: list[ObserveEvent] = []
        self._window_end: float | None = None
        self._mode = ""
        self._reset_accumulators()
        if self.telemetry is not None:
            self.timeseries = TimeseriesRecorder(
                self.telemetry.metrics,
                window_ms,
                capacity=capacity,
                anchor_ms=anchor_ms or 0.0,
            )

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def observe(
        self,
        at_ms: float,
        latency_ms: float,
        components: dict[str, float] | None = None,
        energy_j: float = 0.0,
        pool: str = "",
        rid: int = -1,
    ) -> None:
        """Feed one completion (timestamps must be non-decreasing).

        ``components`` is the flight recorder's additive decomposition
        (any subset of :data:`ATTRIBUTION_COMPONENTS`; omitted
        components accumulate nothing).  Crossing a window boundary
        closes windows, runs the detector, and may append events.
        """
        self._roll_to(at_ms)
        if self.slo is not None and self.feed_slo:
            self.slo.observe(latency_ms, at_ms=at_ms)
        self._count += 1
        self._latency.record(latency_ms)
        if components:
            sums = self._component_sums
            for name, value in components.items():
                sums[name] = sums.get(name, 0.0) + value
        if energy_j:
            key = pool or "total"
            self._energy[key] = self._energy.get(key, 0.0) + energy_j
        if self.exemplar_k:
            self._reserve_exemplar(rid, latency_ms, components, energy_j, pool)

    def annotate(self, at_ms: float, kind: str, **detail: object) -> ObserveEvent:
        """Attach a structured event to the stream (mode flips,
        reprofiles, faults, breach onsets...).  Returns the recorded
        event.  Advances the window grid like :meth:`observe`."""
        self._roll_to(at_ms)
        event = ObserveEvent(
            at_ms=at_ms,
            kind=kind,
            window=self._index_of(at_ms),
            detail=dict(detail),
        )
        self._pending_events.append(event)
        self.events.append(event)
        if kind == "mode_transition":
            self._mode = str(detail.get("to_mode", self._mode))
        return event

    def flush(self, at_ms: float) -> None:
        """Close every window ending at or before ``at_ms``, then fold
        any remaining partial window (end of run)."""
        if self._window_end is None:
            return
        self._roll_to(at_ms)
        if self._count or self._pending_events:
            self._close_window(self._window_end)
            self._window_end += self.window_ms

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def windows(self) -> list[WindowStats]:
        """Closed windows retained by the ring, oldest first."""
        return list(self._ring)

    def anomalies(self) -> list[ObserveEvent]:
        """The detector's flags as events, stream order."""
        return [e for e in self.events if e.kind == "anomaly"]

    def attribution_totals(self) -> dict[str, float]:
        """Component sums over every retained window (ms) — the totals
        ``repro top --replay`` cross-checks against ``repro analyze``."""
        totals: dict[str, float] = {}
        for window in self._ring:
            for name, value in window.components.items():
                totals[name] = totals.get(name, 0.0) + value
        return totals

    def window_snapshots(self) -> list[WindowSnapshot]:
        """The piggybacked registry snapshots (empty without telemetry)."""
        return self.timeseries.windows() if self.timeseries is not None else []

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _reset_accumulators(self) -> None:
        self._count = 0
        self._latency = LogHistogram(self.relative_error)
        self._component_sums: dict[str, float] = {}
        self._energy: dict[str, float] = {}
        self._exemplars: list[Exemplar] = []
        self._exemplar_floor = math.inf  # weakest retained latency
        self._pending_events: list[ObserveEvent] = []

    def _index_of(self, at_ms: float) -> int:
        anchor = self._anchor_ms if self._anchor_ms is not None else at_ms
        return int(math.floor((at_ms - anchor) / self.window_ms))

    def _roll_to(self, at_ms: float) -> None:
        if self._window_end is None:
            anchor = self._anchor_ms
            if anchor is None:
                self._anchor_ms = anchor = at_ms
            # First activity: open the window containing at_ms.
            self._window_end = (
                anchor + (self._index_of(at_ms) + 1) * self.window_ms
            )
            return
        while at_ms >= self._window_end:
            self._close_window(self._window_end)
            self._window_end += self.window_ms

    def _close_window(self, end_ms: float) -> None:
        index = self._index_of(end_ms - self.window_ms / 2)
        breached = False
        burn = math.nan
        if self.slo is not None:
            status = self.slo.status(at_ms=end_ms)
            breached = status.breached
            burn = status.long_burn_rate
        stats = WindowStats(
            index=index,
            start_ms=end_ms - self.window_ms,
            end_ms=end_ms,
            count=self._count,
            latency=self._latency,
            components=self._component_sums,
            energy_j=self._energy,
            breached=breached,
            burn_rate=burn,
            mode=self._mode,
            events=self._pending_events,
            exemplars=sorted(
                self._exemplars, key=lambda e: (-e.latency_ms, e.rid)
            ),
        )
        self._detect(stats)
        self._ring.append(stats)
        if self.timeseries is not None:
            self.timeseries.snapshot(end_ms - self.window_ms / 2)
        self._reset_accumulators()
        self._prune_events()

    def _detect(self, stats: WindowStats) -> None:
        """Run the changepoint detector over this window's signals and
        append any flags as anomaly events."""
        signals = (
            ("p99_ms", stats.p99_ms),
            ("burn_rate", stats.burn_rate),
            ("joules_per_query", stats.joules_per_query),
        )
        for signal, value in signals:
            flag = self.detector.observe(signal, stats.index, value)
            if flag is None:
                continue
            event = ObserveEvent(
                at_ms=stats.end_ms,
                kind="anomaly",
                window=stats.index,
                detail={
                    "signal": flag.signal,
                    "direction": flag.direction,
                    "value": flag.value,
                    "baseline_mean": flag.baseline_mean,
                    "z_score": flag.z_score,
                },
            )
            stats.events.append(event)
            self.events.append(event)
            if self.telemetry is not None:
                self.telemetry.tracer.instant(
                    "observe.event",
                    track="observe",
                    at_ms=stats.end_ms,
                    kind="anomaly",
                    signal=flag.signal,
                    direction=flag.direction,
                    value=flag.value,
                    window=stats.index,
                )

    def _prune_events(self) -> None:
        """Drop events older than the ring's oldest retained window
        once the list doubles the ring span (lazy, amortized O(1))."""
        if len(self.events) <= 2 * self.capacity + 16:
            return
        if not self._ring:
            return
        floor_index = self._ring[0].index
        self.events = [e for e in self.events if e.window >= floor_index]

    def _reserve_exemplar(
        self,
        rid: int,
        latency_ms: float,
        components: dict[str, float] | None,
        energy_j: float,
        pool: str,
    ) -> None:
        reservoir = self._exemplars
        if len(reservoir) < self.exemplar_k:
            reservoir.append(
                Exemplar(rid, latency_ms, dict(components or {}), energy_j, pool)
            )
            if latency_ms < self._exemplar_floor:
                self._exemplar_floor = latency_ms
            return
        # Fast rejection: most completions fall below the weakest
        # retained exemplar — one float compare, no scan.
        if latency_ms <= self._exemplar_floor:
            return
        weakest = min(range(len(reservoir)), key=lambda i: reservoir[i].latency_ms)
        reservoir[weakest] = Exemplar(
            rid, latency_ms, dict(components or {}), energy_j, pool
        )
        self._exemplar_floor = min(e.latency_ms for e in reservoir)

    # ------------------------------------------------------------------
    # Rendering (the `repro top` surface)
    # ------------------------------------------------------------------
    def render(self, last: int = 20, bar_width: int = 24) -> str:
        """A text dashboard of the most recent ``last`` windows:
        per-window p99, an attribution bar, controller mode, energy,
        and event markers.  Bar legend: q=queue s=service c=contention
        b=boost-wait t=stall."""
        windows = self.windows()[-last:]
        header = (
            f"{'win':>5}  {'span (ms)':>17}  {'n':>5}  {'p99 ms':>9}  "
            f"{'attribution':<{bar_width}}  {'mode':<10} {'J/q':>8}  events"
        )
        lines = [header, "-" * len(header)]
        for window in windows:
            lines.append(_render_window_row(window, bar_width))
        totals = self.attribution_totals()
        if totals:
            parts = ", ".join(
                f"{name.removesuffix('_ms')}={totals[name]:.6f}"
                for name in ATTRIBUTION_COMPONENTS
                if name in totals
            )
            lines.append(f"attribution totals (ms): {parts}")
        lines.append(
            "bar legend: q=queue s=service c=contention b=boost_wait t=stall"
            " | * = breached window"
        )
        return "\n".join(lines)


def _render_window_row(window: WindowStats, bar_width: int) -> str:
    total = sum(window.components.values())
    bar = ""
    if total > 0:
        for name in ATTRIBUTION_COMPONENTS:
            share = window.components.get(name, 0.0) / total
            bar += _BAR_LETTERS.get(name, "?") * int(round(share * bar_width))
        bar = bar[:bar_width]
    p99 = window.p99_ms
    joules = window.joules_per_query
    markers = " ".join(
        f"{event.kind}[{event.detail.get('signal', event.detail.get('to_mode', ''))}]"
        if event.detail
        else event.kind
        for event in window.events
    )
    flag = "*" if window.breached else " "
    p99_cell = f"{p99:>9.2f}" if p99 == p99 else f"{'-':>9}"
    joules_cell = f"{joules:>8.4f}" if joules == joules else f"{'-':>8}"
    return (
        f"{window.index:>4}{flag} "
        f"{window.start_ms:>8.0f}-{window.end_ms:<8.0f} "
        f"{window.count:>5}  {p99_cell}  "
        f"{bar:<{bar_width}}  {window.mode or '-':<10} "
        f"{joules_cell}  {markers}"
    ).rstrip()


# ----------------------------------------------------------------------
# Trace replay (the `repro top --replay` path)
# ----------------------------------------------------------------------
def events_from_spans(spans: Sequence[Span]) -> list[ObserveEvent]:
    """Reconstruct the ``observe.event`` stream from exported spans.

    Every emitter writes instants named ``observe.event`` on the
    ``observe`` track with a ``kind`` attr; remaining attrs become the
    event detail.  Window indexes are not resolved here (the plane
    re-derives them on replay)."""
    events = []
    for span in spans:
        if span.kind != INSTANT or span.name != "observe.event":
            continue
        detail = dict(span.attrs)
        kind = str(detail.pop("kind", "unknown"))
        events.append(
            ObserveEvent(
                at_ms=span.start_ms,
                kind=kind,
                window=int(detail.pop("window", -1)),
                detail=detail,
            )
        )
    events.sort(key=lambda e: e.at_ms)
    return events


def replay_spans(
    spans: Sequence[Span],
    window_ms: float = 100.0,
    track: str | None = None,
    slo: SLOMonitor | None = None,
    detector: ChangepointDetector | None = None,
    exemplars: int = 3,
    capacity: int | None = None,
) -> LivePlane:
    """Drive a fresh :class:`LivePlane` from an exported trace.

    Run spans become completions (flight-recorder attrs preserved, so
    attribution totals match ``repro analyze`` to float residue);
    ``observe.event`` instants become annotations — except ``anomaly``
    events, which the replayed detector re-derives itself (feeding the
    recorded ones back would double-flag).  ``track`` picks the
    request track (default: ``sim`` if present, else ``runtime``).
    ``capacity=None`` sizes the ring to hold the whole trace.
    """
    from repro.observe.analyze import requests_from_spans

    per_track = requests_from_spans(list(spans))
    request_tracks = [t for t in ("sim", "runtime") if t in per_track]
    if track is None:
        if not request_tracks:
            raise ConfigurationError(
                "trace holds no sim/runtime request track to replay"
            )
        track = request_tracks[0]
    elif track not in per_track:
        raise ConfigurationError(
            f"track {track!r} not in trace (have: {sorted(per_track) or 'none'})"
        )
    views = [v for v in per_track[track] if not v.shed]
    events = [e for e in events_from_spans(spans) if e.kind != "anomaly"]

    # One time-sorted stream of observations and annotations, so the
    # plane's window grid advances monotonically.  Annotations at the
    # same timestamp sort before completions (a fault fires before the
    # completions it delays).
    stream: list[tuple[float, int, object]] = [
        (event.at_ms, 0, event) for event in events
    ]
    stream.extend((view.end_ms, 1, view) for view in views)
    stream.sort(key=lambda item: (item[0], item[1]))

    if capacity is None:
        if stream:
            span_ms = stream[-1][0] - min(item[0] for item in stream)
            capacity = max(16, int(math.ceil(span_ms / window_ms)) + 2)
        else:
            capacity = 16
    plane = LivePlane(
        window_ms=window_ms,
        capacity=capacity,
        anchor_ms=0.0,
        slo=slo,
        feed_slo=slo is not None,
        detector=detector,
        exemplars=exemplars,
    )
    last_ms = 0.0
    for at_ms, order, item in stream:
        last_ms = at_ms
        if order == 0:
            event: ObserveEvent = item  # type: ignore[assignment]
            plane.annotate(at_ms, event.kind, **event.detail)
        else:
            view = item  # RequestView
            energy = view.energy_j if view.energy_j == view.energy_j else 0.0
            plane.observe(
                at_ms=at_ms,
                latency_ms=view.latency_ms,
                components=view.components,
                energy_j=energy,
                pool=view.pool,
                rid=view.lane,
            )
    plane.flush(last_ms + window_ms)
    return plane
