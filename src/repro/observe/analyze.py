"""Offline trace analysis: who is the p99, and why?

Ingests a trace written by any experiment's ``--trace`` flag — Chrome
``trace_event`` JSON (:func:`repro.telemetry.export.write_chrome_trace`)
or span JSONL (:func:`~repro.telemetry.export.write_spans_jsonl`) —
reconstructs per-request views, identifies the requests composing the
φ-tail, and attributes their latency to the flight recorder's additive
components (queue wait, service, contention, boost wait, stall; see
DESIGN.md §9).  For cluster tracks it correlates tail membership with
hedging, and it echoes the run's fault/shed/hedge counters so a tail
report carries its context.

Used as a library (:func:`analyze_trace`) and as the ``repro analyze``
CLI::

    repro-fm tail-attribution --trace trace.json
    repro analyze trace.json --phi 0.99 --json report.json
"""

from __future__ import annotations

import argparse
import gzip
import json
import math
import sys
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConfigurationError
from repro.experiments.report import render_table
from repro.sim.metrics import ATTRIBUTION_COMPONENTS
from repro.telemetry.export import span_from_dict
from repro.telemetry.spans import INSTANT, Span

__all__ = [
    "RequestView",
    "TraceData",
    "TrackReport",
    "AnalysisReport",
    "load_trace",
    "requests_from_spans",
    "analyze_spans",
    "analyze_trace",
    "main",
]

#: Tracks holding one request per lane with queue/run/shed spans.
_REQUEST_TRACKS = ("sim", "runtime")
#: Counters worth echoing into a tail report, when present.
_CONTEXT_COUNTERS = (
    "sim.arrivals",
    "sim.completions",
    "sim.sheds",
    "sim.boosts",
    "sim.degree_raises",
    "sim.migrations",
    "runtime.arrivals",
    "runtime.completions",
    "runtime.sheds",
    "runtime.deadline_sheds",
    "cluster.queries",
    "cluster.hedges",
    "cluster.retries",
    "cluster.retry.injected_work",
    "cluster.deadline_misses",
)


@dataclass
class RequestView:
    """One reconstructed request: latency plus its additive components."""

    track: str
    lane: int
    start_ms: float
    end_ms: float
    latency_ms: float
    #: Additive decomposition (sums to ``latency_ms`` when the trace
    #: carries flight-recorder attrs; coarse queue/execute otherwise).
    components: dict[str, float] = field(default_factory=dict)
    boosted: bool = False
    hedged: bool = False
    shed: bool = False
    #: Joules this request burned (``nan`` when the trace predates
    #: energy accounting or the run was homogeneous-legacy).
    energy_j: float = math.nan
    #: Core pool the request finished on (``""`` when untracked).
    pool: str = ""

    def dominant_component(self) -> str:
        """The component contributing the most latency."""
        if not self.components:
            return "unknown"
        return max(self.components.items(), key=lambda kv: kv[1])[0]


@dataclass
class TraceData:
    """A loaded trace: reconstructed spans plus the metrics snapshot."""

    spans: list[Span]
    metrics: dict | None = None

    def counters(self) -> dict[str, int]:
        if not self.metrics:
            return {}
        return dict(self.metrics.get("counters", {}))


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def load_trace(path: str | Path) -> TraceData:
    """Load Chrome trace-event JSON or span JSONL (auto-detected).

    ``.gz``-suffixed paths (``trace.json.gz`` / ``spans.jsonl.gz``) are
    decompressed transparently — long traced runs compress ~20x, so
    archived experiment traces ship gzipped.
    """
    path = Path(path)
    if path.suffix == ".gz":
        text = gzip.decompress(path.read_bytes()).decode("utf-8")
    else:
        text = path.read_text()
    try:
        document = json.loads(text)
    except json.JSONDecodeError:
        document = None
    if isinstance(document, dict) and "traceEvents" in document:
        return _from_chrome(document)
    # JSONL: one span dict per line.
    spans = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            spans.append(span_from_dict(json.loads(line)))
    if not spans:
        raise ConfigurationError(f"{path}: no spans found (empty trace?)")
    return TraceData(spans=spans)


def _from_chrome(document: dict) -> TraceData:
    """Rebuild spans from a Chrome trace-event document."""
    events = document.get("traceEvents", [])
    track_of_pid: dict[int, str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "process_name":
            track_of_pid[event["pid"]] = event.get("args", {}).get("name", "")
    spans: list[Span] = []
    for index, event in enumerate(events):
        phase = event.get("ph")
        if phase not in ("X", "i"):
            continue
        start_ms = float(event.get("ts", 0.0)) / 1000.0
        duration_ms = float(event.get("dur", 0.0)) / 1000.0
        spans.append(
            Span(
                name=event.get("name", ""),
                track=track_of_pid.get(event.get("pid"), str(event.get("pid"))),
                lane=int(event.get("tid", 0)),
                span_id=index + 1,
                parent_id=None,
                start_ms=start_ms,
                end_ms=start_ms if phase == "i" else start_ms + duration_ms,
                kind=INSTANT if phase == "i" else "span",
                attrs=dict(event.get("args", {})),
            )
        )
    if not spans:
        raise ConfigurationError("trace document holds no span events")
    metrics = (document.get("otherData") or {}).get("metrics")
    return TraceData(spans=spans, metrics=metrics)


# ----------------------------------------------------------------------
# Reconstruction
# ----------------------------------------------------------------------
def requests_from_spans(spans: list[Span]) -> dict[str, list[RequestView]]:
    """Per-track request views reconstructed from raw spans.

    ``sim`` / ``runtime`` tracks yield one view per ``run`` span (its
    flight-recorder attrs when present, else a coarse queue/execute
    split) plus a view per ``shed`` span.  ``cluster`` yields one view
    per query lane — latency is the slowest shard — flagged ``hedged``
    when a ``cluster.hedge`` span exists for the lane.
    """
    by_track: dict[str, list[Span]] = {}
    for span in spans:
        by_track.setdefault(span.track, []).append(span)

    out: dict[str, list[RequestView]] = {}
    for track in _REQUEST_TRACKS:
        views = _request_track_views(track, by_track.get(track, []))
        if views:
            out[track] = views
    if "cluster" in by_track:
        hedged_lanes = {s.lane for s in by_track.get("cluster.hedge", [])}
        views = _cluster_views(by_track["cluster"], hedged_lanes)
        if views:
            out["cluster"] = views
    return out


def _request_track_views(track: str, spans: list[Span]) -> list[RequestView]:
    queue_ms: dict[int, float] = {}
    for span in spans:
        if span.name == "queue" and span.kind != INSTANT:
            queue_ms[span.lane] = queue_ms.get(span.lane, 0.0) + span.duration_ms
    views: list[RequestView] = []
    for span in spans:
        if span.kind == INSTANT:
            continue
        if span.name == "run":
            waited = float(span.attrs.get("queue_ms", queue_ms.get(span.lane, 0.0)))
            latency = float(span.attrs.get("latency_ms", waited + span.duration_ms))
            if "service_ms" in span.attrs:
                components = {
                    name: float(span.attrs.get(name, 0.0))
                    for name in ATTRIBUTION_COMPONENTS
                }
            else:  # pre-attribution trace: coarse two-way split
                components = {"queue_ms": waited, "execute_ms": span.duration_ms}
            views.append(
                RequestView(
                    track=track,
                    lane=span.lane,
                    start_ms=span.start_ms - waited,
                    end_ms=span.end_ms,
                    latency_ms=latency,
                    components=components,
                    boosted=bool(span.attrs.get("boosted", False)),
                    energy_j=float(span.attrs.get("energy_j", math.nan)),
                    pool=str(span.attrs.get("pool", "")),
                )
            )
        elif span.name == "shed":
            views.append(
                RequestView(
                    track=track,
                    lane=span.lane,
                    start_ms=span.start_ms,
                    end_ms=span.end_ms,
                    latency_ms=span.duration_ms,
                    components={"queue_ms": span.duration_ms},
                    shed=True,
                )
            )
    return views


def _cluster_views(
    spans: list[Span], hedged_lanes: set[int]
) -> list[RequestView]:
    by_lane: dict[int, list[Span]] = {}
    for span in spans:
        if span.kind != INSTANT and span.name.startswith("shard"):
            by_lane.setdefault(span.lane, []).append(span)
    views = []
    for lane, shard_spans in sorted(by_lane.items()):
        slowest = max(shard_spans, key=lambda s: s.duration_ms)
        views.append(
            RequestView(
                track="cluster",
                lane=lane,
                start_ms=min(s.start_ms for s in shard_spans),
                end_ms=max(s.end_ms for s in shard_spans),
                latency_ms=slowest.duration_ms,
                components={
                    "slowest_shard_ms": slowest.duration_ms,
                    "fanout_spread_ms": slowest.duration_ms
                    - min(s.duration_ms for s in shard_spans),
                },
                hedged=lane in hedged_lanes,
            )
        )
    return views


# ----------------------------------------------------------------------
# Tail analysis
# ----------------------------------------------------------------------
@dataclass
class TrackReport:
    """Tail attribution for one track."""

    track: str
    phi: float
    count: int
    shed_count: int
    mean_ms: float
    tail_threshold_ms: float
    tail_count: int
    #: component -> {overall_mean_ms, tail_mean_ms, tail_share}.
    components: dict[str, dict[str, float]]
    #: Correlates (tail vs rest): boosted / hedged membership rates.
    boosted_rate: tuple[float, float] | None = None
    hedged_rate: tuple[float, float] | None = None
    #: The slowest requests, worst first.
    slowest: list[RequestView] = field(default_factory=list)
    #: Mean joules per request overall and over the tail (``nan`` when
    #: the trace carries no energy attrs — pre-hetero traces).
    joules_per_query: float = math.nan
    tail_joules_per_query: float = math.nan

    @property
    def has_energy(self) -> bool:
        return self.joules_per_query == self.joules_per_query

    def to_json(self) -> dict:
        out = {
            "track": self.track,
            "phi": self.phi,
            "count": self.count,
            "shed_count": self.shed_count,
            "mean_ms": self.mean_ms,
            "tail_threshold_ms": self.tail_threshold_ms,
            "tail_count": self.tail_count,
            "components": self.components,
            "slowest": [
                {
                    "lane": v.lane,
                    "latency_ms": v.latency_ms,
                    "dominant": v.dominant_component(),
                    "boosted": v.boosted,
                    "hedged": v.hedged,
                }
                for v in self.slowest
            ],
        }
        if self.boosted_rate is not None:
            out["boosted_rate"] = {
                "tail": self.boosted_rate[0], "rest": self.boosted_rate[1]
            }
        if self.hedged_rate is not None:
            out["hedged_rate"] = {
                "tail": self.hedged_rate[0], "rest": self.hedged_rate[1]
            }
        if self.has_energy:
            out["joules_per_query"] = self.joules_per_query
            out["tail_joules_per_query"] = self.tail_joules_per_query
            for view, entry in zip(self.slowest, out["slowest"]):
                entry["energy_j"] = view.energy_j
                if view.pool:
                    entry["pool"] = view.pool
        return out

    def render(self) -> str:
        parts = [
            f"--- track {self.track}: {self.count} requests, "
            f"p{self.phi * 100:g} >= {self.tail_threshold_ms:.2f} ms "
            f"({self.tail_count} in tail"
            + (f", {self.shed_count} shed" if self.shed_count else "")
            + ") ---"
        ]
        rows = [
            [
                name,
                stats["overall_mean_ms"],
                stats["tail_mean_ms"],
                f"{stats['tail_share']:.1%}"
                if stats["tail_share"] == stats["tail_share"]
                else "nan",
            ]
            for name, stats in self.components.items()
        ]
        parts.append(
            render_table(
                ["component", "mean (ms)", "tail mean (ms)", "tail share"], rows
            )
        )
        if self.has_energy:
            parts.append(
                f"energy: {self.joules_per_query:.4g} J/query "
                f"(tail mean {self.tail_joules_per_query:.4g} J)"
            )
        correlates = []
        if self.boosted_rate is not None:
            correlates.append(
                ["boosted", f"{self.boosted_rate[0]:.1%}", f"{self.boosted_rate[1]:.1%}"]
            )
        if self.hedged_rate is not None:
            correlates.append(
                ["hedged", f"{self.hedged_rate[0]:.1%}", f"{self.hedged_rate[1]:.1%}"]
            )
        if correlates:
            parts.append("")
            parts.append(render_table(["signal", "tail", "rest"], correlates))
        if self.slowest:
            parts.append("")
            columns = ["lane", "latency (ms)", "dominant component"]
            rows = [
                [v.lane, v.latency_ms, v.dominant_component()]
                for v in self.slowest
            ]
            if self.has_energy:
                columns += ["energy (J)", "pool"]
                for row, view in zip(rows, self.slowest):
                    row.append(view.energy_j)
                    row.append(view.pool or "-")
            parts.append(render_table(columns, rows))
        return "\n".join(parts)


@dataclass
class AnalysisReport:
    """The whole trace's tail story: per-track reports plus context."""

    phi: float
    tracks: dict[str, TrackReport]
    counters: dict[str, int] = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "phi": self.phi,
            "tracks": {name: report.to_json() for name, report in self.tracks.items()},
            "counters": self.counters,
        }

    def render(self) -> str:
        parts = [f"=== tail attribution report (phi={self.phi}) ==="]
        for name in sorted(self.tracks):
            parts.append("")
            parts.append(self.tracks[name].render())
        if self.counters:
            parts.append("")
            parts.append("run context (counters):")
            parts.append(
                render_table(
                    ["counter", "value"],
                    [[k, v] for k, v in sorted(self.counters.items())],
                )
            )
        return "\n".join(parts)


def _tail_threshold(latencies: list[float], phi: float) -> float:
    """Order-statistic φ-percentile (``ceil(phi*n)`` rank)."""
    ordered = sorted(latencies)
    return ordered[max(0, math.ceil(phi * len(ordered)) - 1)]


def _membership_rate(tail: list[RequestView], rest: list[RequestView], flag: str):
    def rate(views: list[RequestView]) -> float:
        if not views:
            return math.nan
        return sum(1 for v in views if getattr(v, flag)) / len(views)

    return rate(tail), rate(rest)


def _report_track(
    track: str, views: list[RequestView], phi: float, top: int
) -> TrackReport:
    completed = [v for v in views if not v.shed]
    sheds = len(views) - len(completed)
    if not completed:
        raise ConfigurationError(
            f"track {track!r}: every request was shed; no latency to attribute"
        )
    latencies = [v.latency_ms for v in completed]
    threshold = _tail_threshold(latencies, phi)
    tail = [v for v in completed if v.latency_ms >= threshold]
    rest = [v for v in completed if v.latency_ms < threshold]
    component_names: list[str] = []
    for view in completed:
        for name in view.components:
            if name not in component_names:
                component_names.append(name)
    tail_mean_latency = sum(v.latency_ms for v in tail) / len(tail)
    components = {}
    for name in component_names:
        overall = sum(v.components.get(name, 0.0) for v in completed) / len(completed)
        tail_mean = sum(v.components.get(name, 0.0) for v in tail) / len(tail)
        components[name] = {
            "overall_mean_ms": overall,
            "tail_mean_ms": tail_mean,
            "tail_share": tail_mean / tail_mean_latency
            if tail_mean_latency > 0
            else math.nan,
        }
    report = TrackReport(
        track=track,
        phi=phi,
        count=len(completed),
        shed_count=sheds,
        mean_ms=sum(latencies) / len(latencies),
        tail_threshold_ms=threshold,
        tail_count=len(tail),
        components=components,
        slowest=sorted(completed, key=lambda v: -v.latency_ms)[:top],
    )
    # Energy is NaN-safe: traces predating energy accounting (or from
    # the homogeneous-legacy engine) carry no energy_j attrs, every
    # view is nan, and the report simply omits the energy lines.
    energetic = [v for v in completed if v.energy_j == v.energy_j]
    if energetic:
        report.joules_per_query = sum(v.energy_j for v in energetic) / len(energetic)
        tail_energetic = [v for v in tail if v.energy_j == v.energy_j]
        if tail_energetic:
            report.tail_joules_per_query = sum(
                v.energy_j for v in tail_energetic
            ) / len(tail_energetic)
    if any(v.boosted for v in completed):
        report.boosted_rate = _membership_rate(tail, rest, "boosted")
    if any(v.hedged for v in completed):
        report.hedged_rate = _membership_rate(tail, rest, "hedged")
    return report


def analyze_spans(
    spans: list[Span],
    phi: float = 0.99,
    counters: dict[str, int] | None = None,
    track: str | None = None,
    top: int = 5,
) -> AnalysisReport:
    """Tail-attribution report over reconstructed spans."""
    if not 0.0 < phi < 1.0:
        raise ConfigurationError(f"phi must be in (0, 1): {phi}")
    per_track = requests_from_spans(spans)
    if track is not None:
        if track not in per_track:
            raise ConfigurationError(
                f"track {track!r} not in trace (have: {sorted(per_track) or 'none'})"
            )
        per_track = {track: per_track[track]}
    if not per_track:
        raise ConfigurationError("no request tracks (sim/runtime/cluster) in trace")
    context = {
        name: value
        for name, value in (counters or {}).items()
        if name in _CONTEXT_COUNTERS
    }
    return AnalysisReport(
        phi=phi,
        tracks={
            name: _report_track(name, views, phi, top)
            for name, views in per_track.items()
        },
        counters=context,
    )


def analyze_trace(
    path: str | Path, phi: float = 0.99, track: str | None = None, top: int = 5
) -> AnalysisReport:
    """Load a trace file and produce its tail-attribution report."""
    trace = load_trace(path)
    return analyze_spans(
        trace.spans, phi=phi, counters=trace.counters(), track=track, top=top
    )


# ----------------------------------------------------------------------
# CLI (`repro analyze`)
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description=(
            "Attribute tail latency from a --trace output: identify the "
            "requests composing the p-phi tail and decompose their latency "
            "into queue / service / contention / boost-wait / stall."
        ),
    )
    parser.add_argument("trace", help="Chrome trace JSON or span JSONL file")
    parser.add_argument(
        "--phi", type=float, default=0.99, help="tail percentile (default 0.99)"
    )
    parser.add_argument(
        "--track", default=None, help="restrict to one track (sim/runtime/cluster)"
    )
    parser.add_argument(
        "--top", type=int, default=5, help="slowest requests to list (default 5)"
    )
    parser.add_argument(
        "--json", metavar="OUT.json", default=None,
        help="also write the report as JSON",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        report = analyze_trace(args.trace, phi=args.phi, track=args.track, top=args.top)
    except (ConfigurationError, FileNotFoundError) as error:
        print(f"repro analyze: {error}")
        return 2
    if args.json:
        Path(args.json).write_text(json.dumps(report.to_json(), indent=1) + "\n")
    try:
        print(report.render())
        if args.json:
            print(f"\n[report JSON -> {args.json}]")
    except BrokenPipeError:
        # Downstream pager/head closed the pipe: the JSON (if any) is
        # already on disk, so exit quietly like a well-behaved filter.
        sys.stderr.close()
    return 0
