"""Tail analysis on top of :mod:`repro.telemetry`: who is the p99, why?

The offline pieces (DESIGN.md §9):

* the **flight recorder** lives in :mod:`repro.sim` — every request's
  latency decomposes additively into queue wait, pure service,
  contention inflation, boost wait, and stall time;
* :mod:`repro.observe.slo` watches a live latency stream against a
  percentile target with multi-window burn rates and drift detection;
* :mod:`repro.observe.analyze` reads a ``--trace`` file offline and
  attributes the φ-tail by component (the ``repro analyze`` CLI).

The **live plane** (DESIGN.md §13) streams the same signals while the
system runs:

* :mod:`repro.observe.timeseries` snapshots MetricsRegistry deltas and
  per-window histogram slices into a bounded ring (bit-identically
  mergeable across ``repro.parallel`` shards), with Prometheus
  text-format and JSONL exporters;
* :mod:`repro.observe.anomaly` is a deterministic online changepoint
  detector over windowed scalars;
* :mod:`repro.observe.live` ties them together — per-window tail
  attribution, worst-k exemplars, ``observe.event`` annotations, and
  trace replay — rendered by the ``repro top`` CLI
  (:mod:`repro.observe.top`).

The **differential plane** (DESIGN.md §15) makes runs comparable:

* :mod:`repro.observe.ledger` records every experiment as a RunCard +
  mergeable artifacts in an append-only ``runs/`` ledger;
* :mod:`repro.observe.diff` diffs two ledger entries with bootstrap
  CIs and ranks phases by contribution to the p99 delta (the
  ``repro diff`` CLI).
"""

from repro.observe.analyze import (
    AnalysisReport,
    RequestView,
    TraceData,
    TrackReport,
    analyze_spans,
    analyze_trace,
    load_trace,
    requests_from_spans,
)
from repro.observe.anomaly import AnomalyFlag, ChangepointDetector
from repro.observe.diff import (
    EventDelta,
    PhaseDelta,
    QuantileDelta,
    RunDiff,
    diff_runs,
)
from repro.observe.ledger import (
    RunArtifacts,
    RunCard,
    RunEntry,
    RunLedger,
    entry_from_cluster,
    entry_from_result,
    entry_from_summary,
)
from repro.observe.live import (
    Exemplar,
    LivePlane,
    ObserveEvent,
    WindowStats,
    events_from_spans,
    replay_spans,
)
from repro.observe.slo import SLOMonitor, SLOStatus, SLOTarget
from repro.observe.timeseries import (
    TimeseriesRecorder,
    TimeseriesTailer,
    WindowSnapshot,
    merge_window_streams,
    read_timeseries_jsonl,
    render_prometheus,
    write_timeseries_jsonl,
)

__all__ = [
    "SLOTarget",
    "SLOStatus",
    "SLOMonitor",
    "RequestView",
    "TraceData",
    "TrackReport",
    "AnalysisReport",
    "load_trace",
    "requests_from_spans",
    "analyze_spans",
    "analyze_trace",
    "AnomalyFlag",
    "ChangepointDetector",
    "EventDelta",
    "PhaseDelta",
    "QuantileDelta",
    "RunDiff",
    "diff_runs",
    "RunArtifacts",
    "RunCard",
    "RunEntry",
    "RunLedger",
    "entry_from_cluster",
    "entry_from_result",
    "entry_from_summary",
    "Exemplar",
    "LivePlane",
    "ObserveEvent",
    "WindowStats",
    "events_from_spans",
    "replay_spans",
    "TimeseriesRecorder",
    "TimeseriesTailer",
    "WindowSnapshot",
    "merge_window_streams",
    "read_timeseries_jsonl",
    "render_prometheus",
    "write_timeseries_jsonl",
]
