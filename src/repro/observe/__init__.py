"""Tail analysis on top of :mod:`repro.telemetry`: who is the p99, why?

Three pieces (DESIGN.md §9):

* the **flight recorder** lives in :mod:`repro.sim` — every request's
  latency decomposes additively into queue wait, pure service,
  contention inflation, boost wait, and stall time;
* :mod:`repro.observe.slo` watches a live latency stream against a
  percentile target with multi-window burn rates and drift detection;
* :mod:`repro.observe.analyze` reads a ``--trace`` file offline and
  attributes the φ-tail by component (the ``repro analyze`` CLI).
"""

from repro.observe.analyze import (
    AnalysisReport,
    RequestView,
    TraceData,
    TrackReport,
    analyze_spans,
    analyze_trace,
    load_trace,
    requests_from_spans,
)
from repro.observe.slo import SLOMonitor, SLOStatus, SLOTarget

__all__ = [
    "SLOTarget",
    "SLOStatus",
    "SLOMonitor",
    "RequestView",
    "TraceData",
    "TrackReport",
    "AnalysisReport",
    "load_trace",
    "requests_from_spans",
    "analyze_spans",
    "analyze_trace",
]
