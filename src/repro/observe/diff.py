"""``repro diff`` — statistically rigorous comparison of two runs.

Every headline claim in this repo is *differential* ("FM reduces the
99th percentile by 30%"), and the replication phase diagram is
non-monotone exactly where naive point comparisons mislead: a 5 ms p99
gap between two 500-request runs is usually seed noise, not signal.
This module turns two ledger entries (:mod:`repro.observe.ledger`)
into a :class:`RunDiff` whose every delta carries a confidence
interval and a significance verdict:

* **Quantile deltas** (p50/p95/p99/p99.9 by default) with CIs from
  *bucket-level bootstrap resampling* of the stored
  :class:`~repro.telemetry.histogram.LogHistogram` state: each
  replicate draws a multinomial over the histogram's bucket points
  (:meth:`LogHistogram.bucket_points`) with a seeded RNG, so the
  bootstrap distribution is a deterministic function of (histogram
  state, seed).  A delta is significant only when the CI excludes zero
  **and** the point delta clears the documented relative-error floor
  ``eps_a * |q_a| + eps_b * |q_b|`` — the histogram's own resolution
  bound, below which any "difference" is bucketing noise.
* **Per-phase attribution deltas** (queue / service / contention /
  boost-wait / stall, plus per-pool energy) with bootstrap CIs over
  the per-component histograms when both entries stored them.
* **Explanation ranking**: phases ordered by their contribution to the
  p99 delta — the tail-mean delta of each component, signed toward the
  p99 change — rendered as "queue explains 78% of the +120 ms p99
  regression".
* **Event-timeline diffs**: ``observe.event`` records aligned by
  (kind, salient detail) multisets — mode flips, faults, SLO onsets
  that exist in A but not B.

**Exact-null short circuit.**  When both entries' histograms restore
to bit-identical :meth:`LogHistogram.state`, every delta is exactly
zero and reported non-significant without resampling — a self-diff of
two identical-config identical-seed runs is a *certain* null, not a
95%-confident one (and the CI job asserts exactly that).

Determinism: the bootstrap RNG is seeded per diff, resampling order is
fixed by sorted bucket points, and nothing reads clocks — the same two
entries diff to byte-identical reports on any machine and under any
``--workers`` count.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.experiments.report import render_table
from repro.observe.ledger import RunEntry, RunLedger
from repro.sim.metrics import ATTRIBUTION_COMPONENTS
from repro.telemetry.histogram import LogHistogram

__all__ = [
    "QuantileDelta",
    "PhaseDelta",
    "EventDelta",
    "RunDiff",
    "bootstrap_quantiles",
    "bootstrap_means",
    "diff_runs",
    "quantile_rows",
    "phase_rows",
    "QUANTILE_COLUMNS",
    "PHASE_COLUMNS",
    "main",
]

#: Default quantile grid (matches the paper's reporting points).
DEFAULT_PHIS = (0.50, 0.95, 0.99, 0.999)
#: Bootstrap replicates: enough for stable 95% interval endpoints on
#: the bucketed distributions, cheap enough to run in gates.
DEFAULT_RESAMPLES = 200
#: The diff engine's own RNG seed (per-diff, not global state).
DEFAULT_SEED = 2718


# ----------------------------------------------------------------------
# Bootstrap primitives
# ----------------------------------------------------------------------
def _points_arrays(histogram: LogHistogram) -> tuple[np.ndarray, np.ndarray]:
    points = histogram.bucket_points()
    if not points:
        raise ConfigurationError("cannot bootstrap an empty histogram")
    reps = np.array([value for value, _ in points], dtype=float)
    counts = np.array([count for _, count in points], dtype=np.int64)
    return reps, counts


def bootstrap_quantiles(
    histogram: LogHistogram,
    phis: Sequence[float],
    resamples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """``(resamples, len(phis))`` bootstrap quantile replicates.

    Each replicate redraws the histogram's ``count`` observations as a
    multinomial over its bucket points and reads the order-statistic
    rank ``ceil(phi * n)`` — the same convention as
    :meth:`LogHistogram.percentile`, so replicate values live on the
    exact representative grid the point estimate does.
    """
    reps, counts = _points_arrays(histogram)
    n = int(counts.sum())
    draws = rng.multinomial(n, counts / n, size=resamples)
    cumulative = np.cumsum(draws, axis=1)
    ranks = np.maximum(1, np.ceil(np.asarray(phis, dtype=float) * n)).astype(np.int64)
    out = np.empty((resamples, len(ranks)), dtype=float)
    for row in range(resamples):
        indexes = np.searchsorted(cumulative[row], ranks, side="left")
        out[row] = reps[np.minimum(indexes, len(reps) - 1)]
    return out


def bootstrap_means(
    histogram: LogHistogram, resamples: int, rng: np.random.Generator
) -> np.ndarray:
    """``(resamples,)`` bootstrap replicates of the bucketed mean."""
    reps, counts = _points_arrays(histogram)
    n = int(counts.sum())
    draws = rng.multinomial(n, counts / n, size=resamples)
    return draws @ reps / n


def _interval(deltas: np.ndarray, confidence: float) -> tuple[float, float]:
    """Percentile CI endpoints of a bootstrap delta distribution."""
    tail = 100.0 * (1.0 - confidence) / 2.0
    lo, hi = np.percentile(deltas, [tail, 100.0 - tail])
    return float(lo), float(hi)


# ----------------------------------------------------------------------
# Delta records
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class QuantileDelta:
    """One quantile's A-vs-B comparison."""

    phi: float
    a_ms: float
    b_ms: float
    ci_lo: float
    ci_hi: float
    #: The histogram-resolution floor: deltas inside it are bucketing
    #: noise regardless of what the bootstrap says.
    floor_ms: float
    significant: bool

    @property
    def delta_ms(self) -> float:
        return self.a_ms - self.b_ms

    def to_dict(self) -> dict:
        return {
            "phi": self.phi,
            "a_ms": self.a_ms,
            "b_ms": self.b_ms,
            "delta_ms": self.delta_ms,
            "ci_lo_ms": self.ci_lo,
            "ci_hi_ms": self.ci_hi,
            "floor_ms": self.floor_ms,
            "significant": self.significant,
        }


@dataclass(frozen=True)
class PhaseDelta:
    """One attribution phase's A-vs-B comparison (per-request means)."""

    component: str
    a_ms: float
    b_ms: float
    ci_lo: float
    ci_hi: float
    significant: bool
    #: Fraction of the p99 delta this phase's tail-mean delta explains
    #: (0.0 when the p99 delta is ~zero); the explanation ranking sorts
    #: on this.
    share_of_p99_delta: float = 0.0

    @property
    def delta_ms(self) -> float:
        return self.a_ms - self.b_ms

    def to_dict(self) -> dict:
        return {
            "component": self.component,
            "a_ms": self.a_ms,
            "b_ms": self.b_ms,
            "delta_ms": self.delta_ms,
            "ci_lo_ms": self.ci_lo,
            "ci_hi_ms": self.ci_hi,
            "significant": self.significant,
            "share_of_p99_delta": self.share_of_p99_delta,
        }


@dataclass(frozen=True)
class EventDelta:
    """One event signature's count in each timeline."""

    kind: str
    signature: str
    count_a: int
    count_b: int
    first_window_a: int = -1
    first_window_b: int = -1

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "signature": self.signature,
            "count_a": self.count_a,
            "count_b": self.count_b,
            "first_window_a": self.first_window_a,
            "first_window_b": self.first_window_b,
        }


@dataclass
class RunDiff:
    """The full A-vs-B comparison report."""

    run_a: str
    run_b: str
    histogram_name: str
    count_a: int
    count_b: int
    identical: bool
    quantiles: list[QuantileDelta] = field(default_factory=list)
    #: Attribution phases in explanation-ranking order (largest
    #: contribution to the p99 delta first).
    phases: list[PhaseDelta] = field(default_factory=list)
    #: Per-pool energy deltas in joules (deterministic accounting — no
    #: CI; empty unless both runs carried an energy report).
    energy_j: dict[str, float] = field(default_factory=dict)
    #: Event signatures whose counts differ between the timelines.
    events: list[EventDelta] = field(default_factory=list)
    #: Scalar metric deltas over keys both entries recorded.
    metrics: dict[str, dict] = field(default_factory=dict)
    confidence: float = 0.95
    resamples: int = DEFAULT_RESAMPLES
    seed: int = DEFAULT_SEED

    # -- verdict views -------------------------------------------------
    def significant_quantiles(self) -> list[QuantileDelta]:
        return [q for q in self.quantiles if q.significant]

    def significant_phases(self) -> list[PhaseDelta]:
        return [p for p in self.phases if p.significant]

    def is_null(self) -> bool:
        """True when nothing significant separates the runs."""
        return not self.significant_quantiles() and not self.significant_phases()

    def quantile(self, phi: float) -> QuantileDelta:
        for entry in self.quantiles:
            if entry.phi == phi:
                return entry
        raise ConfigurationError(f"phi {phi} not in diff grid")

    def explanation(self) -> str:
        """One-line explanation of the p99 delta, led by the
        top-ranked phase."""
        try:
            p99 = self.quantile(0.99)
        except ConfigurationError:
            return "no p99 in the diff grid"
        if not p99.significant:
            return (
                f"p99 delta {p99.delta_ms:+.3g} ms is not significant "
                f"(CI [{p99.ci_lo:+.3g}, {p99.ci_hi:+.3g}] ms, "
                f"floor {p99.floor_ms:.3g} ms) — the runs are "
                "statistically indistinguishable at the tail"
            )
        if not self.phases:
            return (
                f"p99 delta {p99.delta_ms:+.3g} ms is significant but "
                "neither run carries attribution phases to explain it"
            )
        top = self.phases[0]
        return (
            f"{top.component.removesuffix('_ms')} explains "
            f"{top.share_of_p99_delta:.0%} of the {p99.delta_ms:+.3g} ms "
            f"p99 delta ({top.delta_ms:+.3g} ms of tail-mean shift)"
        )

    # -- serialization -------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "run_a": self.run_a,
            "run_b": self.run_b,
            "histogram": self.histogram_name,
            "count_a": self.count_a,
            "count_b": self.count_b,
            "identical": self.identical,
            "confidence": self.confidence,
            "resamples": self.resamples,
            "seed": self.seed,
            "null": self.is_null(),
            "explanation": self.explanation(),
            "quantiles": [q.to_dict() for q in self.quantiles],
            "phases": [p.to_dict() for p in self.phases],
            "energy_j": dict(sorted(self.energy_j.items())),
            "events": [e.to_dict() for e in self.events],
            "metrics": {k: dict(v) for k, v in sorted(self.metrics.items())},
        }

    # -- rendering -----------------------------------------------------
    def render(self) -> str:
        parts = [
            f"=== repro diff: {self.run_a or 'A'} vs {self.run_b or 'B'} "
            f"({self.histogram_name}; n={self.count_a} vs {self.count_b}; "
            f"{self.confidence:.0%} CIs from {self.resamples} bucket "
            f"bootstraps, seed {self.seed}) ==="
        ]
        if self.identical:
            parts.append(
                "histogram state is bit-identical: every delta is exactly "
                "zero (no resampling needed)"
            )
        rows = [
            [
                f"p{q.phi * 100:g}",
                q.a_ms,
                q.b_ms,
                f"{q.delta_ms:+.4g}",
                f"[{q.ci_lo:+.4g}, {q.ci_hi:+.4g}]",
                q.floor_ms,
                "YES" if q.significant else "no",
            ]
            for q in self.quantiles
        ]
        parts.append("")
        parts.append(
            render_table(
                ["quantile", "A (ms)", "B (ms)", "delta", "95% CI (ms)",
                 "floor", "significant"],
                rows,
            )
        )
        if self.phases:
            rows = [
                [
                    p.component.removesuffix("_ms"),
                    p.a_ms,
                    p.b_ms,
                    f"{p.delta_ms:+.4g}",
                    f"[{p.ci_lo:+.4g}, {p.ci_hi:+.4g}]",
                    f"{p.share_of_p99_delta:.0%}",
                    "YES" if p.significant else "no",
                ]
                for p in self.phases
            ]
            parts.append("")
            parts.append(
                render_table(
                    ["phase (tail mean)", "A (ms)", "B (ms)", "delta",
                     "95% CI (ms)", "of p99 delta", "significant"],
                    rows,
                )
            )
        if self.energy_j:
            parts.append("")
            parts.append(
                "energy deltas (J): "
                + ", ".join(
                    f"{pool}={delta:+.4g}"
                    for pool, delta in sorted(self.energy_j.items())
                )
            )
        if self.events:
            rows = [
                [e.kind, e.signature or "-", e.count_a, e.count_b,
                 e.first_window_a if e.first_window_a >= 0 else "-",
                 e.first_window_b if e.first_window_b >= 0 else "-"]
                for e in self.events
            ]
            parts.append("")
            parts.append(
                render_table(
                    ["event", "signature", "A", "B", "first win A",
                     "first win B"],
                    rows,
                )
            )
        if self.metrics:
            rows = [
                [name, cell["a"], cell["b"], f"{cell['delta']:+.4g}"]
                for name, cell in sorted(self.metrics.items())
            ]
            parts.append("")
            parts.append(render_table(["metric", "A", "B", "delta"], rows))
        parts.append("")
        parts.append(f"explanation: {self.explanation()}")
        parts.append(
            "verdict: "
            + (
                "NULL — no significant deltas"
                if self.is_null()
                else f"{len(self.significant_quantiles())} significant "
                f"quantile delta(s), {len(self.significant_phases())} "
                "significant phase delta(s)"
            )
        )
        return "\n".join(parts)


# ----------------------------------------------------------------------
# Table adapters (for experiments embedding diff panels in a
# FigureResult rather than printing the full render())
# ----------------------------------------------------------------------
QUANTILE_COLUMNS = [
    "quantile",
    "A (ms)",
    "B (ms)",
    "delta (ms)",
    "95% CI (ms)",
    "floor (ms)",
    "significant",
]
PHASE_COLUMNS = [
    "phase (tail mean)",
    "A (ms)",
    "B (ms)",
    "delta (ms)",
    "95% CI (ms)",
    "of p99 delta",
    "significant",
]


def quantile_rows(diff: "RunDiff") -> list[list[object]]:
    """``diff.quantiles`` as :data:`QUANTILE_COLUMNS` table rows."""
    return [
        [
            f"p{q.phi * 100:g}",
            q.a_ms,
            q.b_ms,
            f"{q.delta_ms:+.4g}",
            f"[{q.ci_lo:+.4g}, {q.ci_hi:+.4g}]",
            q.floor_ms,
            "YES" if q.significant else "no",
        ]
        for q in diff.quantiles
    ]


def phase_rows(diff: "RunDiff") -> list[list[object]]:
    """``diff.phases`` as :data:`PHASE_COLUMNS` table rows."""
    return [
        [
            p.component.removesuffix("_ms"),
            p.a_ms,
            p.b_ms,
            f"{p.delta_ms:+.4g}",
            f"[{p.ci_lo:+.4g}, {p.ci_hi:+.4g}]",
            f"{p.share_of_p99_delta:.0%}",
            "YES" if p.significant else "no",
        ]
        for p in diff.phases
    ]


# ----------------------------------------------------------------------
# The diff engine
# ----------------------------------------------------------------------
def _event_signature(event: dict) -> tuple[str, str]:
    detail = event.get("detail", {})
    salient = (
        detail.get("signal")
        or detail.get("to_mode")
        or detail.get("fault")
        or detail.get("reason")
        or ""
    )
    return str(event.get("kind", "unknown")), str(salient)


def _diff_events(a: list[dict], b: list[dict]) -> list[EventDelta]:
    keys: dict[tuple[str, str], dict] = {}
    for source, events in (("a", a), ("b", b)):
        for event in events:
            key = _event_signature(event)
            cell = keys.setdefault(
                key, {"a": 0, "b": 0, "first_a": -1, "first_b": -1}
            )
            cell[source] += 1
            first = f"first_{source}"
            if cell[first] < 0:
                cell[first] = int(event.get("window", -1))
    out = []
    for (kind, signature), cell in sorted(keys.items()):
        if cell["a"] != cell["b"]:
            out.append(
                EventDelta(
                    kind=kind,
                    signature=signature,
                    count_a=cell["a"],
                    count_b=cell["b"],
                    first_window_a=cell["first_a"],
                    first_window_b=cell["first_b"],
                )
            )
    return out


def _diff_scalar_metrics(a: dict, b: dict) -> dict[str, dict]:
    out = {}
    for name in sorted(set(a) & set(b)):
        va, vb = float(a[name]), float(b[name])
        if va != vb:
            out[name] = {"a": va, "b": vb, "delta": va - vb}
    return out


def _phase_deltas(
    entry_a: RunEntry,
    entry_b: RunEntry,
    p99_delta: float,
    resamples: int,
    confidence: float,
    rng: np.random.Generator,
) -> list[PhaseDelta]:
    """Attribution-phase deltas + the explanation ranking.

    Point estimates come from the stored *exact* tail attribution
    summaries; CIs from bootstrap means of the per-component
    histograms (overall, since the ledger stores marginals).  Phases
    sort by signed contribution to the p99 delta, largest first.
    """
    tail_a = entry_a.artifacts.attribution.get("tail", {})
    tail_b = entry_b.artifacts.attribution.get("tail", {})
    if not tail_a or not tail_b:
        return []
    deltas: list[PhaseDelta] = []
    total_shift = sum(
        abs(tail_a.get(c, 0.0) - tail_b.get(c, 0.0))
        for c in ATTRIBUTION_COMPONENTS
    )
    for component in ATTRIBUTION_COMPONENTS:
        a_ms = float(tail_a.get(component, 0.0))
        b_ms = float(tail_b.get(component, 0.0))
        delta = a_ms - b_ms
        name = f"attr.{component}"
        ci_lo = ci_hi = delta
        significant = False
        has_hists = (
            name in entry_a.artifacts.histograms
            and name in entry_b.artifacts.histograms
        )
        if has_hists:
            hist_a = entry_a.artifacts.histogram(name)
            hist_b = entry_b.artifacts.histogram(name)
            if hist_a.state() == hist_b.state():
                ci_lo = ci_hi = 0.0
                significant = False
            else:
                means_a = bootstrap_means(hist_a, resamples, rng)
                means_b = bootstrap_means(hist_b, resamples, rng)
                # Overall-mean bootstrap shifted to the tail-mean point
                # estimate: the marginal histograms carry the sampling
                # noise, the exact summary carries the location.
                spread = (means_a - means_a.mean()) - (means_b - means_b.mean())
                lo, hi = _interval(spread, confidence)
                ci_lo, ci_hi = delta + lo, delta + hi
                floor = hist_a.relative_error * abs(a_ms) + (
                    hist_b.relative_error * abs(b_ms)
                )
                significant = (
                    (ci_lo > 0.0 or ci_hi < 0.0) and abs(delta) > floor
                )
        share = 0.0
        if total_shift > 0.0 and p99_delta != 0.0:
            # Signed share: positive when this phase moves with the
            # p99 delta, negative when it offsets it.
            share = delta * math.copysign(1.0, p99_delta) / total_shift
        deltas.append(
            PhaseDelta(
                component=component,
                a_ms=a_ms,
                b_ms=b_ms,
                ci_lo=ci_lo,
                ci_hi=ci_hi,
                significant=significant,
                share_of_p99_delta=share,
            )
        )
    deltas.sort(key=lambda p: (-p.share_of_p99_delta, p.component))
    return deltas


def _energy_deltas(entry_a: RunEntry, entry_b: RunEntry) -> dict[str, float]:
    energy_a = entry_a.artifacts.energy
    energy_b = entry_b.artifacts.energy
    if not energy_a or not energy_b:
        return {}
    out = {"total": float(energy_a["total_j"]) - float(energy_b["total_j"])}
    pools_a = energy_a.get("pools", {})
    pools_b = energy_b.get("pools", {})
    for pool in sorted(set(pools_a) | set(pools_b)):
        out[pool] = float(pools_a.get(pool, {}).get("total_j", 0.0)) - float(
            pools_b.get(pool, {}).get("total_j", 0.0)
        )
    return out


def diff_runs(
    entry_a: RunEntry,
    entry_b: RunEntry,
    *,
    phis: Sequence[float] = DEFAULT_PHIS,
    resamples: int = DEFAULT_RESAMPLES,
    confidence: float = 0.95,
    seed: int = DEFAULT_SEED,
    histogram: str = "latency_ms",
) -> RunDiff:
    """Compare two ledger entries; see the module docstring for the
    methodology.  Deterministic for fixed inputs and ``seed``."""
    if resamples < 2:
        raise ConfigurationError(f"resamples must be >= 2: {resamples}")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(f"confidence must be in (0, 1): {confidence}")
    hist_a = entry_a.artifacts.histogram(histogram)
    hist_b = entry_b.artifacts.histogram(histogram)
    identical = hist_a.state() == hist_b.state()
    rng = np.random.default_rng(seed)

    quantiles: list[QuantileDelta] = []
    if identical:
        for phi in phis:
            value = hist_a.percentile(phi)
            quantiles.append(
                QuantileDelta(
                    phi=phi,
                    a_ms=value,
                    b_ms=value,
                    ci_lo=0.0,
                    ci_hi=0.0,
                    floor_ms=2.0 * hist_a.relative_error * abs(value),
                    significant=False,
                )
            )
    else:
        reps_a = bootstrap_quantiles(hist_a, phis, resamples, rng)
        reps_b = bootstrap_quantiles(hist_b, phis, resamples, rng)
        for column, phi in enumerate(phis):
            a_ms = hist_a.percentile(phi)
            b_ms = hist_b.percentile(phi)
            delta = a_ms - b_ms
            lo, hi = _interval(reps_a[:, column] - reps_b[:, column], confidence)
            floor = hist_a.relative_error * abs(a_ms) + (
                hist_b.relative_error * abs(b_ms)
            )
            significant = (lo > 0.0 or hi < 0.0) and abs(delta) > floor
            quantiles.append(
                QuantileDelta(
                    phi=phi,
                    a_ms=a_ms,
                    b_ms=b_ms,
                    ci_lo=lo,
                    ci_hi=hi,
                    floor_ms=floor,
                    significant=significant,
                )
            )

    try:
        p99_delta = next(q.delta_ms for q in quantiles if q.phi == 0.99)
    except StopIteration:
        p99_delta = quantiles[-1].delta_ms if quantiles else 0.0
    if identical:
        phases = []
        tail_a = entry_a.artifacts.attribution.get("tail", {})
        for component in ATTRIBUTION_COMPONENTS:
            if component not in tail_a:
                continue
            value = float(tail_a[component])
            phases.append(
                PhaseDelta(
                    component=component,
                    a_ms=value,
                    b_ms=value,
                    ci_lo=0.0,
                    ci_hi=0.0,
                    significant=False,
                )
            )
    else:
        phases = _phase_deltas(
            entry_a, entry_b, p99_delta, resamples, confidence, rng
        )

    return RunDiff(
        run_a=entry_a.run_id or entry_a.card.name,
        run_b=entry_b.run_id or entry_b.card.name,
        histogram_name=histogram,
        count_a=hist_a.count,
        count_b=hist_b.count,
        identical=identical,
        quantiles=quantiles,
        phases=phases,
        energy_j=_energy_deltas(entry_a, entry_b),
        events=_diff_events(entry_a.artifacts.events, entry_b.artifacts.events),
        metrics=_diff_scalar_metrics(
            entry_a.artifacts.metrics, entry_b.artifacts.metrics
        ),
        confidence=confidence,
        resamples=resamples,
        seed=seed,
    )


# ----------------------------------------------------------------------
# CLI (`repro diff`)
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro diff",
        description=(
            "Compare two ledgered runs: quantile and attribution-phase "
            "deltas with bootstrap confidence intervals, event-timeline "
            "diffs, and an explanation ranking of the p99 delta."
        ),
    )
    parser.add_argument("run_a", help="run id, position, or name (A side)")
    parser.add_argument("run_b", help="run id, position, or name (B side)")
    parser.add_argument(
        "--runs",
        default="runs",
        metavar="DIR",
        help="ledger directory (default: runs/)",
    )
    parser.add_argument(
        "--phi",
        type=float,
        action="append",
        default=None,
        metavar="Q",
        help="quantile(s) to diff (repeatable; default 0.5 0.95 0.99 0.999)",
    )
    parser.add_argument(
        "--resamples",
        type=int,
        default=DEFAULT_RESAMPLES,
        metavar="B",
        help=f"bootstrap replicates (default {DEFAULT_RESAMPLES})",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=DEFAULT_SEED,
        metavar="N",
        help=f"bootstrap RNG seed (default {DEFAULT_SEED})",
    )
    parser.add_argument(
        "--confidence",
        type=float,
        default=0.95,
        metavar="C",
        help="CI confidence level (default 0.95)",
    )
    parser.add_argument(
        "--histogram",
        default="latency_ms",
        metavar="NAME",
        help="artifact histogram to diff (default latency_ms)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the diff as JSON instead of text",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        ledger = RunLedger(args.runs)
        entry_a = ledger.get(args.run_a)
        entry_b = ledger.get(args.run_b)
        diff = diff_runs(
            entry_a,
            entry_b,
            phis=tuple(args.phi) if args.phi else DEFAULT_PHIS,
            resamples=args.resamples,
            confidence=args.confidence,
            seed=args.seed,
            histogram=args.histogram,
        )
    except ConfigurationError as error:
        print(f"repro diff: {error}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(diff.to_dict(), indent=1, sort_keys=True))
    else:
        print(diff.render())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
