"""Deterministic online changepoint detection for windowed signals.

The live plane (DESIGN.md §13) watches three per-window scalars — SLO
burn rate, window p99, and joules per query — and wants to flag *regime
changes*: the overload-flip ramp beginning, a brownout recovery, an
energy excursion.  The detector must be deterministic (same window
stream, same flags — the ``live-tail`` experiment pins the flagged
window index across runs), online (O(1) state per signal), and quiet
on stationary noise.

:class:`ChangepointDetector` keeps Welford running moments of the
current *regime* per signal and flags a window whose z-score exceeds
``threshold``.  On a flag it resets the moments and starts re-learning
from the new level — classic changepoint semantics: a sustained shift
is flagged once at onset (and once again on the way back down), not on
every subsequent window.  A ``warmup`` window count and a relative
standard-deviation floor keep the cold start and near-constant signals
from firing on float dust.

``NaN`` observations (an empty window's p99, a cold burn rate) are
skipped entirely — they neither update the baseline nor flag.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["AnomalyFlag", "ChangepointDetector"]


@dataclass(frozen=True)
class AnomalyFlag:
    """One flagged changepoint on one signal."""

    signal: str
    window: int
    value: float
    baseline_mean: float
    #: +1 for an upward shift (degradation for latency/burn/energy),
    #: -1 for a downward shift (recovery).
    direction: int
    z_score: float


class _SignalState:
    """Welford running moments of the current regime for one signal."""

    __slots__ = ("count", "mean", "m2")

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0

    def update(self, value: float) -> None:
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    def std(self) -> float:
        if self.count < 2:
            return 0.0
        return math.sqrt(self.m2 / (self.count - 1))


class ChangepointDetector:
    """Flag regime changes in named windowed signals.

    Parameters
    ----------
    warmup:
        Windows a signal's baseline must see before it may flag (also
        the re-learning span after each flag).
    threshold:
        Z-score at which a window counts as a changepoint.
    min_rel_std:
        Standard-deviation floor as a fraction of ``|mean|`` (plus a
        tiny absolute floor): near-constant baselines would otherwise
        make any speck an infinite z-score.
    """

    def __init__(
        self,
        warmup: int = 5,
        threshold: float = 4.0,
        min_rel_std: float = 0.05,
    ) -> None:
        if warmup < 2:
            raise ConfigurationError(f"warmup must be >= 2: {warmup}")
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be positive: {threshold}")
        if min_rel_std < 0:
            raise ConfigurationError(f"min_rel_std must be >= 0: {min_rel_std}")
        self.warmup = warmup
        self.threshold = threshold
        self.min_rel_std = min_rel_std
        self._signals: dict[str, _SignalState] = {}
        #: Every flag raised, in observation order.
        self.flags: list[AnomalyFlag] = []

    def observe(self, signal: str, window: int, value: float) -> AnomalyFlag | None:
        """Feed one window's value of ``signal``; returns the flag when
        this window is a changepoint, else ``None``."""
        if value != value:  # NaN: empty window, cold monitor
            return None
        state = self._signals.get(signal)
        if state is None:
            state = self._signals[signal] = _SignalState()
        if state.count >= self.warmup:
            floor = self.min_rel_std * abs(state.mean) + 1e-12
            std = max(state.std(), floor)
            z = (value - state.mean) / std
            if abs(z) >= self.threshold:
                flag = AnomalyFlag(
                    signal=signal,
                    window=window,
                    value=value,
                    baseline_mean=state.mean,
                    direction=1 if z > 0 else -1,
                    z_score=z,
                )
                self.flags.append(flag)
                # New regime: forget the old baseline and re-learn from
                # this window's level.
                fresh = _SignalState()
                fresh.update(value)
                self._signals[signal] = fresh
                return flag
        state.update(value)
        return None

    def reset(self) -> None:
        """Forget every baseline and flag (between runs)."""
        self._signals.clear()
        self.flags.clear()
