"""``repro top`` — a live/replay dashboard over the observability plane.

Two modes:

* ``repro top --replay trace.json[.gz]`` rebuilds the live plane from
  an exported trace (:func:`repro.observe.live.replay_spans`) and
  renders per-window p99, attribution bars, controller mode, energy,
  and events — exactly what an operator would have seen live.  The
  attribution totals line matches ``repro analyze`` on the same trace
  to float residue (a tested contract).
* ``repro top --follow timeseries.jsonl`` tails a window stream a
  running :class:`~repro.runtime.server.LiveFMServer` (or traced
  simulation) exports via
  :func:`repro.observe.timeseries.write_timeseries_jsonl`, re-rendering
  as new windows land.  ``--frames N`` bounds the refresh loop (N=1 =
  render once and exit, the CI smoke path); ``--interval`` sets the
  poll cadence.

``--json`` dumps the rendered windows as JSON instead of text, for
scripting either mode.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.errors import ConfigurationError
from repro.observe.timeseries import (
    TimeseriesTailer,
    WindowSnapshot,
    read_timeseries_jsonl,
)

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro top",
        description=(
            "Live-tail or replay the observability plane: per-window "
            "p99, tail attribution bars, controller mode, energy, and "
            "anomaly/mode/fault events."
        ),
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--replay",
        metavar="TRACE",
        default=None,
        help="rebuild the plane from a --trace export (.json/.jsonl, .gz ok)",
    )
    source.add_argument(
        "--follow",
        metavar="TS.jsonl",
        default=None,
        help="tail a window-snapshot JSONL stream as it grows",
    )
    parser.add_argument(
        "--window",
        type=float,
        default=100.0,
        metavar="MS",
        help="replay window span in ms (default 100)",
    )
    parser.add_argument(
        "--track",
        default=None,
        help="replay: request track to follow (default: sim, else runtime)",
    )
    parser.add_argument(
        "--last",
        type=int,
        default=20,
        metavar="N",
        help="windows to render (default 20)",
    )
    parser.add_argument(
        "--frames",
        type=int,
        default=0,
        metavar="N",
        help="follow: refresh N times then exit (0 = until interrupted)",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=1.0,
        metavar="SEC",
        help="follow: poll cadence in seconds (default 1)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit windows as JSON instead of the text dashboard",
    )
    return parser


def _replay(args: argparse.Namespace) -> int:
    from repro.observe.analyze import load_trace
    from repro.observe.live import replay_spans

    trace = load_trace(args.replay)
    plane = replay_spans(trace.spans, window_ms=args.window, track=args.track)
    if args.json:
        payload = {
            "windows": [w.to_dict() for w in plane.windows()[-args.last :]],
            "attribution_totals_ms": dict(
                sorted(plane.attribution_totals().items())
            ),
            "events": [e.to_dict() for e in plane.events],
        }
        print(json.dumps(payload, indent=1, sort_keys=True))
    else:
        print(plane.render(last=args.last))
        anomalies = plane.anomalies()
        if anomalies:
            print(f"\n{len(anomalies)} anomaly flag(s):")
            for event in anomalies:
                detail = event.detail
                print(
                    f"  window {event.window:>4} @ {event.at_ms:>9.1f} ms  "
                    f"{detail.get('signal', '?'):<18} "
                    f"{'up' if detail.get('direction', 0) > 0 else 'down':<5} "
                    f"z={detail.get('z_score', float('nan')):.1f}"
                )
    return 0


def _render_follow_frame(windows: list[WindowSnapshot], last: int) -> str:
    lines = [
        f"{'win':>5}  {'span (ms)':>17}  {'latency p99 ms':>15}  "
        f"{'completions':>12}  counters"
    ]
    lines.append("-" * len(lines[0]))
    for window in windows[-last:]:
        p99 = float("nan")
        count = 0
        for name, histogram in window.histograms.items():
            if name.endswith("latency_ms"):
                p99 = histogram.percentile(0.99)
                count = histogram.count
                break
        busiest = sorted(
            window.counters.items(), key=lambda kv: (-kv[1], kv[0])
        )[:3]
        counters = " ".join(f"{name}={value}" for name, value in busiest)
        p99_cell = f"{p99:>15.2f}" if p99 == p99 else f"{'-':>15}"
        lines.append(
            f"{window.index:>5}  "
            f"{window.start_ms:>8.0f}-{window.end_ms:<8.0f} "
            f"{p99_cell}  {count:>12}  {counters}"
        )
    return "\n".join(lines)


def _follow(args: argparse.Namespace) -> int:
    path = Path(args.follow)
    frames = 0
    seen = -1
    # Plain JSONL is tailed incrementally (torn last lines buffered
    # until the writer terminates them); gzip streams aren't seekable
    # mid-write, so .gz falls back to a full re-read per poll.
    tailer = TimeseriesTailer(path) if path.suffix != ".gz" else None
    while True:
        if tailer is not None:
            tailer.poll()
            windows = tailer.windows
        else:
            windows = read_timeseries_jsonl(path) if path.exists() else []
        if args.json:
            fresh = [w.to_dict() for w in windows if w.index > seen]
            if fresh:
                print(json.dumps(fresh, sort_keys=True))
        else:
            print(_render_follow_frame(windows, args.last))
        if windows:
            seen = max(seen, windows[-1].index)
        frames += 1
        if args.frames and frames >= args.frames:
            return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive exit
            return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.replay is not None:
            return _replay(args)
        return _follow(args)
    except (ConfigurationError, FileNotFoundError) as error:
        print(f"repro top: {error}")
        return 2
    except BrokenPipeError:
        sys.stderr.close()
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
