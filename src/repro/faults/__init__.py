"""Fault injection and graceful-degradation primitives.

Everything here is deterministic: a :class:`FaultPlan` materializes
every fault a run will see, so injecting faults never costs the
simulator its bit-for-bit reproducibility (see DESIGN.md §7).
"""

from repro.faults.plan import CoreFault, FaultPlan, FaultStats, StallFault
from repro.faults.scenarios import overload_flip

__all__ = ["CoreFault", "FaultPlan", "FaultStats", "StallFault", "overload_flip"]
