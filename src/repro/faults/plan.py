"""Deterministic fault plans for the simulator.

The paper models a *fault-free* server; real interactive services blow
their 99th percentile exactly when the environment misbehaves — a core
is reclaimed by a co-located job, a worker thread stalls on a page
fault or GC pause, a request hits a slow replica (a *straggler*).  A
:class:`FaultPlan` is a fully materialized, seeded description of such
events, so fault injection never breaks the engine's bit-for-bit
reproducibility: the same plan plus the same arrivals yields the same
trace, metrics included.

Three fault classes (PAPERS.md: Vulimiri et al. study stragglers;
Poloczek & Ciucu study overload — both need an injectable failure
model to be measurable):

* :class:`CoreFault` — ``cores`` hardware threads go offline at
  ``time_ms`` and come back ``duration_ms`` later (co-location,
  thermal throttling, reclamation).
* :class:`StallFault` — at ``time_ms`` the running request with the
  most remaining work freezes for ``duration_ms`` (GC pause, page
  fault storm); its threads keep their cores but retire no work.
* stragglers — a seeded per-request coin: with probability
  ``straggler_rate`` a request's sequential work is inflated by a
  deterministic lognormal factor (slow replica / cold cache).

:meth:`FaultPlan.generate` draws a concrete plan from rates; building
the event lists by hand is equally supported (and what most unit tests
do).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FaultInjectionError

__all__ = ["CoreFault", "StallFault", "FaultPlan", "FaultStats"]


@dataclass(frozen=True)
class CoreFault:
    """``cores`` cores go offline during ``[time_ms, time_ms + duration_ms)``."""

    time_ms: float
    duration_ms: float
    cores: int = 1

    def __post_init__(self) -> None:
        if self.time_ms < 0:
            raise FaultInjectionError(f"core fault time must be >= 0: {self.time_ms}")
        if self.duration_ms <= 0:
            raise FaultInjectionError(
                f"core fault duration must be positive: {self.duration_ms}"
            )
        if self.cores < 1:
            raise FaultInjectionError(f"core fault must remove >= 1 core: {self.cores}")


@dataclass(frozen=True)
class StallFault:
    """One running request freezes during ``[time_ms, time_ms + duration_ms)``.

    The victim is chosen deterministically by the engine: the running
    request with the most remaining work (ties broken by lowest rid).
    A stall with no running request at ``time_ms`` is a no-op.
    """

    time_ms: float
    duration_ms: float

    def __post_init__(self) -> None:
        if self.time_ms < 0:
            raise FaultInjectionError(f"stall time must be >= 0: {self.time_ms}")
        if self.duration_ms <= 0:
            raise FaultInjectionError(
                f"stall duration must be positive: {self.duration_ms}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A complete, deterministic fault schedule for one simulation run.

    Parameters
    ----------
    core_faults / stalls:
        Explicit timed events, applied by the engine's event loop.
    straggler_rate:
        Per-request probability of service-time inflation.
    straggler_sigma:
        Lognormal sigma of the inflation factor; the factor is
        ``1 + lognormal(straggler_mu, straggler_sigma)`` so it is
        always > 1.
    seed:
        Root seed for the per-request straggler draws.  The draw for
        request ``rid`` depends only on ``(seed, rid)`` — independent
        of arrival order and of every other fault — so plans compose
        deterministically.
    """

    core_faults: tuple[CoreFault, ...] = ()
    stalls: tuple[StallFault, ...] = ()
    straggler_rate: float = 0.0
    straggler_mu: float = 0.0
    straggler_sigma: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.straggler_rate <= 1.0:
            raise FaultInjectionError(
                f"straggler_rate must be in [0, 1]: {self.straggler_rate}"
            )
        if self.straggler_sigma < 0:
            raise FaultInjectionError(
                f"straggler_sigma must be >= 0: {self.straggler_sigma}"
            )
        object.__setattr__(self, "core_faults", tuple(self.core_faults))
        object.__setattr__(self, "stalls", tuple(self.stalls))

    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        """Whether the plan injects nothing at all."""
        return (
            not self.core_faults and not self.stalls and self.straggler_rate == 0.0
        )

    def straggler_inflation(self, rid: int) -> float:
        """Deterministic inflation factor for request ``rid`` (1.0 = none)."""
        if self.straggler_rate <= 0.0:
            return 1.0
        rng = np.random.default_rng([self.seed, rid])
        if rng.random() >= self.straggler_rate:
            return 1.0
        return 1.0 + float(rng.lognormal(self.straggler_mu, self.straggler_sigma))

    # ------------------------------------------------------------------
    @classmethod
    def generate(
        cls,
        seed: int,
        horizon_ms: float,
        core_fault_rate_hz: float = 0.0,
        core_fault_duration_ms: float = 200.0,
        cores_per_fault: int = 1,
        stall_rate_hz: float = 0.0,
        stall_duration_ms: float = 50.0,
        straggler_rate: float = 0.0,
        straggler_mu: float = 0.0,
        straggler_sigma: float = 0.5,
    ) -> "FaultPlan":
        """Draw a concrete plan over ``[0, horizon_ms)``.

        Timed events are Poisson with the given rates (in events per
        *second* of simulated time); all randomness flows from ``seed``.
        """
        if horizon_ms <= 0:
            raise FaultInjectionError(f"horizon_ms must be positive: {horizon_ms}")
        if core_fault_rate_hz < 0 or stall_rate_hz < 0:
            raise FaultInjectionError("fault rates must be >= 0")
        rng = np.random.default_rng([seed, 0xFA17])
        core_faults = tuple(
            CoreFault(t, core_fault_duration_ms, cores_per_fault)
            for t in _poisson_times(rng, core_fault_rate_hz, horizon_ms)
        )
        stalls = tuple(
            StallFault(t, stall_duration_ms)
            for t in _poisson_times(rng, stall_rate_hz, horizon_ms)
        )
        return cls(
            core_faults=core_faults,
            stalls=stalls,
            straggler_rate=straggler_rate,
            straggler_mu=straggler_mu,
            straggler_sigma=straggler_sigma,
            seed=seed,
        )


def _poisson_times(
    rng: np.random.Generator, rate_hz: float, horizon_ms: float
) -> list[float]:
    """Event times of a Poisson process on ``[0, horizon_ms)``."""
    if rate_hz <= 0:
        return []
    times: list[float] = []
    t = 0.0
    mean_gap_ms = 1000.0 / rate_hz
    while True:
        t += float(rng.exponential(mean_gap_ms))
        if t >= horizon_ms:
            return times
        times.append(t)


@dataclass
class FaultStats:
    """Counters the metrics layer accumulates during a faulty run."""

    #: Timed fault events that actually fired (loss + restore pairs
    #: count once; stalls with no victim do not count).
    faults_fired: int = 0
    #: Requests whose service time was inflated by a straggler draw.
    stragglers_injected: int = 0
    #: Stall events that froze a running request.
    stalls_injected: int = 0
    #: Core-loss events applied.
    core_faults_applied: int = 0
    #: Completions of requests that ran impaired (inflated or stalled).
    degraded_completions: int = 0
    #: Requests rejected by load shedding (backlog bound or deadline).
    shed_requests: int = 0
    #: Sheds specifically caused by a deadline-budget breach.
    deadline_sheds: int = 0

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view (for reports and bit-identical comparisons)."""
        return {
            "faults_fired": self.faults_fired,
            "stragglers_injected": self.stragglers_injected,
            "stalls_injected": self.stalls_injected,
            "core_faults_applied": self.core_faults_applied,
            "degraded_completions": self.degraded_completions,
            "shed_requests": self.shed_requests,
            "deadline_sheds": self.deadline_sheds,
        }
