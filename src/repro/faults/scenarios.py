"""Canned, seeded fault scenarios for robustness experiments.

A *scenario* is a recipe that turns ``(seed, horizon)`` into per-server
:class:`~repro.faults.plan.FaultPlan` factories.  Experiments and
regression tests want the same shaped incident every run — not a fresh
Poisson draw — so scenarios place their timed events at deterministic
fractions of the horizon and derive every per-server seed from the root
seed alone.  Two calls with the same arguments produce plans that
compare equal, which is what makes controller *replay* testable: the
adaptive replication controller must emit a bit-identical
mode-transition sequence whenever it is driven by the same scenario.

:func:`overload_flip` is the flagship: a mid-run capacity dip (cores
reclaimed on every server, plus a stall burst while capacity is short)
over a background straggler rate.  Offered load is unchanged, so the
dip pushes utilization past the instability threshold — redundancy
must shut off — and restoring the cores flips the system back to
underload, where redundancy must come back without flapping.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import FaultInjectionError
from repro.faults.plan import CoreFault, FaultPlan, StallFault

__all__ = ["overload_flip"]

#: Per-server seed stride: plans for servers i and j share nothing, but
#: server i's plan is the same in every run with the same root seed.
_SERVER_SEED_STRIDE = 7919


def overload_flip(
    seed: int,
    horizon_ms: float,
    *,
    onset_fraction: float = 0.30,
    duration_fraction: float = 0.30,
    cores_lost: int = 2,
    stall_ms: float = 40.0,
    straggler_rate: float = 0.10,
    straggler_mu: float = 0.6,
    straggler_sigma: float = 0.5,
) -> Callable[[int], FaultPlan]:
    """A deterministic overload→underload flip, per server.

    At ``onset_fraction * horizon_ms`` every server loses
    ``cores_lost`` cores for ``duration_fraction * horizon_ms``; two
    stalls fire inside the dip (at 1/3 and 2/3 of its span) while
    capacity is short.  A background straggler rate runs throughout,
    seeded per server, so the tail is interesting on both sides of the
    flip.

    Returns a factory mapping ``server_index`` to that server's
    :class:`FaultPlan` — the shape
    :func:`~repro.cluster.simulation.simulate_cluster_robust` expects
    for ``fault_plan_factory``.  All randomness derives from ``seed``;
    the timed events are placed, not drawn.
    """
    if horizon_ms <= 0:
        raise FaultInjectionError(f"horizon_ms must be positive: {horizon_ms}")
    if not 0.0 < onset_fraction < 1.0:
        raise FaultInjectionError(
            f"onset_fraction must be in (0, 1): {onset_fraction}"
        )
    if not 0.0 < duration_fraction < 1.0 - onset_fraction:
        raise FaultInjectionError(
            "duration_fraction must fit inside the horizon: "
            f"{duration_fraction} (onset {onset_fraction})"
        )
    if cores_lost < 1:
        raise FaultInjectionError(f"cores_lost must be >= 1: {cores_lost}")
    if stall_ms < 0:
        raise FaultInjectionError(f"stall_ms must be >= 0: {stall_ms}")

    onset_ms = onset_fraction * horizon_ms
    dip_ms = duration_fraction * horizon_ms
    stalls: tuple[StallFault, ...] = ()
    if stall_ms > 0:
        stalls = tuple(
            StallFault(time_ms=onset_ms + dip_ms * frac, duration_ms=stall_ms)
            for frac in (1.0 / 3.0, 2.0 / 3.0)
        )

    def factory(server_index: int) -> FaultPlan:
        return FaultPlan(
            core_faults=(
                CoreFault(time_ms=onset_ms, duration_ms=dip_ms, cores=cores_lost),
            ),
            stalls=stalls,
            straggler_rate=straggler_rate,
            straggler_mu=straggler_mu,
            straggler_sigma=straggler_sigma,
            seed=seed + _SERVER_SEED_STRIDE * server_index,
        )

    return factory
