"""Query execution with per-segment tasks and deterministic cost units.

The FM Lucene implementation parallelizes a request by handing index
segments to worker threads; this executor mirrors that: a query becomes
one :class:`SegmentTask` per segment, each task scans the postings of
the query terms in its segment and scores candidates, and a final merge
selects the global top-k.

Costs are counted in *work units* — one unit per posting scanned plus a
per-candidate scoring charge and a per-result merge charge.  Work units
are deterministic, so the profiler can convert them to milliseconds
with a single calibration constant instead of measuring wall time
(which the GIL would distort; see DESIGN.md §1).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.search.index import InvertedIndex, Segment
from repro.search.query import Query
from repro.search.scoring import bm25_score
from repro.telemetry import Telemetry, resolve_telemetry

__all__ = ["SearchHit", "SegmentTask", "QueryExecution", "SearchEngine"]

#: Work-unit charges for the cost model.
POSTING_SCAN_COST = 1.0
SCORE_COST = 0.5
MERGE_COST = 0.2


@dataclass(frozen=True)
class SearchHit:
    """One scored result."""

    doc_id: int
    score: float


@dataclass
class SegmentTask:
    """The work of one query against one segment — the parallelism unit."""

    segment_id: int
    hits: list[SearchHit] = field(default_factory=list)
    cost_units: float = 0.0


@dataclass
class QueryExecution:
    """Full result of executing one query: ranked hits + cost breakdown.

    Deadline-degraded executions (``deadline_hit``) carry tasks only for
    the segments that completed within the budget; ``coverage`` is the
    completed fraction and ``skipped_segments`` names the rest, so a
    partial answer is always an *explicit* partial answer — never a
    silent drop.
    """

    query: Query
    hits: list[SearchHit]
    tasks: list[SegmentTask]
    #: Fraction of index segments whose results are merged in (1.0 = full).
    coverage: float = 1.0
    #: Whether the deadline budget truncated execution.
    deadline_hit: bool = False
    #: Segment ids the deadline forced the executor to skip.
    skipped_segments: tuple[int, ...] = ()

    @property
    def total_cost_units(self) -> float:
        """Sequential cost: the sum of all segment tasks plus the merge."""
        merge = MERGE_COST * sum(len(t.hits) for t in self.tasks)
        return sum(t.cost_units for t in self.tasks) + merge

    @property
    def segment_costs(self) -> list[float]:
        """Per-segment task costs — the inputs to the parallel makespan."""
        return [t.cost_units for t in self.tasks]

    @property
    def is_partial(self) -> bool:
        """Whether any segment was skipped (degraded answer)."""
        return bool(self.skipped_segments)


class SearchEngine:
    """Executes queries against a segmented :class:`InvertedIndex`.

    With a resolved :class:`~repro.telemetry.Telemetry` pipeline
    (explicit or ambient), every :meth:`execute` emits a wall-clock
    ``query`` span on the ``"search"`` track with one parent-linked
    child span per segment task, plus segment and coverage counters;
    without one, execution is unchanged.
    """

    def __init__(
        self, index: InvertedIndex, telemetry: Telemetry | None = None
    ) -> None:
        self.index = index
        self.telemetry = resolve_telemetry(telemetry)
        # Corpus-wide stats are snapshotted once: the paper's engines
        # serve a read-only index between rebuilds.
        self._num_docs = index.num_docs
        self._avg_len = index.average_doc_length
        self._doc_freq: dict[str, int] = {}

    def _document_frequency(self, term: str) -> int:
        if term not in self._doc_freq:
            self._doc_freq[term] = self.index.document_frequency(term)
        return self._doc_freq[term]

    def execute_segment(self, query: Query, segment: Segment) -> SegmentTask:
        """Run one query against one segment (a worker thread's job)."""
        task = SegmentTask(segment_id=segment.segment_id)
        accumulator: dict[int, float] = {}
        for term in query.terms:
            postings = segment.postings(term)
            task.cost_units += POSTING_SCAN_COST * len(postings)
            df = self._document_frequency(term)
            for posting in postings:
                score = bm25_score(
                    posting.term_freq,
                    df,
                    self._num_docs,
                    segment.doc_lengths[posting.doc_id],
                    self._avg_len,
                )
                accumulator[posting.doc_id] = accumulator.get(posting.doc_id, 0.0) + score
        task.cost_units += SCORE_COST * len(accumulator)
        top = heapq.nlargest(
            query.top_k, accumulator.items(), key=lambda kv: (kv[1], -kv[0])
        )
        task.hits = [SearchHit(doc_id, score) for doc_id, score in top]
        return task

    def execute(
        self, query: Query, deadline_units: float | None = None
    ) -> QueryExecution:
        """Run the query against every segment and merge the top-k.

        ``deadline_units`` is an optional per-query budget in work
        units (the profiler's calibration constant converts units to
        milliseconds).  A query that exhausts the budget *degrades
        gracefully* instead of blocking on its slowest segments: the
        executor stops starting new segment tasks once the spent cost
        reaches the budget, merges the results of the segments that
        completed, and reports the coverage fraction.  At least one
        segment always runs — a deadline response is a partial answer,
        never an empty or missing one.
        """
        if deadline_units is not None and deadline_units <= 0:
            raise ConfigurationError(
                f"deadline_units must be positive: {deadline_units}"
            )
        telemetry = self.telemetry
        query_span = None
        if telemetry is not None:
            query_span = telemetry.tracer.begin(
                "query", track="search", terms=" ".join(query.terms),
                top_k=query.top_k,
            )
        tasks: list[SegmentTask] = []
        skipped: list[int] = []
        spent = 0.0
        for segment in self.index.segments:
            # Budget check happens *between* segments — work already
            # done is kept (the overrun is discovered, not predicted).
            if deadline_units is not None and tasks and spent >= deadline_units:
                skipped.append(segment.segment_id)
                continue
            if telemetry is not None:
                segment_span = telemetry.tracer.begin(
                    "segment", track="search", parent=query_span,
                    segment=segment.segment_id,
                )
                task = self.execute_segment(query, segment)
                telemetry.tracer.end(
                    segment_span, cost_units=task.cost_units, hits=len(task.hits)
                )
            else:
                task = self.execute_segment(query, segment)
            tasks.append(task)
            spent += task.cost_units
        merged = heapq.nlargest(
            query.top_k,
            (hit for task in tasks for hit in task.hits),
            key=lambda hit: (hit.score, -hit.doc_id),
        )
        total_segments = len(tasks) + len(skipped)
        execution = QueryExecution(
            query=query,
            hits=merged,
            tasks=tasks,
            coverage=len(tasks) / total_segments if total_segments else 1.0,
            deadline_hit=bool(skipped)
            or (deadline_units is not None and spent > deadline_units),
            skipped_segments=tuple(skipped),
        )
        if telemetry is not None:
            metrics = telemetry.metrics
            metrics.counter("search.queries").inc()
            metrics.counter("search.segments").inc(len(tasks))
            metrics.counter("search.segments_skipped").inc(len(skipped))
            if execution.deadline_hit:
                metrics.counter("search.deadline_hits").inc()
            metrics.histogram("search.query_cost_units").record(
                execution.total_cost_units
            )
            metrics.histogram("search.coverage").record(execution.coverage)
            telemetry.tracer.end(
                query_span,
                cost_units=execution.total_cost_units,
                coverage=execution.coverage,
                deadline_hit=execution.deadline_hit,
            )
        return execution
