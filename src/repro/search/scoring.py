"""BM25 relevance scoring.

Standard Okapi BM25, the same family of lexical scorers Lucene uses by
default.  Scores are deterministic functions of corpus statistics, so
identical queries always cost and rank identically — a property the
profiler relies on.
"""

from __future__ import annotations

import math

__all__ = ["bm25_score", "idf"]


def idf(doc_freq: int, num_docs: int) -> float:
    """BM25 inverse document frequency with the +1 floor that keeps it
    positive for very common terms."""
    if num_docs < 1:
        raise ValueError(f"num_docs must be >= 1: {num_docs}")
    if doc_freq < 0 or doc_freq > num_docs:
        raise ValueError(f"doc_freq out of range: {doc_freq} / {num_docs}")
    return math.log(1.0 + (num_docs - doc_freq + 0.5) / (doc_freq + 0.5))


def bm25_score(
    term_freq: int,
    doc_freq: int,
    num_docs: int,
    doc_length: int,
    average_doc_length: float,
    k1: float = 1.2,
    b: float = 0.75,
) -> float:
    """BM25 contribution of one term occurrence set in one document."""
    if term_freq < 0:
        raise ValueError(f"term_freq must be >= 0: {term_freq}")
    if average_doc_length <= 0:
        raise ValueError(f"average_doc_length must be positive: {average_doc_length}")
    norm = k1 * (1.0 - b + b * doc_length / average_doc_length)
    return idf(doc_freq, num_docs) * term_freq * (k1 + 1.0) / (term_freq + norm)
