"""Deriving demand profiles from the miniature search engine.

The paper's offline phase measures, for every profiled request, its
sequential execution time and its speedup at each degree (Section 6.1:
"We execute 10K requests in isolation with different degrees of
parallelism and gather their execution times").  Here the measurement
is analytical instead of wall-clock:

* *sequential time* = total work units x ``unit_ms`` (one calibration
  constant replaces the hardware);
* *parallel time at degree d* = the makespan of scheduling the per-
  segment task costs onto ``d`` workers (longest-processing-time
  greedy — the same bound a work-stealing pool achieves) plus a
  coordination overhead per extra worker.

Speedup sublinearity is therefore *emergent*: it comes from real
segment imbalance in the index plus the explicit coordination cost,
exactly the two effects that bend the paper's measured curves.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.demand import DemandProfile
from repro.errors import ConfigurationError
from repro.search.executor import SearchEngine
from repro.search.query import Query, parse_query

__all__ = ["lpt_makespan", "parallel_time_units", "profile_queries"]


def lpt_makespan(costs: Sequence[float], workers: int) -> float:
    """Longest-processing-time-first makespan of ``costs`` on
    ``workers`` identical machines."""
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1: {workers}")
    loads = [0.0] * workers
    for cost in sorted(costs, reverse=True):
        lightest = min(range(workers), key=loads.__getitem__)
        loads[lightest] += cost
    return max(loads)


def parallel_time_units(
    costs: Sequence[float],
    workers: int,
    merge_units: float,
    overhead_units_per_worker: float,
) -> float:
    """Execution cost of a query at a given parallelism degree: the
    makespan of its segment tasks, the (sequential) merge, and the
    coordination overhead of the extra workers."""
    makespan = lpt_makespan(costs, workers)
    return makespan + merge_units + overhead_units_per_worker * (workers - 1)


def profile_queries(
    engine: SearchEngine,
    queries: Sequence[Query | str],
    max_degree: int = 6,
    unit_ms: float = 0.01,
    overhead_units_per_worker: float = 25.0,
) -> DemandProfile:
    """Profile a query log into a :class:`DemandProfile`.

    Parameters
    ----------
    engine:
        The engine to execute against.
    queries:
        Query objects or raw query strings.
    max_degree:
        Largest parallelism degree to profile (speedup columns).
    unit_ms:
        Milliseconds per work unit — the hardware-speed calibration.
    overhead_units_per_worker:
        Coordination cost per additional worker, in work units.
    """
    if unit_ms <= 0:
        raise ConfigurationError(f"unit_ms must be positive: {unit_ms}")
    if max_degree < 1:
        raise ConfigurationError(f"max_degree must be >= 1: {max_degree}")
    parsed = [q if isinstance(q, Query) else parse_query(q) for q in queries]
    if not parsed:
        raise ConfigurationError("no queries to profile")

    seq_ms = []
    tables = []
    for query in parsed:
        execution = engine.execute(query)
        costs = execution.segment_costs
        merge_units = execution.total_cost_units - sum(costs)
        total = execution.total_cost_units
        times = [
            parallel_time_units(costs, d, merge_units, overhead_units_per_worker)
            for d in range(1, max_degree + 1)
        ]
        speedups = np.array([times[0] / t for t in times])
        # Guard against non-monotone makespans from the LPT heuristic
        # and normalize s(1) exactly.
        speedups[0] = 1.0
        np.maximum.accumulate(speedups, out=speedups)
        np.minimum(speedups, np.arange(1, max_degree + 1, dtype=float), out=speedups)
        seq_ms.append(total * unit_ms)
        tables.append(speedups)
    return DemandProfile(np.array(seq_ms), np.stack(tables))
