"""Segmented inverted index.

"Lucene arranges its index into segments.  To add parallelism, we
simply divide up the work for an individual request by these segments"
(Section 6.1).  The segment is therefore the unit of intra-request
parallelism; this index mirrors that layout: each segment holds its own
term -> postings map and document statistics, and queries fan out one
task per segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.search.corpus import Document

__all__ = ["Posting", "Segment", "InvertedIndex"]


@dataclass(frozen=True)
class Posting:
    """One (document, term-frequency) pair in a postings list."""

    doc_id: int
    term_freq: int


class Segment:
    """One index segment: postings plus per-document lengths."""

    def __init__(self, segment_id: int) -> None:
        self.segment_id = segment_id
        self._postings: dict[str, list[Posting]] = {}
        self.doc_lengths: dict[int, int] = {}

    def add_document(self, document: Document) -> None:
        """Index one document into this segment."""
        if document.doc_id in self.doc_lengths:
            raise ConfigurationError(f"duplicate doc_id {document.doc_id}")
        counts: dict[str, int] = {}
        for token in document.tokens:
            counts[token] = counts.get(token, 0) + 1
        for term, tf in counts.items():
            self._postings.setdefault(term, []).append(Posting(document.doc_id, tf))
        self.doc_lengths[document.doc_id] = len(document)

    def postings(self, term: str) -> Sequence[Posting]:
        """Postings list for ``term`` (empty when absent)."""
        return self._postings.get(term, ())

    def document_frequency(self, term: str) -> int:
        """Number of this segment's documents containing ``term``."""
        return len(self._postings.get(term, ()))

    @property
    def num_docs(self) -> int:
        return len(self.doc_lengths)

    @property
    def total_tokens(self) -> int:
        return sum(self.doc_lengths.values())

    def __repr__(self) -> str:
        return f"Segment(id={self.segment_id}, docs={self.num_docs})"


class InvertedIndex:
    """A fixed set of segments with corpus-wide statistics.

    Documents are distributed round-robin so segments end up balanced —
    like Lucene after a steady indexing run — but some imbalance always
    remains, which is exactly what makes per-request speedup sublinear.
    """

    def __init__(self, num_segments: int) -> None:
        if num_segments < 1:
            raise ConfigurationError(f"num_segments must be >= 1: {num_segments}")
        self.segments = [Segment(i) for i in range(num_segments)]

    @classmethod
    def build(cls, documents: Iterable[Document], num_segments: int) -> "InvertedIndex":
        """Index a corpus round-robin into ``num_segments`` segments."""
        index = cls(num_segments)
        for position, document in enumerate(documents):
            index.segments[position % num_segments].add_document(document)
        if index.num_docs == 0:
            raise ConfigurationError("cannot build an index from an empty corpus")
        return index

    @property
    def num_segments(self) -> int:
        return len(self.segments)

    @property
    def num_docs(self) -> int:
        return sum(segment.num_docs for segment in self.segments)

    @property
    def average_doc_length(self) -> float:
        docs = self.num_docs
        if docs == 0:
            return 0.0
        return sum(segment.total_tokens for segment in self.segments) / docs

    def document_frequency(self, term: str) -> int:
        """Corpus-wide document frequency of ``term``."""
        return sum(segment.document_frequency(term) for segment in self.segments)

    def __repr__(self) -> str:
        return f"InvertedIndex(segments={self.num_segments}, docs={self.num_docs})"
