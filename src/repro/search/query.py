"""Query representation and parsing."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.search.tokenizer import tokenize

__all__ = ["Query", "parse_query"]


@dataclass(frozen=True)
class Query:
    """A disjunctive (OR) term query with a result budget."""

    terms: tuple[str, ...]
    top_k: int = 10

    def __post_init__(self) -> None:
        if not self.terms:
            raise ConfigurationError("query needs at least one term")
        if self.top_k < 1:
            raise ConfigurationError(f"top_k must be >= 1: {self.top_k}")


def parse_query(text: str, top_k: int = 10) -> Query:
    """Tokenize free text into a :class:`Query`."""
    terms = tuple(tokenize(text))
    if not terms:
        raise ConfigurationError(f"query has no indexable terms: {text!r}")
    return Query(terms=terms, top_k=top_k)
