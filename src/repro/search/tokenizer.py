"""Tokenization for the miniature search engine.

Deliberately simple — lowercase, alphanumeric word characters, a small
stopword list — because the engine's purpose is structural fidelity
(segments, postings, scoring) and deterministic cost accounting, not
linguistic quality.
"""

from __future__ import annotations

import re

__all__ = ["STOPWORDS", "tokenize"]

#: Terms dropped at both index and query time.
STOPWORDS = frozenset(
    "a an and are as at be by for from has he in is it its of on that the "
    "to was were will with".split()
)

_TOKEN_RE = re.compile(r"[a-z0-9]+")


def tokenize(text: str) -> list[str]:
    """Split ``text`` into lowercase alphanumeric tokens, dropping
    stopwords."""
    return [t for t in _TOKEN_RE.findall(text.lower()) if t not in STOPWORDS]
