"""Miniature segmented search engine (the Lucene substrate stand-in).

A structurally faithful, in-memory inverted index: documents are
tokenized into a segmented index (one worker can process one segment,
exactly the unit Lucene's FM implementation parallelizes over), queries
are scored with a BM25-style ranker, and execution is cost-accounted in
deterministic work units so demand profiles can be derived without
wall-clock measurement.
"""

from repro.search.corpus import Document, generate_corpus
from repro.search.executor import QueryExecution, SearchEngine, SegmentTask
from repro.search.index import InvertedIndex, Posting, Segment
from repro.search.profiler import profile_queries
from repro.search.query import Query, parse_query
from repro.search.scoring import bm25_score
from repro.search.tokenizer import tokenize

__all__ = [
    "Document",
    "InvertedIndex",
    "Posting",
    "Query",
    "QueryExecution",
    "SearchEngine",
    "Segment",
    "SegmentTask",
    "bm25_score",
    "generate_corpus",
    "parse_query",
    "profile_queries",
    "tokenize",
]
