"""Synthetic Zipfian corpus and query-log generation.

Stands in for the paper's 33M-page Wikipedia corpus and the Lucene
nightly-benchmark query set.  Term frequencies follow a Zipf law — the
property that makes search demand heavy-tailed: queries containing
popular terms touch long postings lists and run long, rare-term queries
run short.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Document", "generate_corpus", "generate_query_log", "zipf_weights"]


@dataclass(frozen=True)
class Document:
    """One indexed document: id and token list (pre-tokenized)."""

    doc_id: int
    tokens: tuple[str, ...]

    def __len__(self) -> int:
        return len(self.tokens)


def zipf_weights(vocab_size: int, exponent: float = 1.1) -> np.ndarray:
    """Normalized Zipf probabilities over term ranks ``1..vocab_size``."""
    if vocab_size < 1:
        raise ConfigurationError(f"vocab_size must be >= 1: {vocab_size}")
    if exponent <= 0:
        raise ConfigurationError(f"exponent must be positive: {exponent}")
    ranks = np.arange(1, vocab_size + 1, dtype=float)
    weights = ranks**-exponent
    return weights / weights.sum()


def _term(rank: int) -> str:
    """Stable synthetic term for a vocabulary rank."""
    return f"t{rank}"


def generate_corpus(
    num_docs: int,
    vocab_size: int = 5000,
    mean_doc_len: int = 120,
    zipf_exponent: float = 1.1,
    seed: int = 7,
) -> list[Document]:
    """Generate ``num_docs`` documents with Zipf-distributed terms and
    lognormal lengths."""
    if num_docs < 1:
        raise ConfigurationError(f"num_docs must be >= 1: {num_docs}")
    if mean_doc_len < 1:
        raise ConfigurationError(f"mean_doc_len must be >= 1: {mean_doc_len}")
    rng = np.random.default_rng(seed)
    probabilities = zipf_weights(vocab_size, zipf_exponent)
    lengths = np.maximum(
        1, rng.lognormal(np.log(mean_doc_len), 0.4, size=num_docs).astype(int)
    )
    documents = []
    for doc_id, length in enumerate(lengths):
        ranks = rng.choice(vocab_size, size=int(length), p=probabilities) + 1
        documents.append(Document(doc_id, tuple(_term(r) for r in ranks)))
    return documents


def generate_query_log(
    num_queries: int,
    vocab_size: int = 5000,
    zipf_exponent: float = 0.9,
    max_terms: int = 6,
    seed: int = 11,
) -> list[str]:
    """Generate a query log whose terms skew popular (a flatter Zipf
    than documents, as real query logs do).

    Query lengths follow a Zipf-ish law of their own (``P(k) ∝ k^-1.5``
    over ``1..max_terms``): most queries are one or two terms, a rare
    few are long — the length skew plus the postings-size skew is what
    makes search service demand heavy-tailed.
    """
    if num_queries < 1:
        raise ConfigurationError(f"num_queries must be >= 1: {num_queries}")
    if max_terms < 1:
        raise ConfigurationError(f"max_terms must be >= 1: {max_terms}")
    rng = np.random.default_rng(seed)
    probabilities = zipf_weights(vocab_size, zipf_exponent)
    length_weights = np.arange(1, max_terms + 1, dtype=float) ** -1.5
    length_weights /= length_weights.sum()
    term_counts = rng.choice(max_terms, size=num_queries, p=length_weights) + 1
    queries = []
    for count in term_counts:
        ranks = rng.choice(vocab_size, size=int(count), p=probabilities) + 1
        queries.append(" ".join(_term(r) for r in ranks))
    return queries
