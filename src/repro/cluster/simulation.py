"""True multi-ISN cluster simulation.

:func:`repro.cluster.aggregator` resamples a measured per-server
latency distribution, which assumes server latencies are independent
across a fan-out query.  In a real cluster they are not: all shards of
one query arrive *simultaneously* at their ISNs, so queueing is
correlated — a burst hits every server at once.  This module runs the
honest experiment: N independent :class:`~repro.sim.engine.Engine`
instances receive the same arrival times (each with its own demand
draw, since shards differ), and each cluster query's latency is the
max over its N shard latencies.

Comparing :func:`simulate_cluster` against the independence
approximation quantifies how much correlated bursts add to the cluster
tail — an effect the paper's per-server analysis abstracts away.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.cluster.hedging import HedgePolicy, RetryPolicy, resolve_retries
from repro.core.formulas import weighted_order_statistic
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.sim.engine import ArrivalSpec, simulate
from repro.sim.metrics import SimulationResult
from repro.telemetry import Telemetry, resolve_telemetry
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.workload import Workload

if TYPE_CHECKING:  # avoids a cycle: adaptive -> observe -> experiments -> here
    from repro.cluster.adaptive import AdaptiveReplicationController

__all__ = [
    "ClusterResult",
    "RobustClusterResult",
    "simulate_cluster",
    "simulate_cluster_robust",
]

#: Passed to inner per-server engines: the cluster layer owns telemetry
#: for its shards (one span per shard request on the ``"cluster"``
#: track); letting every server engine also resolve an ambient pipeline
#: would interleave N servers' request ids on the same ``"sim"`` lanes.
_SUPPRESS_INNER = Telemetry(enabled=False)


def _record_shard_spans(
    telemetry: Telemetry, server: int, result: SimulationResult
) -> None:
    """One span per (server, query): arrival to completion, on the
    query's lane — shard spans of one query share a start time, so the
    exporter nests them longest-outermost."""
    tracer = telemetry.tracer
    for record in result.records:
        tracer.complete(
            f"shard{server}",
            record.arrival_ms,
            record.finish_ms,
            track="cluster",
            lane=int(record.tag),
            server=server,
            degree=record.final_degree,
        )
    telemetry.metrics.counter("cluster.shard_requests").inc(len(result.records))


@dataclass
class ClusterResult:
    """Outcome of one cluster simulation."""

    #: Per-query cluster latency: max over shards, arrival order.
    query_latencies_ms: np.ndarray
    #: Per-ISN latency arrays (arrival order), for per-server analysis.
    server_latencies_ms: list[np.ndarray]

    def cluster_tail_ms(self, phi: float) -> float:
        """φ-percentile of the cluster (max-over-shards) latency."""
        lats = self.query_latencies_ms
        return weighted_order_statistic(lats, np.ones_like(lats), phi)

    def server_tail_ms(self, phi: float) -> float:
        """Mean per-server φ-percentile latency."""
        tails = [
            weighted_order_statistic(lats, np.ones_like(lats), phi)
            for lats in self.server_latencies_ms
        ]
        return float(np.mean(tails))


def simulate_cluster(
    scheduler_factory,
    workload: Workload,
    num_servers: int,
    num_queries: int,
    process: ArrivalProcess,
    cores: int,
    quantum_ms: float = 5.0,
    spin_fraction: float = 0.25,
    seed: int = 0,
    telemetry: Telemetry | None = None,
) -> ClusterResult:
    """Run one fan-out experiment.

    Parameters
    ----------
    scheduler_factory:
        Zero-argument callable producing a fresh scheduler per server
        (engines must not share mutable policy state).
    workload:
        Demand source; each server draws its own shard demands.
    num_servers:
        Fan-out width (ISNs per query).
    process:
        Arrival process for the *cluster* queries; every server sees
        the same arrival instants.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` pipeline: emits
        one span per shard request on the ``"cluster"`` track (lane =
        query index, in virtual ms) and a cluster-latency histogram.
    """
    if num_servers < 1:
        raise ConfigurationError(f"num_servers must be >= 1: {num_servers}")
    if num_queries < 1:
        raise ConfigurationError(f"num_queries must be >= 1: {num_queries}")
    telemetry = resolve_telemetry(telemetry)
    rng = np.random.default_rng(seed)
    times = process.times_ms(num_queries, rng)

    per_server: list[np.ndarray] = []
    for server in range(num_servers):
        demands = workload.sampler(rng, num_queries)
        arrivals = [
            ArrivalSpec(
                time_ms=float(t),
                seq_ms=float(d),
                speedup=workload.speedup_model.curve_for(float(d)),
                tag=query_index,
            )
            for query_index, (t, d) in enumerate(zip(times, demands))
        ]
        result = simulate(
            arrivals,
            scheduler_factory(),
            cores=cores,
            quantum_ms=quantum_ms,
            spin_fraction=spin_fraction,
            telemetry=_SUPPRESS_INNER,
        )
        latencies = np.empty(num_queries)
        for record in result.records:
            latencies[record.tag] = record.latency_ms
        per_server.append(latencies)
        if telemetry is not None:
            _record_shard_spans(telemetry, server, result)

    stacked = np.stack(per_server)
    cluster_latencies = stacked.max(axis=0)
    if telemetry is not None:
        telemetry.metrics.counter("cluster.queries").inc(num_queries)
        histogram = telemetry.metrics.histogram("cluster.query_latency_ms")
        for latency in cluster_latencies:
            histogram.record(float(latency))
    return ClusterResult(
        query_latencies_ms=cluster_latencies,
        server_latencies_ms=per_server,
    )


@dataclass
class RobustClusterResult:
    """Outcome of one robust (hedged / retried / deadlined) cluster run."""

    #: Effective per-query cluster latency: max over shard effective
    #: latencies, capped at the deadline when one is set (a deadlined
    #: query answers *at* the deadline from the shards that made it).
    query_latencies_ms: np.ndarray
    #: Uncapped max-over-shards effective latency (what the client
    #: would wait without a deadline).
    raw_query_latencies_ms: np.ndarray
    #: Per-query answer quality: fraction of shards answered within the
    #: deadline (1.0 everywhere when no deadline is set).
    quality: np.ndarray
    #: Primary per-ISN latency arrays (arrival order), pre-hedging.
    server_latencies_ms: list[np.ndarray]
    #: Resolved hedge delay (None when hedging is off).
    hedge_delay_ms: float | None = None
    #: Duplicate shard requests actually issued.
    hedges_sent: int = 0
    #: Retry attempts actually issued.
    retries_sent: int = 0
    #: Per-primary-server fault counters (dicts from FaultStats.as_dict).
    server_fault_stats: list[dict] = field(default_factory=list)
    #: Per-query redundancy wait: of the slowest (latency-setting)
    #: shard's effective latency, the part spent waiting before the
    #: winning duplicate went out — the hedge delay when a hedge won,
    #: the cumulative backoff when a retry won, 0.0 when the primary
    #: answered first.  ``raw_query_latencies_ms - query_redundancy_wait_ms``
    #: is the winning attempt's own latency (additive split).
    query_redundancy_wait_ms: np.ndarray = field(
        default_factory=lambda: np.zeros(0)
    )
    #: Per-query hedge delay actually in force (``nan`` = hedging off
    #: for that query).  Constant under a static policy; varies window
    #: to window under the adaptive controller.
    query_hedge_delay_ms: np.ndarray = field(default_factory=lambda: np.zeros(0))
    #: Shard attempts whose first latency exceeded the applicable retry
    #: timeout (counted even under ``max_retries=0``: timeout
    #: accounting survives brownout, re-sends do not).
    timeouts: int = 0
    #: Sequential work-milliseconds of *offered load added by the
    #: redundancy machinery itself*: each hedge re-offers its query's
    #: demand (the original shard demand under "shared", the freshly
    #: drawn replica demand under "spare") and each retry re-offers the
    #: shard's original demand once per re-send.  This is the
    #: denominator gap in any "utilization vs offered load" plot —
    #: static policies past the knee look cheap in request counts while
    #: injecting the heaviest demand quantiles as extra work.
    injected_work_ms: float = 0.0
    #: The adaptive controller that drove this run (``None`` under
    #: static policies); inspect ``controller.transitions`` for the
    #: mode sequence.
    controller: AdaptiveReplicationController | None = None

    @property
    def mode_transitions(self) -> tuple[tuple, ...]:
        """The controller's transition signature (empty when static)."""
        if self.controller is None:
            return ()
        return self.controller.transition_signature()

    def mean_redundancy_wait_ms(self) -> float:
        """Average per-query redundancy wait (0.0 with no mitigations)."""
        if self.query_redundancy_wait_ms.size == 0:
            return 0.0
        return float(self.query_redundancy_wait_ms.mean())

    def cluster_tail_ms(self, phi: float) -> float:
        """φ-percentile of the effective cluster latency."""
        lats = self.query_latencies_ms
        return weighted_order_statistic(lats, np.ones_like(lats), phi)

    def mean_quality(self) -> float:
        """Average answer quality over all queries."""
        return float(self.quality.mean())

    def full_answer_fraction(self) -> float:
        """Fraction of queries answered by *every* shard in time."""
        return float(np.mean(self.quality >= 1.0))


def _drive_controller(
    controller: AdaptiveReplicationController,
    times: np.ndarray,
    per_server: list[np.ndarray],
    core_time: np.ndarray,
    delays: np.ndarray,
    retry_policies: list[RetryPolicy | None],
    cores: int,
) -> None:
    """Walk queries in arrival order under the controller's windows.

    Each query takes the knobs of the controller's current decision
    (recorded into ``delays``/``retry_policies`` in place); the
    controller then observes the query's *shard* completions — one
    observation per server, so its rolling buffer holds the per-shard
    latency marginal hedge delays and retry timeouts must be resolved
    against (a p80 hedge delay means "duplicate the slowest 20% of
    shard requests", exactly like a static p80 policy) — along with
    the busy core-time each shard offered (primary work plus the
    duplicate the current decision just committed it to, so hedge load
    feeds the utilization signal *before* the fleet melts) and the
    mean in-system depth at its arrival.
    """
    num_servers = len(per_server)
    num_queries = len(times)
    if controller.config.cores != cores:
        raise ConfigurationError(
            f"controller capacity ({controller.config.cores} cores) must "
            f"match the simulated servers ({cores} cores)"
        )
    stacked = np.stack(per_server)
    # Mean in-system count at each arrival: arrivals so far minus
    # finishes so far, averaged over servers.
    depth = np.zeros(num_queries)
    arrived = np.arange(1, num_queries + 1, dtype=float)
    for server in range(num_servers):
        finishes = np.sort(times + per_server[server])
        depth += arrived - np.searchsorted(finishes, times, side="right")
    depth /= num_servers
    for q in range(num_queries):
        decision = controller.decision
        retry_policies[q] = decision.retry
        if decision.hedge_delay_ms is not None:
            delays[q] = decision.hedge_delay_ms
        at_ms = float(times[q])
        for server in range(num_servers):
            # Per-server offered work, normalized to a fleet-average
            # signal (divide by num_servers: the controller's capacity
            # model is one server of `cores`).  A shard the current
            # decision just committed to hedging re-runs its work on a
            # peer, so the duplicate counts too.
            busy = core_time[server][q] / num_servers
            if not np.isnan(delays[q]) and stacked[server][q] > delays[q]:
                busy *= 2.0
            controller.observe(
                float(stacked[server][q]),
                at_ms=at_ms,
                busy_ms=float(busy),
                queue_depth=float(depth[q]),
            )
    controller.flush(float(times[-1]))


def simulate_cluster_robust(
    scheduler_factory,
    workload: Workload,
    num_servers: int,
    num_queries: int,
    process: ArrivalProcess,
    cores: int,
    quantum_ms: float = 5.0,
    spin_fraction: float = 0.25,
    seed: int = 0,
    fault_plan_factory: Callable[[int], FaultPlan | None] | None = None,
    hedge: HedgePolicy | None = None,
    retry: RetryPolicy | None = None,
    deadline_ms: float | None = None,
    controller: AdaptiveReplicationController | None = None,
    replica_mode: str = "spare",
    telemetry: Telemetry | None = None,
) -> RobustClusterResult:
    """A fan-out experiment with faults and tail-taming mitigations.

    Extends :func:`simulate_cluster` with the robustness stack:

    1. **Faults** — ``fault_plan_factory(i)`` supplies a deterministic
       :class:`~repro.faults.plan.FaultPlan` per server (primaries get
       indices ``0..num_servers-1``, spare replicas ``num_servers..2N-1``),
       so stragglers and stalls differ across shards but reproduce
       bit-for-bit under the same seed.
    2. **Hedging** — after the resolved delay, every still-unanswered
       shard request is duplicated and the first response wins
       (Vulimiri et al.).  Where the duplicate lands is
       ``replica_mode``:

       * ``"spare"`` (default) — a dedicated replica server per shard,
         simulated with the real correlated arrival process of the
         hedges it receives.  Spares congest under a hedge storm, but
         primary traffic never pays for redundancy.
       * ``"shared"`` — the duplicate goes to the *next primary*
         (shard ``s`` hedges to server ``(s+1) % num_servers``), and
         every server is re-simulated with its primaries plus the
         hedges it receives.  Now redundancy taxes the very capacity
         serving foreground traffic — the Poloczek/Ciucu regime where
         a static hedge helps at low load and destabilizes the fleet
         past the utilization threshold.  The hedge trigger is
         evaluated against the uncontended first pass (the duplicate
         decision a real client makes from its timer), the duplicate
         re-executes the *same* demand (it escapes straggler and queue
         luck, never the work itself), and *non-hedged* queries also
         feel the added load: collateral damage is part of the model.
         Requires ``num_servers >= 2``.
    3. **Timeout + retry** — shards still unanswered at the timeout
       re-send under exponential backoff.  Retry attempt latencies are
       resampled deterministically from that server's observed latency
       marginal (the retried request re-rolls its replica/queue luck);
       retry load is *not* fed back into queues, an approximation valid
       at the low retry rates the timeout should produce.
    4. **Deadline** — a query stops waiting at ``deadline_ms`` and
       answers from the shards that made it; quality is the fraction
       that did.

    ``controller`` replaces the static ``hedge``/``retry`` knobs with an
    :class:`~repro.cluster.adaptive.AdaptiveReplicationController`:
    queries are walked in arrival order, each taking the hedge delay and
    retry policy of the controller's current window, and the controller
    observes each window's latencies, busy core-time (primary work plus
    the duplicates its own decision just triggered — so hedge load
    feeds back into the utilization signal before the system melts),
    and queue depth.  The controller sees each query's completion
    latency at its arrival window (a look-ahead that keeps the control
    loop single-pass and deterministic); its transition history is
    returned on the result.  Mutually exclusive with ``hedge``/``retry``.

    With a resolved :class:`~repro.telemetry.Telemetry` pipeline the
    run emits primary-shard spans on the ``"cluster"`` track, hedge
    spans on ``"cluster.hedge"``, hedge/retry/timeout/deadline-miss
    counters, latency + quality histograms, and — under a controller —
    the ``cluster.adaptive.*`` mode/utilization/budget series.
    """
    if num_servers < 1:
        raise ConfigurationError(f"num_servers must be >= 1: {num_servers}")
    if num_queries < 1:
        raise ConfigurationError(f"num_queries must be >= 1: {num_queries}")
    if deadline_ms is not None and deadline_ms <= 0:
        raise ConfigurationError(f"deadline_ms must be positive: {deadline_ms}")
    if replica_mode not in ("spare", "shared"):
        raise ConfigurationError(
            f"replica_mode must be 'spare' or 'shared': {replica_mode!r}"
        )
    if replica_mode == "shared" and num_servers < 2:
        raise ConfigurationError(
            "replica_mode='shared' needs num_servers >= 2 (hedges land on peers)"
        )
    if controller is not None and (hedge is not None or retry is not None):
        raise ConfigurationError(
            "pass either static hedge/retry policies or an adaptive "
            "controller, not both"
        )
    telemetry = resolve_telemetry(telemetry)
    rng = np.random.default_rng(seed)
    times = process.times_ms(num_queries, rng)

    def run_server(arrivals: list[ArrivalSpec], plan_index: int):
        plan = fault_plan_factory(plan_index) if fault_plan_factory else None
        return simulate(
            arrivals,
            scheduler_factory(),
            cores=cores,
            quantum_ms=quantum_ms,
            spin_fraction=spin_fraction,
            fault_plan=plan,
            telemetry=_SUPPRESS_INNER,
        )

    # --- primaries: every server sees every query at its arrival time.
    per_server: list[np.ndarray] = []
    core_time = np.zeros((num_servers, num_queries))
    primary_arrivals: list[list[ArrivalSpec]] = []
    server_demands: list[np.ndarray] = []
    fault_stats: list[dict] = []
    for server in range(num_servers):
        demands = workload.sampler(rng, num_queries)
        server_demands.append(demands)
        arrivals = [
            ArrivalSpec(
                time_ms=float(t),
                seq_ms=float(d),
                speedup=workload.speedup_model.curve_for(float(d)),
                tag=query_index,
            )
            for query_index, (t, d) in enumerate(zip(times, demands))
        ]
        primary_arrivals.append(arrivals)
        result = run_server(arrivals, server)
        latencies = np.empty(num_queries)
        for record in result.records:
            latencies[record.tag] = record.latency_ms
            core_time[server][record.tag] = record.core_time_ms
        per_server.append(latencies)
        fault_stats.append(result.fault_stats.as_dict())
        if telemetry is not None:
            _record_shard_spans(telemetry, server, result)

    # --- redundancy knobs per query: static (one delay/policy for the
    # whole run) or adaptive (the controller's windowed decisions).
    hedge_delay: float | None = None
    delays = np.full(num_queries, np.nan)  # nan = no hedge for that query
    retry_policies: list[RetryPolicy | None] = [retry] * num_queries
    if hedge is not None:
        hedge_delay = hedge.resolve_delay_ms(np.concatenate(per_server))
        delays.fill(hedge_delay)
    if controller is not None:
        if controller.telemetry is None:
            controller.telemetry = telemetry
        controller.reset()
        _drive_controller(
            controller, times, per_server, core_time, delays,
            retry_policies, cores,
        )

    effective = np.stack(per_server).copy()  # (servers, queries)
    # Redundancy wait per (server, query): the winning attempt's issue
    # offset — how long this shard's answer waited on hedge/retry
    # machinery before the duplicate that won was even sent.
    redundancy = np.zeros_like(effective)

    # --- hedging: late shard requests duplicate per replica_mode.
    # The trigger is primary-latency > delay on the *first-pass* run
    # (nan delays compare False, so unhedged queries fall out here).
    hedge_sets = [
        [q for q in range(num_queries) if per_server[server][q] > delays[q]]
        for server in range(num_servers)
    ]
    hedges_sent = sum(len(hedged) for hedged in hedge_sets)
    # Work-ms the redundancy machinery adds to the offered load
    # (accounting only — nothing downstream reads it).
    injected_work_ms = 0.0
    if hedges_sent and replica_mode == "spare":
        for server in range(num_servers):
            hedged = hedge_sets[server]
            if not hedged:
                continue
            replica_demands = workload.sampler(rng, len(hedged))
            injected_work_ms += float(np.sum(replica_demands))
            replica_arrivals = [
                ArrivalSpec(
                    time_ms=float(times[q]) + float(delays[q]),
                    seq_ms=float(d),
                    speedup=workload.speedup_model.curve_for(float(d)),
                    tag=q,
                )
                for q, d in zip(hedged, replica_demands)
            ]
            replica = run_server(replica_arrivals, num_servers + server)
            for record in replica.records:
                q = record.tag
                delay_q = float(delays[q])
                hedged_total = delay_q + record.latency_ms
                if hedged_total < effective[server][q]:
                    effective[server][q] = hedged_total
                    redundancy[server][q] = delay_q
                if telemetry is not None:
                    # Hedges get their own track: they start mid-query,
                    # so nesting them under the primary shard span would
                    # be an improper partial overlap.
                    telemetry.tracer.complete(
                        f"hedge{server}",
                        float(times[q]) + delay_q,
                        float(times[q]) + delay_q + record.latency_ms,
                        track="cluster.hedge",
                        lane=int(q),
                        server=server,
                        won=bool(
                            delay_q + record.latency_ms < per_server[server][q]
                        ),
                    )
    elif hedges_sent:  # replica_mode == "shared"
        # Second pass: each server re-runs its primaries plus the
        # hedges addressed to it (those of the previous shard).  Hedge
        # arrivals are tagged num_queries + q to stay distinguishable.
        # All loaded runs complete before any hedge resolves, because a
        # shard's hedged answer combines *its* loaded primary latency
        # with its successor's loaded hedge latency.  A hedge re-executes
        # the same shard request, so it carries the *original* demand:
        # what it escapes is the source's straggler/queueing luck, not
        # the work itself — and what it costs the peer is exactly that
        # tail demand.  (This is why static hedging melts down past the
        # knee: the duplicated work is the heaviest quantile.)
        hedge_latency: list[dict[int, float]] = [{} for _ in range(num_servers)]
        for source in range(num_servers):
            injected_work_ms += float(
                sum(float(server_demands[source][q]) for q in hedge_sets[source])
            )
        for target in range(num_servers):
            source = (target - 1) % num_servers
            incoming = [
                ArrivalSpec(
                    time_ms=float(times[q]) + float(delays[q]),
                    seq_ms=float(server_demands[source][q]),
                    speedup=workload.speedup_model.curve_for(
                        float(server_demands[source][q])
                    ),
                    tag=num_queries + q,
                )
                for q in hedge_sets[source]
            ]
            loaded = run_server(primary_arrivals[target] + incoming, target)
            for record in loaded.records:
                tag = int(record.tag)
                if tag < num_queries:
                    effective[target][tag] = record.latency_ms
                else:
                    hedge_latency[source][tag - num_queries] = record.latency_ms
            # The loaded run is the honest one: its fault stats replace
            # the first pass's for this server.
            fault_stats[target] = loaded.fault_stats.as_dict()
        for source in range(num_servers):
            target = (source + 1) % num_servers
            for q in hedge_sets[source]:
                delay_q = float(delays[q])
                hedged_total = delay_q + hedge_latency[source][q]
                won = hedged_total < effective[source][q]
                if won:
                    effective[source][q] = hedged_total
                    redundancy[source][q] = delay_q
                if telemetry is not None:
                    telemetry.tracer.complete(
                        f"hedge{source}",
                        float(times[q]) + delay_q,
                        float(times[q]) + delay_q + hedge_latency[source][q],
                        track="cluster.hedge",
                        lane=int(q),
                        server=source,
                        target=target,
                        won=bool(won),
                    )

    # --- timeout + retry with exponential backoff (and, under
    # max_retries=0, timeout accounting with no re-send).
    retries_sent = 0
    timeouts = 0
    if any(policy is not None for policy in retry_policies):
        retry_rng = np.random.default_rng([seed, 0x5E771E5])
        for server in range(num_servers):
            # Retries re-roll against the server's observed primary
            # marginal: first pass under "spare" (replica luck is
            # drawn, not queued), the loaded second pass under
            # "shared" (the honest congested distribution).
            marginal = (
                effective[server].copy()
                if replica_mode == "shared"
                else per_server[server]
            )
            for q in range(num_queries):
                policy = retry_policies[q]
                if policy is None:
                    continue
                first = float(effective[server][q])
                if first <= policy.timeout_ms:
                    continue
                timeouts += 1
                if policy.max_retries == 0:
                    continue  # brownout: account the timeout, never re-send
                redraws = retry_rng.choice(marginal, size=policy.max_retries)
                resolution = resolve_retries([first, *redraws], policy)
                effective[server][q] = resolution.latency_ms
                retries_sent += resolution.retries
                # Each re-send re-offers the shard's original demand.
                injected_work_ms += (
                    float(server_demands[server][q]) * resolution.retries
                )
                if resolution.winner > 0:
                    # A retry won: the shard's redundancy wait is the
                    # backoff time, superseding any hedge wait baked
                    # into the (losing) original attempt.
                    redundancy[server][q] = resolution.redundancy_wait_ms

    # --- deadline: partial aggregation + answer quality.
    raw = effective.max(axis=0)
    # Attribution: each query's latency is set by its slowest shard;
    # that shard's redundancy wait is the query's redundancy wait.
    slowest_shard = effective.argmax(axis=0)
    query_redundancy = redundancy[slowest_shard, np.arange(num_queries)]
    if deadline_ms is not None:
        quality = (effective <= deadline_ms).mean(axis=0)
        query_latencies = np.minimum(raw, deadline_ms)
    else:
        quality = np.ones(num_queries)
        query_latencies = raw

    if telemetry is not None:
        metrics = telemetry.metrics
        metrics.counter("cluster.queries").inc(num_queries)
        metrics.counter("cluster.hedges").inc(hedges_sent)
        metrics.counter("cluster.retries").inc(retries_sent)
        metrics.counter("cluster.retry.injected_work").inc(injected_work_ms)
        metrics.counter("cluster.timeouts").inc(timeouts)
        if deadline_ms is not None:
            metrics.counter("cluster.deadline_misses").inc(
                int(np.sum(raw > deadline_ms))
            )
        latency_hist = metrics.histogram("cluster.query_latency_ms")
        quality_hist = metrics.histogram("cluster.quality")
        # cluster.attr.*: the two-way additive split of each query's
        # (uncapped) latency — the slowest shard's own attempt latency
        # plus the redundancy wait in front of it.
        wait_hist = metrics.histogram("cluster.attr.redundancy_wait_ms")
        shard_hist = metrics.histogram("cluster.attr.slowest_shard_ms")
        for latency, answered, total, wait in zip(
            query_latencies, quality, raw, query_redundancy
        ):
            latency_hist.record(float(latency))
            quality_hist.record(float(answered))
            wait_hist.record(float(wait))
            shard_hist.record(float(total - wait))

    return RobustClusterResult(
        query_latencies_ms=query_latencies,
        raw_query_latencies_ms=raw,
        quality=quality,
        server_latencies_ms=per_server,
        hedge_delay_ms=hedge_delay,
        hedges_sent=hedges_sent,
        retries_sent=retries_sent,
        server_fault_stats=fault_stats,
        query_redundancy_wait_ms=query_redundancy,
        query_hedge_delay_ms=delays,
        timeouts=timeouts,
        controller=controller,
        injected_work_ms=injected_work_ms,
    )
