"""True multi-ISN cluster simulation.

:func:`repro.cluster.aggregator` resamples a measured per-server
latency distribution, which assumes server latencies are independent
across a fan-out query.  In a real cluster they are not: all shards of
one query arrive *simultaneously* at their ISNs, so queueing is
correlated — a burst hits every server at once.  This module runs the
honest experiment: N independent :class:`~repro.sim.engine.Engine`
instances receive the same arrival times (each with its own demand
draw, since shards differ), and each cluster query's latency is the
max over its N shard latencies.

Comparing :func:`simulate_cluster` against the independence
approximation quantifies how much correlated bursts add to the cluster
tail — an effect the paper's per-server analysis abstracts away.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.cluster.hedging import HedgePolicy, RetryPolicy, resolve_retries
from repro.core.formulas import weighted_order_statistic
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.sim.engine import ArrivalSpec, simulate
from repro.sim.metrics import SimulationResult
from repro.telemetry import Telemetry, resolve_telemetry
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.workload import Workload

__all__ = [
    "ClusterResult",
    "RobustClusterResult",
    "simulate_cluster",
    "simulate_cluster_robust",
]

#: Passed to inner per-server engines: the cluster layer owns telemetry
#: for its shards (one span per shard request on the ``"cluster"``
#: track); letting every server engine also resolve an ambient pipeline
#: would interleave N servers' request ids on the same ``"sim"`` lanes.
_SUPPRESS_INNER = Telemetry(enabled=False)


def _record_shard_spans(
    telemetry: Telemetry, server: int, result: SimulationResult
) -> None:
    """One span per (server, query): arrival to completion, on the
    query's lane — shard spans of one query share a start time, so the
    exporter nests them longest-outermost."""
    tracer = telemetry.tracer
    for record in result.records:
        tracer.complete(
            f"shard{server}",
            record.arrival_ms,
            record.finish_ms,
            track="cluster",
            lane=int(record.tag),
            server=server,
            degree=record.final_degree,
        )
    telemetry.metrics.counter("cluster.shard_requests").inc(len(result.records))


@dataclass
class ClusterResult:
    """Outcome of one cluster simulation."""

    #: Per-query cluster latency: max over shards, arrival order.
    query_latencies_ms: np.ndarray
    #: Per-ISN latency arrays (arrival order), for per-server analysis.
    server_latencies_ms: list[np.ndarray]

    def cluster_tail_ms(self, phi: float) -> float:
        """φ-percentile of the cluster (max-over-shards) latency."""
        lats = self.query_latencies_ms
        return weighted_order_statistic(lats, np.ones_like(lats), phi)

    def server_tail_ms(self, phi: float) -> float:
        """Mean per-server φ-percentile latency."""
        tails = [
            weighted_order_statistic(lats, np.ones_like(lats), phi)
            for lats in self.server_latencies_ms
        ]
        return float(np.mean(tails))


def simulate_cluster(
    scheduler_factory,
    workload: Workload,
    num_servers: int,
    num_queries: int,
    process: ArrivalProcess,
    cores: int,
    quantum_ms: float = 5.0,
    spin_fraction: float = 0.25,
    seed: int = 0,
    telemetry: Telemetry | None = None,
) -> ClusterResult:
    """Run one fan-out experiment.

    Parameters
    ----------
    scheduler_factory:
        Zero-argument callable producing a fresh scheduler per server
        (engines must not share mutable policy state).
    workload:
        Demand source; each server draws its own shard demands.
    num_servers:
        Fan-out width (ISNs per query).
    process:
        Arrival process for the *cluster* queries; every server sees
        the same arrival instants.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` pipeline: emits
        one span per shard request on the ``"cluster"`` track (lane =
        query index, in virtual ms) and a cluster-latency histogram.
    """
    if num_servers < 1:
        raise ConfigurationError(f"num_servers must be >= 1: {num_servers}")
    if num_queries < 1:
        raise ConfigurationError(f"num_queries must be >= 1: {num_queries}")
    telemetry = resolve_telemetry(telemetry)
    rng = np.random.default_rng(seed)
    times = process.times_ms(num_queries, rng)

    per_server: list[np.ndarray] = []
    for server in range(num_servers):
        demands = workload.sampler(rng, num_queries)
        arrivals = [
            ArrivalSpec(
                time_ms=float(t),
                seq_ms=float(d),
                speedup=workload.speedup_model.curve_for(float(d)),
                tag=query_index,
            )
            for query_index, (t, d) in enumerate(zip(times, demands))
        ]
        result = simulate(
            arrivals,
            scheduler_factory(),
            cores=cores,
            quantum_ms=quantum_ms,
            spin_fraction=spin_fraction,
            telemetry=_SUPPRESS_INNER,
        )
        latencies = np.empty(num_queries)
        for record in result.records:
            latencies[record.tag] = record.latency_ms
        per_server.append(latencies)
        if telemetry is not None:
            _record_shard_spans(telemetry, server, result)

    stacked = np.stack(per_server)
    cluster_latencies = stacked.max(axis=0)
    if telemetry is not None:
        telemetry.metrics.counter("cluster.queries").inc(num_queries)
        histogram = telemetry.metrics.histogram("cluster.query_latency_ms")
        for latency in cluster_latencies:
            histogram.record(float(latency))
    return ClusterResult(
        query_latencies_ms=cluster_latencies,
        server_latencies_ms=per_server,
    )


@dataclass
class RobustClusterResult:
    """Outcome of one robust (hedged / retried / deadlined) cluster run."""

    #: Effective per-query cluster latency: max over shard effective
    #: latencies, capped at the deadline when one is set (a deadlined
    #: query answers *at* the deadline from the shards that made it).
    query_latencies_ms: np.ndarray
    #: Uncapped max-over-shards effective latency (what the client
    #: would wait without a deadline).
    raw_query_latencies_ms: np.ndarray
    #: Per-query answer quality: fraction of shards answered within the
    #: deadline (1.0 everywhere when no deadline is set).
    quality: np.ndarray
    #: Primary per-ISN latency arrays (arrival order), pre-hedging.
    server_latencies_ms: list[np.ndarray]
    #: Resolved hedge delay (None when hedging is off).
    hedge_delay_ms: float | None = None
    #: Duplicate shard requests actually issued.
    hedges_sent: int = 0
    #: Retry attempts actually issued.
    retries_sent: int = 0
    #: Per-primary-server fault counters (dicts from FaultStats.as_dict).
    server_fault_stats: list[dict] = field(default_factory=list)
    #: Per-query redundancy wait: of the slowest (latency-setting)
    #: shard's effective latency, the part spent waiting before the
    #: winning duplicate went out — the hedge delay when a hedge won,
    #: the cumulative backoff when a retry won, 0.0 when the primary
    #: answered first.  ``raw_query_latencies_ms - query_redundancy_wait_ms``
    #: is the winning attempt's own latency (additive split).
    query_redundancy_wait_ms: np.ndarray = field(
        default_factory=lambda: np.zeros(0)
    )

    def mean_redundancy_wait_ms(self) -> float:
        """Average per-query redundancy wait (0.0 with no mitigations)."""
        if self.query_redundancy_wait_ms.size == 0:
            return 0.0
        return float(self.query_redundancy_wait_ms.mean())

    def cluster_tail_ms(self, phi: float) -> float:
        """φ-percentile of the effective cluster latency."""
        lats = self.query_latencies_ms
        return weighted_order_statistic(lats, np.ones_like(lats), phi)

    def mean_quality(self) -> float:
        """Average answer quality over all queries."""
        return float(self.quality.mean())

    def full_answer_fraction(self) -> float:
        """Fraction of queries answered by *every* shard in time."""
        return float(np.mean(self.quality >= 1.0))


def simulate_cluster_robust(
    scheduler_factory,
    workload: Workload,
    num_servers: int,
    num_queries: int,
    process: ArrivalProcess,
    cores: int,
    quantum_ms: float = 5.0,
    spin_fraction: float = 0.25,
    seed: int = 0,
    fault_plan_factory: Callable[[int], FaultPlan | None] | None = None,
    hedge: HedgePolicy | None = None,
    retry: RetryPolicy | None = None,
    deadline_ms: float | None = None,
    telemetry: Telemetry | None = None,
) -> RobustClusterResult:
    """A fan-out experiment with faults and tail-taming mitigations.

    Extends :func:`simulate_cluster` with the robustness stack:

    1. **Faults** — ``fault_plan_factory(i)`` supplies a deterministic
       :class:`~repro.faults.plan.FaultPlan` per server (primaries get
       indices ``0..num_servers-1``, replicas ``num_servers..2N-1``),
       so stragglers and stalls differ across shards but reproduce
       bit-for-bit under the same seed.
    2. **Hedging** — after the resolved delay, every still-unanswered
       shard request is duplicated to a *replica server*, simulated
       with the real correlated arrival process of the hedges it
       receives; the first response wins (Vulimiri et al.).  Replica
       load is therefore honest: a delay low enough to duplicate most
       traffic congests the replicas, which is exactly the
       Poloczek/Ciucu overload regime.
    3. **Timeout + retry** — shards still unanswered at the timeout
       re-send under exponential backoff.  Retry attempt latencies are
       resampled deterministically from that server's observed latency
       marginal (the retried request re-rolls its replica/queue luck);
       retry load is *not* fed back into queues, an approximation valid
       at the low retry rates the timeout should produce.
    4. **Deadline** — a query stops waiting at ``deadline_ms`` and
       answers from the shards that made it; quality is the fraction
       that did.

    With a resolved :class:`~repro.telemetry.Telemetry` pipeline the
    run emits primary-shard spans on the ``"cluster"`` track, hedge
    spans on ``"cluster.hedge"``, hedge/retry/deadline-miss counters,
    and latency + quality histograms.
    """
    if num_servers < 1:
        raise ConfigurationError(f"num_servers must be >= 1: {num_servers}")
    if num_queries < 1:
        raise ConfigurationError(f"num_queries must be >= 1: {num_queries}")
    if deadline_ms is not None and deadline_ms <= 0:
        raise ConfigurationError(f"deadline_ms must be positive: {deadline_ms}")
    telemetry = resolve_telemetry(telemetry)
    rng = np.random.default_rng(seed)
    times = process.times_ms(num_queries, rng)

    def run_server(arrivals: list[ArrivalSpec], plan_index: int):
        plan = fault_plan_factory(plan_index) if fault_plan_factory else None
        return simulate(
            arrivals,
            scheduler_factory(),
            cores=cores,
            quantum_ms=quantum_ms,
            spin_fraction=spin_fraction,
            fault_plan=plan,
            telemetry=_SUPPRESS_INNER,
        )

    # --- primaries: every server sees every query at its arrival time.
    per_server: list[np.ndarray] = []
    fault_stats: list[dict] = []
    for server in range(num_servers):
        demands = workload.sampler(rng, num_queries)
        arrivals = [
            ArrivalSpec(
                time_ms=float(t),
                seq_ms=float(d),
                speedup=workload.speedup_model.curve_for(float(d)),
                tag=query_index,
            )
            for query_index, (t, d) in enumerate(zip(times, demands))
        ]
        result = run_server(arrivals, server)
        latencies = np.empty(num_queries)
        for record in result.records:
            latencies[record.tag] = record.latency_ms
        per_server.append(latencies)
        fault_stats.append(result.fault_stats.as_dict())
        if telemetry is not None:
            _record_shard_spans(telemetry, server, result)

    effective = np.stack(per_server).copy()  # (servers, queries)
    # Redundancy wait per (server, query): the winning attempt's issue
    # offset — how long this shard's answer waited on hedge/retry
    # machinery before the duplicate that won was even sent.
    redundancy = np.zeros_like(effective)

    # --- hedging: late shards duplicate to a per-shard replica server.
    hedge_delay: float | None = None
    hedges_sent = 0
    if hedge is not None:
        hedge_delay = hedge.resolve_delay_ms(np.concatenate(per_server))
        for server in range(num_servers):
            hedged = [
                q for q in range(num_queries) if per_server[server][q] > hedge_delay
            ]
            if not hedged:
                continue
            replica_demands = workload.sampler(rng, len(hedged))
            replica_arrivals = [
                ArrivalSpec(
                    time_ms=float(times[q]) + hedge_delay,
                    seq_ms=float(d),
                    speedup=workload.speedup_model.curve_for(float(d)),
                    tag=q,
                )
                for q, d in zip(hedged, replica_demands)
            ]
            replica = run_server(replica_arrivals, num_servers + server)
            hedges_sent += len(hedged)
            for record in replica.records:
                q = record.tag
                hedged_total = hedge_delay + record.latency_ms
                if hedged_total < effective[server][q]:
                    effective[server][q] = hedged_total
                    redundancy[server][q] = hedge_delay
                if telemetry is not None:
                    # Hedges get their own track: they start mid-query,
                    # so nesting them under the primary shard span would
                    # be an improper partial overlap.
                    telemetry.tracer.complete(
                        f"hedge{server}",
                        float(times[q]) + hedge_delay,
                        float(times[q]) + hedge_delay + record.latency_ms,
                        track="cluster.hedge",
                        lane=int(q),
                        server=server,
                        won=bool(
                            hedge_delay + record.latency_ms < per_server[server][q]
                        ),
                    )

    # --- timeout + retry with exponential backoff.
    retries_sent = 0
    if retry is not None:
        retry_rng = np.random.default_rng([seed, 0x5E771E5])
        for server in range(num_servers):
            marginal = per_server[server]
            for q in range(num_queries):
                first = float(effective[server][q])
                if first <= retry.timeout_ms:
                    continue
                redraws = retry_rng.choice(marginal, size=retry.max_retries)
                resolution = resolve_retries([first, *redraws], retry)
                effective[server][q] = resolution.latency_ms
                retries_sent += resolution.retries
                if resolution.winner > 0:
                    # A retry won: the shard's redundancy wait is the
                    # backoff time, superseding any hedge wait baked
                    # into the (losing) original attempt.
                    redundancy[server][q] = resolution.redundancy_wait_ms

    # --- deadline: partial aggregation + answer quality.
    raw = effective.max(axis=0)
    # Attribution: each query's latency is set by its slowest shard;
    # that shard's redundancy wait is the query's redundancy wait.
    slowest_shard = effective.argmax(axis=0)
    query_redundancy = redundancy[slowest_shard, np.arange(num_queries)]
    if deadline_ms is not None:
        quality = (effective <= deadline_ms).mean(axis=0)
        query_latencies = np.minimum(raw, deadline_ms)
    else:
        quality = np.ones(num_queries)
        query_latencies = raw

    if telemetry is not None:
        metrics = telemetry.metrics
        metrics.counter("cluster.queries").inc(num_queries)
        metrics.counter("cluster.hedges").inc(hedges_sent)
        metrics.counter("cluster.retries").inc(retries_sent)
        if deadline_ms is not None:
            metrics.counter("cluster.deadline_misses").inc(
                int(np.sum(raw > deadline_ms))
            )
        latency_hist = metrics.histogram("cluster.query_latency_ms")
        quality_hist = metrics.histogram("cluster.quality")
        # cluster.attr.*: the two-way additive split of each query's
        # (uncapped) latency — the slowest shard's own attempt latency
        # plus the redundancy wait in front of it.
        wait_hist = metrics.histogram("cluster.attr.redundancy_wait_ms")
        shard_hist = metrics.histogram("cluster.attr.slowest_shard_ms")
        for latency, answered, total, wait in zip(
            query_latencies, quality, raw, query_redundancy
        ):
            latency_hist.record(float(latency))
            quality_hist.record(float(answered))
            wait_hist.record(float(wait))
            shard_hist.record(float(total - wait))

    return RobustClusterResult(
        query_latencies_ms=query_latencies,
        raw_query_latencies_ms=raw,
        quality=quality,
        server_latencies_ms=per_server,
        hedge_delay_ms=hedge_delay,
        hedges_sent=hedges_sent,
        retries_sent=retries_sent,
        server_fault_stats=fault_stats,
        query_redundancy_wait_ms=query_redundancy,
    )
