"""True multi-ISN cluster simulation.

:func:`repro.cluster.aggregator` resamples a measured per-server
latency distribution, which assumes server latencies are independent
across a fan-out query.  In a real cluster they are not: all shards of
one query arrive *simultaneously* at their ISNs, so queueing is
correlated — a burst hits every server at once.  This module runs the
honest experiment: N independent :class:`~repro.sim.engine.Engine`
instances receive the same arrival times (each with its own demand
draw, since shards differ), and each cluster query's latency is the
max over its N shard latencies.

Comparing :func:`simulate_cluster` against the independence
approximation quantifies how much correlated bursts add to the cluster
tail — an effect the paper's per-server analysis abstracts away.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.formulas import weighted_order_statistic
from repro.errors import ConfigurationError
from repro.sim.engine import ArrivalSpec, simulate
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.workload import Workload

__all__ = ["ClusterResult", "simulate_cluster"]


@dataclass
class ClusterResult:
    """Outcome of one cluster simulation."""

    #: Per-query cluster latency: max over shards, arrival order.
    query_latencies_ms: np.ndarray
    #: Per-ISN latency arrays (arrival order), for per-server analysis.
    server_latencies_ms: list[np.ndarray]

    def cluster_tail_ms(self, phi: float) -> float:
        """φ-percentile of the cluster (max-over-shards) latency."""
        lats = self.query_latencies_ms
        return weighted_order_statistic(lats, np.ones_like(lats), phi)

    def server_tail_ms(self, phi: float) -> float:
        """Mean per-server φ-percentile latency."""
        tails = [
            weighted_order_statistic(lats, np.ones_like(lats), phi)
            for lats in self.server_latencies_ms
        ]
        return float(np.mean(tails))


def simulate_cluster(
    scheduler_factory,
    workload: Workload,
    num_servers: int,
    num_queries: int,
    process: ArrivalProcess,
    cores: int,
    quantum_ms: float = 5.0,
    spin_fraction: float = 0.25,
    seed: int = 0,
) -> ClusterResult:
    """Run one fan-out experiment.

    Parameters
    ----------
    scheduler_factory:
        Zero-argument callable producing a fresh scheduler per server
        (engines must not share mutable policy state).
    workload:
        Demand source; each server draws its own shard demands.
    num_servers:
        Fan-out width (ISNs per query).
    process:
        Arrival process for the *cluster* queries; every server sees
        the same arrival instants.
    """
    if num_servers < 1:
        raise ConfigurationError(f"num_servers must be >= 1: {num_servers}")
    if num_queries < 1:
        raise ConfigurationError(f"num_queries must be >= 1: {num_queries}")
    rng = np.random.default_rng(seed)
    times = process.times_ms(num_queries, rng)

    per_server: list[np.ndarray] = []
    for server in range(num_servers):
        demands = workload.sampler(rng, num_queries)
        arrivals = [
            ArrivalSpec(
                time_ms=float(t),
                seq_ms=float(d),
                speedup=workload.speedup_model.curve_for(float(d)),
                tag=query_index,
            )
            for query_index, (t, d) in enumerate(zip(times, demands))
        ]
        result = simulate(
            arrivals,
            scheduler_factory(),
            cores=cores,
            quantum_ms=quantum_ms,
            spin_fraction=spin_fraction,
        )
        latencies = np.empty(num_queries)
        for record in result.records:
            latencies[record.tag] = record.latency_ms
        per_server.append(latencies)

    stacked = np.stack(per_server)
    return ClusterResult(
        query_latencies_ms=stacked.max(axis=0),
        server_latencies_ms=per_server,
    )
