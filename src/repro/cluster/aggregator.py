"""Fan-out aggregation: why per-server tails matter (Section 7).

A Bing query fans out to every index-serving node (ISN) holding a shard
of the index; the aggregator must wait for the slowest ISN, so "a long
latency at any ISN manifests as a slow response".  The paper's rule of
thumb: "assuming the aggregator has 10 ISNs, if we want to process 90%
of user requests within 100 ms, then each ISN needs to reply within 100
ms with probability around 0.99."

Two views of the same math:

* analytically, with independent per-ISN response times,
  ``P(max <= t) = p^n`` — so an overall φ target over ``n`` ISNs needs
  per-ISN percentile ``φ^(1/n)``;
* empirically, :func:`aggregate_latencies` Monte-Carlo-samples the
  per-query max over ``n`` draws from a measured ISN latency sample
  (e.g. a :class:`~repro.sim.metrics.SimulationResult`'s latencies).
"""

from __future__ import annotations

import numpy as np

from repro.core.formulas import weighted_order_statistic
from repro.errors import ConfigurationError

__all__ = [
    "required_per_server_percentile",
    "achieved_cluster_percentile",
    "aggregate_latencies",
    "cluster_tail",
]


def required_per_server_percentile(cluster_phi: float, num_servers: int) -> float:
    """Per-server percentile needed so that ``cluster_phi`` of fan-out
    queries meet the deadline: ``cluster_phi ** (1 / n)``."""
    if not 0.0 < cluster_phi < 1.0:
        raise ConfigurationError(f"cluster_phi must be in (0, 1): {cluster_phi}")
    if num_servers < 1:
        raise ConfigurationError(f"num_servers must be >= 1: {num_servers}")
    return cluster_phi ** (1.0 / num_servers)


def achieved_cluster_percentile(server_phi: float, num_servers: int) -> float:
    """Fraction of fan-out queries whose *every* server meets the
    deadline each server meets with probability ``server_phi``."""
    if not 0.0 < server_phi <= 1.0:
        raise ConfigurationError(f"server_phi must be in (0, 1]: {server_phi}")
    if num_servers < 1:
        raise ConfigurationError(f"num_servers must be >= 1: {num_servers}")
    return server_phi**num_servers


def aggregate_latencies(
    server_latencies_ms: np.ndarray,
    num_servers: int,
    num_queries: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Monte Carlo fan-out: per cluster query, draw one latency per
    server from the measured sample and keep the max (the aggregator
    waits for the slowest shard)."""
    sample = np.asarray(server_latencies_ms, dtype=float)
    if sample.ndim != 1 or len(sample) == 0:
        raise ConfigurationError("need a non-empty 1-D latency sample")
    if num_servers < 1 or num_queries < 1:
        raise ConfigurationError("num_servers and num_queries must be >= 1")
    draws = rng.choice(sample, size=(num_queries, num_servers), replace=True)
    return draws.max(axis=1)


def cluster_tail(
    server_latencies_ms: np.ndarray,
    num_servers: int,
    phi: float,
    rng: np.random.Generator,
    num_queries: int = 20_000,
) -> float:
    """The cluster-level φ-tail latency implied by a measured per-server
    latency distribution under ``num_servers``-way fan-out."""
    maxima = aggregate_latencies(server_latencies_ms, num_servers, num_queries, rng)
    return weighted_order_statistic(maxima, np.ones_like(maxima), phi)
