"""Hedged requests, per-shard timeouts with retry, and deadline quality.

The tail-at-scale toolkit for the fan-out cluster, navigating the
trade-off PAPERS.md documents from both sides: Vulimiri et al. ("Low
Latency via Redundancy") show a duplicate request to a replica cuts the
tail when stragglers dominate, while Poloczek & Ciucu ("Contrasting
Effects of Replication in Parallel Systems") show the same duplicate
*hurts* once the added load pushes servers past saturation.  The
policies here make that trade-off measurable:

* :class:`HedgePolicy` — send a duplicate shard request to a replica
  after a delay (fixed, or a percentile of the primary latency
  marginal — the classic "hedge after p95"), take the first response.
* :class:`RetryPolicy` — per-shard timeout with up to ``max_retries``
  re-sends under exponential backoff; an attempt is only issued while
  the shard is still unanswered at its issue time.
* deadline accounting — a cluster query stops waiting at its deadline
  and answers from the shards that made it; *answer quality* is the
  fraction of shards that did.

The latency arithmetic lives here as pure functions so it is unit
testable independent of the simulator;
:func:`repro.cluster.simulation.simulate_cluster_robust` supplies the
per-attempt latencies from real (simulated) server queues.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "HedgePolicy",
    "RetryPolicy",
    "RetryResolution",
    "hedged_latency",
    "latency_with_retries",
    "resolve_retries",
]


@dataclass(frozen=True)
class HedgePolicy:
    """Duplicate a shard request to a replica after a delay.

    Exactly one of ``delay_ms`` (fixed) or ``delay_percentile``
    (resolved against the primary latency marginal, e.g. 0.95 for
    "hedge after p95") must be given.
    """

    delay_ms: float | None = None
    delay_percentile: float | None = None

    def __post_init__(self) -> None:
        if (self.delay_ms is None) == (self.delay_percentile is None):
            raise ConfigurationError(
                "set exactly one of delay_ms or delay_percentile"
            )
        if self.delay_ms is not None and self.delay_ms < 0:
            raise ConfigurationError(f"delay_ms must be >= 0: {self.delay_ms}")
        if self.delay_percentile is not None and not 0.0 < self.delay_percentile < 1.0:
            raise ConfigurationError(
                f"delay_percentile must be in (0, 1): {self.delay_percentile}"
            )

    def resolve_delay_ms(self, primary_latencies_ms: Sequence[float]) -> float:
        """The concrete hedge delay for a run: fixed, or the configured
        percentile of the observed primary latencies.

        **Empty-sample contract** (see :mod:`repro.telemetry.histogram`):
        this is a *control* surface — the adaptive replication
        controller resolves delays against a rolling latency window
        that is legitimately empty at cold start — so a percentile
        over zero samples returns ``math.nan`` rather than raising.
        Callers must treat ``nan`` as "no delay resolvable: do not
        hedge yet" (``nan`` comparisons are False, so a
        ``latency > delay`` hedge trigger is naturally inert).
        """
        if self.delay_ms is not None:
            return self.delay_ms
        if len(primary_latencies_ms) == 0:
            return math.nan
        return float(
            np.quantile(np.asarray(primary_latencies_ms, dtype=float), self.delay_percentile)
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Re-send a shard request when it has not answered by a timeout.

    Attempt ``k`` (0-based; attempt 0 is the original) gets timeout
    ``timeout_ms * backoff**k``; a retry is issued only if the shard is
    still unanswered when its predecessor's timeout expires.  In-flight
    attempts are never cancelled — the shard answers at the earliest
    completion among issued attempts.

    ``max_retries=0`` is a valid policy: *timeout accounting only*.
    Timeouts are still tracked (deadline math, metrics) but nothing is
    ever re-sent — the knob the adaptive replication controller dials
    to during brownout, when any duplicate would feed an overload, so
    redundancy can be turned all the way off without a type switch.
    """

    timeout_ms: float
    max_retries: int = 1
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if self.timeout_ms <= 0:
            raise ConfigurationError(f"timeout_ms must be positive: {self.timeout_ms}")
        if self.max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0: {self.max_retries}")
        if self.backoff < 1.0:
            raise ConfigurationError(f"backoff must be >= 1: {self.backoff}")


def hedged_latency(
    primary_ms: float, replica_ms: float, delay_ms: float
) -> tuple[float, bool]:
    """Effective shard latency under hedging.

    Returns ``(latency, hedge_sent)``: if the primary answers within
    the hedge delay no duplicate is sent; otherwise the duplicate goes
    to the replica at ``delay_ms`` and the first response wins.
    """
    if primary_ms <= delay_ms:
        return primary_ms, False
    return min(primary_ms, delay_ms + replica_ms), True


@dataclass(frozen=True)
class RetryResolution:
    """How one shard request resolved under a :class:`RetryPolicy`.

    The attribution view of a retry ladder: the shard's effective
    latency splits additively as ``redundancy_wait_ms`` (the winning
    attempt's issue offset — time spent waiting for timeouts to fire)
    plus the winning attempt's own latency.
    """

    latency_ms: float
    #: Retry attempts actually issued (0 = the original answered first).
    retries: int
    #: Index of the attempt that answered first (0 = original).
    winner: int
    #: The winner's issue offset: 0.0 when the original wins, else the
    #: cumulative backoff time before the winning retry went out.
    redundancy_wait_ms: float


def resolve_retries(
    attempt_latencies_ms: Sequence[float], policy: RetryPolicy
) -> RetryResolution:
    """Resolve a retry ladder in full detail.

    ``attempt_latencies_ms[0]`` is the original attempt's latency
    (possibly already hedged); subsequent entries are what each retry
    *would* take if issued.
    """
    if len(attempt_latencies_ms) == 0:
        raise ConfigurationError("need at least the original attempt's latency")
    issue = 0.0
    timeout = policy.timeout_ms
    best = issue + float(attempt_latencies_ms[0])
    winner = 0
    winner_issue = 0.0
    retries = 0
    budget = min(policy.max_retries, len(attempt_latencies_ms) - 1)
    for k in range(1, budget + 1):
        next_issue = issue + timeout
        if best <= next_issue:
            break  # answered before this retry would fire
        issue = next_issue
        timeout *= policy.backoff
        retries += 1
        arrival = issue + float(attempt_latencies_ms[k])
        if arrival < best:
            best = arrival
            winner = k
            winner_issue = issue
    return RetryResolution(
        latency_ms=best,
        retries=retries,
        winner=winner,
        redundancy_wait_ms=winner_issue,
    )


def latency_with_retries(
    attempt_latencies_ms: Sequence[float], policy: RetryPolicy
) -> tuple[float, int]:
    """Effective shard latency under timeout + exponential backoff.

    The 2-tuple view of :func:`resolve_retries`: returns
    ``(latency, retries_issued)``.
    """
    resolution = resolve_retries(attempt_latencies_ms, policy)
    return resolution.latency_ms, resolution.retries
