"""Load-aware redundancy control: hedging/retry that survives overload.

The static :class:`~repro.cluster.hedging.HedgePolicy` and
:class:`~repro.cluster.hedging.RetryPolicy` knobs encode a bet about
load.  PAPERS.md documents both sides of that bet: Vulimiri et al.
("Low Latency via Redundancy") show duplicates cut the tail while
spare capacity absorbs them, and Poloczek & Ciucu ("Contrasting
Effects of Replication in Parallel Systems") prove the *same*
duplicates destabilize the system past a utilization threshold — the
latency-vs-load curve of a static hedge is non-monotone, helping at
low load and melting down past the knee.

:class:`AdaptiveReplicationController` closes the loop.  It watches
the completion stream the way :class:`~repro.observe.slo.SLOMonitor`
does (indeed it reuses one: short/long burn-rate windows, drift-safe
NaN contract) plus a capacity signal — busy core-milliseconds per
control window — and dials redundancy through four modes of
decreasing aggressiveness:

``eager``
    Low load.  Hedge after an aggressive latency percentile (large
    hedge budget), retry early with a gentle backoff.
``steady``
    Moderate load.  Hedge after a conservative percentile (classic
    "hedge after p95"), single retry.
``hedge_shed``
    Approaching the instability threshold.  Hedges are shed *first*
    (each hedge duplicates a whole shard request; a retry only fires
    on the residual tail), retries survive with a long timeout.
``brownout``
    Past the threshold, or the SLO error budget is burning at page
    rate.  All redundancy off: the retry policy is dialed to
    ``max_retries=0`` (timeout accounting only — see
    :class:`~repro.cluster.hedging.RetryPolicy`), the hedge budget is
    zero.  Every duplicate would now *add* load to a system already
    beyond saturation (Poloczek & Ciucu's regime), so the only
    winning move is not to play.

**Hysteresis.**  Escalation (toward ``brownout``) is immediate — an
overloaded system must stop hedging *now*.  Recovery is deliberately
sluggish: utilization must fall below the entry threshold minus
``hysteresis`` for ``hold_windows`` consecutive windows, and the
controller then steps down a single mode per qualifying window.  The
overload→underload flip therefore produces one clean transition
sequence instead of flapping around the threshold (where queues are
still draining and a premature hedge storm would re-tip the system).

**Determinism.**  The controller is clock-free and allocation-free of
ambient state: callers pass timestamps (virtual ms in the simulator,
tracer-clock ms in the live runtime), every decision is a pure
function of the observation stream, and the full transition history is
recorded — the same seed replays the same mode sequence bit for bit.

Telemetry (``cluster.adaptive.*``): mode and utilization gauges, a
hedge-budget gauge, window/transition/brownout counters — enough for
``repro analyze`` to attribute tail latency to controller decisions.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.cluster.hedging import RetryPolicy
from repro.errors import ConfigurationError
from repro.observe.slo import SLOMonitor, SLOStatus, SLOTarget
from repro.telemetry import Telemetry, resolve_telemetry

__all__ = [
    "MODES",
    "ControllerConfig",
    "ReplicationDecision",
    "ModeTransition",
    "AdaptiveReplicationController",
]

#: Modes ordered by decreasing redundancy aggressiveness.  Escalation
#: moves right (toward ``brownout``), recovery moves left one step at
#: a time.
MODES: tuple[str, ...] = ("eager", "steady", "hedge_shed", "brownout")


@dataclass(frozen=True)
class ControllerConfig:
    """Thresholds and knobs of the adaptive replication controller.

    Parameters
    ----------
    window_ms:
        Control-window span.  Observations aggregate per window; the
        state machine steps once per window close.
    cores:
        Per-server capacity used to normalize busy time into
        utilization (``busy_ms / (cores * window_ms)``).  Offered
        utilization may exceed 1.0 under overload — that is the
        signal, not an error.
    steady_at / hedge_shed_at / brownout_at:
        Utilization *entry* thresholds of the three non-eager modes
        (strictly increasing).  ``brownout_at`` is the instability
        threshold: past it, redundancy amplifies overload.
    hysteresis:
        Recovery margin: to leave a mode, utilization must fall below
        its entry threshold minus this margin.
    hold_windows:
        Consecutive qualifying windows required before each one-step
        recovery transition.
    hedge_percentile:
        Per-mode hedge-delay percentile (absent = hedging disabled in
        that mode).  The hedge budget is ``1 - percentile``: the
        fraction of shard requests allowed to duplicate.
    max_retries:
        Per-mode retry ceiling; ``brownout`` maps to 0 (timeout
        accounting only, never a re-send).
    retry_timeout_percentile:
        Retry timeouts resolve to this percentile of the rolling
        latency buffer (floored at ``retry_timeout_floor_ms``).
    backoff:
        Exponential-backoff base shared by all resolved retry
        policies.
    utilization_smoothing:
        EWMA weight of *history* in the utilization signal:
        ``u = s * u_prev + (1 - s) * window``.  0 (default) uses each
        window raw.  Heavy-tailed demand makes single-window busy time
        spiky — one tail request can fill a window on its own — so a
        moderate ``s`` (e.g. 0.5) keeps one burst from slamming the
        mode to brownout while sustained overload still crosses the
        threshold within a few windows.
    breach_floor:
        Minimum mode (by :data:`MODES` index name) while the SLO
        monitor reports a breach — both burn windows over budget
        already means redundancy is not paying for itself.
    brownout_burn_rate:
        Long-window burn rate at or above which the controller jumps
        straight to ``brownout`` regardless of utilization (the error
        budget is incinerating; capacity math is moot).
    latency_buffer:
        Rolling completion-latency samples retained for percentile
        resolution (hedge delays, retry timeouts).
    """

    window_ms: float = 250.0
    cores: int = 1
    steady_at: float = 0.45
    hedge_shed_at: float = 0.70
    brownout_at: float = 0.90
    hysteresis: float = 0.08
    hold_windows: int = 2
    hedge_percentile: Mapping[str, float] = field(
        default_factory=lambda: {"eager": 0.80, "steady": 0.95}
    )
    max_retries: Mapping[str, int] = field(
        default_factory=lambda: {
            "eager": 2, "steady": 1, "hedge_shed": 1, "brownout": 0,
        }
    )
    retry_timeout_percentile: float = 0.95
    retry_timeout_floor_ms: float = 1.0
    backoff: float = 2.0
    utilization_smoothing: float = 0.0
    breach_floor: str = "hedge_shed"
    brownout_burn_rate: float = 4.0
    latency_buffer: int = 512

    def __post_init__(self) -> None:
        if self.window_ms <= 0:
            raise ConfigurationError(f"window_ms must be positive: {self.window_ms}")
        if self.cores < 1:
            raise ConfigurationError(f"cores must be >= 1: {self.cores}")
        if not 0.0 < self.steady_at < self.hedge_shed_at < self.brownout_at:
            raise ConfigurationError(
                "mode thresholds must satisfy 0 < steady_at < hedge_shed_at "
                f"< brownout_at: {self.steady_at}, {self.hedge_shed_at}, "
                f"{self.brownout_at}"
            )
        if not 0.0 <= self.hysteresis < self.steady_at:
            raise ConfigurationError(
                f"hysteresis must be in [0, steady_at): {self.hysteresis}"
            )
        if self.hold_windows < 1:
            raise ConfigurationError(
                f"hold_windows must be >= 1: {self.hold_windows}"
            )
        for mode, p in self.hedge_percentile.items():
            if mode not in MODES:
                raise ConfigurationError(f"unknown mode in hedge_percentile: {mode}")
            if not 0.0 < p < 1.0:
                raise ConfigurationError(
                    f"hedge percentile must be in (0, 1): {mode}={p}"
                )
        for mode in MODES:
            if mode not in self.max_retries:
                raise ConfigurationError(f"max_retries missing mode: {mode}")
            if self.max_retries[mode] < 0:
                raise ConfigurationError(
                    f"max_retries must be >= 0: {mode}={self.max_retries[mode]}"
                )
        if not 0.0 < self.retry_timeout_percentile < 1.0:
            raise ConfigurationError(
                "retry_timeout_percentile must be in (0, 1): "
                f"{self.retry_timeout_percentile}"
            )
        if self.retry_timeout_floor_ms <= 0:
            raise ConfigurationError(
                f"retry_timeout_floor_ms must be positive: {self.retry_timeout_floor_ms}"
            )
        if self.backoff < 1.0:
            raise ConfigurationError(f"backoff must be >= 1: {self.backoff}")
        if not 0.0 <= self.utilization_smoothing < 1.0:
            raise ConfigurationError(
                f"utilization_smoothing must be in [0, 1): "
                f"{self.utilization_smoothing}"
            )
        if self.breach_floor not in MODES:
            raise ConfigurationError(f"unknown breach_floor: {self.breach_floor}")
        if self.brownout_burn_rate <= 0:
            raise ConfigurationError(
                f"brownout_burn_rate must be positive: {self.brownout_burn_rate}"
            )
        if self.latency_buffer < 1:
            raise ConfigurationError(
                f"latency_buffer must be >= 1: {self.latency_buffer}"
            )


@dataclass(frozen=True)
class ReplicationDecision:
    """The redundancy knobs in force for one control window.

    ``hedge_delay_ms is None`` means no hedging (mode forbids it, or
    the latency buffer is still cold); ``retry is None`` likewise.  A
    ``brownout`` retry policy carries ``max_retries=0``: timeouts are
    still accounted, nothing is ever re-sent.
    """

    mode: str
    window: int
    at_ms: float
    hedge_delay_ms: float | None = None
    hedge_percentile: float | None = None
    retry: RetryPolicy | None = None

    @property
    def hedge_budget(self) -> float:
        """Fraction of shard requests allowed to duplicate (0 = none)."""
        if self.hedge_delay_ms is None or self.hedge_percentile is None:
            return 0.0
        return 1.0 - self.hedge_percentile

    @property
    def redundancy_enabled(self) -> bool:
        """Whether any duplicate (hedge or retry re-send) may be issued."""
        return self.hedge_delay_ms is not None or (
            self.retry is not None and self.retry.max_retries > 0
        )


@dataclass(frozen=True)
class ModeTransition:
    """One state-machine edge, recorded for determinism audits."""

    at_ms: float
    window: int
    from_mode: str
    to_mode: str
    #: "utilization" | "burn_rate" | "breach" | "recovery"
    reason: str
    utilization: float

    def as_tuple(self) -> tuple:
        """Hashable view (bit-identical comparison across runs)."""
        return (
            self.at_ms, self.window, self.from_mode, self.to_mode,
            self.reason, self.utilization,
        )


class AdaptiveReplicationController:
    """Dial hedging/retry aggressiveness from live load and SLO burn.

    Feed every completion through :meth:`observe`; read the current
    knobs from :attr:`decision`.  Window boundaries are crossed by the
    observation timestamps themselves, so the controller is
    deterministic under replay and never consults a wall clock.  The
    window grid anchors at the *first* observation's timestamp — the
    timebase may be virtual ms, epoch ms, or a monotonic counter, and
    an idle span before traffic arrives closes no windows.

    Parameters
    ----------
    config:
        Thresholds and knobs (:class:`ControllerConfig`).
    slo:
        The SLO signal to reuse.  Pass the same monitor the serving
        layer already owns (:class:`~repro.runtime.server.LiveFMServer`
        does exactly this) so degradation and redundancy shedding fire
        off one view of the error budget.  ``None`` builds a private
        p99 <= 250 ms monitor with windows matched to ``window_ms``.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry`; resolved against
        the ambient pipeline like every other instrumented component.
    """

    def __init__(
        self,
        config: ControllerConfig | None = None,
        slo: SLOMonitor | None = None,
        telemetry: Telemetry | None = None,
    ) -> None:
        self.config = config or ControllerConfig()
        if slo is None:
            window = self.config.window_ms
            slo = SLOMonitor(
                SLOTarget(percentile=0.99, threshold_ms=250.0),
                short_window_ms=2 * window,
                long_window_ms=8 * window,
                min_samples=10,
            )
        self.slo = slo
        self.telemetry = resolve_telemetry(telemetry)
        self.transitions: list[ModeTransition] = []
        self.reset()

    # ------------------------------------------------------------------
    # Observation stream
    # ------------------------------------------------------------------
    def observe(
        self,
        latency_ms: float,
        at_ms: float,
        busy_ms: float = 0.0,
        queue_depth: float = 0.0,
    ) -> None:
        """Feed one completion (timestamps must be non-decreasing).

        ``busy_ms`` is the core-milliseconds this completion consumed
        (per server, averaged over shards at the cluster layer);
        ``queue_depth`` the in-system count sampled alongside it.
        Crossing a window boundary closes the window and steps the
        state machine, so :attr:`decision` may change across this call.
        """
        if latency_ms < 0:
            raise ConfigurationError(f"latency must be >= 0: {latency_ms}")
        if busy_ms < 0:
            raise ConfigurationError(f"busy_ms must be >= 0: {busy_ms}")
        if self._anchor_ms is None:
            # Anchor the window grid at first traffic: timebases with a
            # large origin (wall clocks) must not replay an idle eon.
            self._anchor_ms = at_ms
            self._window_end = at_ms + self.config.window_ms
        self._roll_to(at_ms)
        self.slo.observe(latency_ms, at_ms=at_ms)
        self._latencies.append(latency_ms)
        self._busy_ms += busy_ms
        self._depth_sum += queue_depth
        self._samples += 1

    def flush(self, at_ms: float) -> None:
        """Close every window ending at or before ``at_ms``, then fold
        any remaining partial window into one final step (end of run)."""
        if self._anchor_ms is None:
            return  # never observed anything: nothing to fold
        self._roll_to(at_ms)
        if self._samples:
            self._close_window(self._window_end)
            self._window_end += self.config.window_ms

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    @property
    def mode(self) -> str:
        """Current mode (one of :data:`MODES`)."""
        return self._mode

    @property
    def decision(self) -> ReplicationDecision:
        """Knobs in force right now (updated at window closes)."""
        return self._decision

    @property
    def windows_observed(self) -> int:
        """Control windows closed so far."""
        return self._windows

    @property
    def brownout_entries(self) -> int:
        """Times the controller entered ``brownout``."""
        return sum(1 for t in self.transitions if t.to_mode == "brownout")

    @property
    def last_utilization(self) -> float:
        """Utilization driving the last mode decision — EWMA-smoothed
        when ``utilization_smoothing`` is set (``nan`` before any
        window closes)."""
        return self._last_utilization

    def transition_signature(self) -> tuple[tuple, ...]:
        """The full transition history as plain tuples — the object two
        runs of the same seed must reproduce bit for bit."""
        return tuple(t.as_tuple() for t in self.transitions)

    def reset(self) -> None:
        """Forget all state (between runs); config is retained."""
        self._mode = "steady"
        self._windows = 0
        self._anchor_ms: float | None = None
        self._window_end = self.config.window_ms
        self._busy_ms = 0.0
        self._depth_sum = 0.0
        self._samples = 0
        self._hold = 0
        self._last_utilization = math.nan
        self._util_smoothed = math.nan
        self._latencies: deque[float] = deque(maxlen=self.config.latency_buffer)
        self.transitions.clear()
        self.slo.reset()
        self._decision = ReplicationDecision(
            mode=self._mode, window=0, at_ms=0.0
        )

    # ------------------------------------------------------------------
    # State machine
    # ------------------------------------------------------------------
    def _roll_to(self, at_ms: float) -> None:
        while at_ms >= self._window_end:
            self._close_window(self._window_end)
            self._window_end += self.config.window_ms

    def _close_window(self, end_ms: float) -> None:
        cfg = self.config
        utilization = self._busy_ms / (cfg.cores * cfg.window_ms)
        if cfg.utilization_smoothing > 0.0:
            if not math.isnan(self._util_smoothed):
                utilization = (
                    cfg.utilization_smoothing * self._util_smoothed
                    + (1.0 - cfg.utilization_smoothing) * utilization
                )
            self._util_smoothed = utilization
        status = self.slo.status(at_ms=end_ms)
        self._step(utilization, status, end_ms)
        self._last_utilization = utilization
        self._windows += 1
        self._resolve_decision(end_ms)
        self._export(utilization)
        self._busy_ms = 0.0
        self._depth_sum = 0.0
        self._samples = 0

    def _target_mode(
        self, utilization: float, status: SLOStatus, margin: float
    ) -> tuple[str, str]:
        """(target mode, reason) under entry thresholds minus ``margin``."""
        cfg = self.config
        if utilization >= cfg.brownout_at - margin:
            target = "brownout"
        elif utilization >= cfg.hedge_shed_at - margin:
            target = "hedge_shed"
        elif utilization >= cfg.steady_at - margin:
            target = "steady"
        else:
            target = "eager"
        reason = "utilization"
        # NaN burn rates compare False: cold/empty windows never escalate.
        if status.long_burn_rate >= cfg.brownout_burn_rate:
            if MODES.index("brownout") > MODES.index(target):
                target, reason = "brownout", "burn_rate"
        elif status.breached:
            if MODES.index(cfg.breach_floor) > MODES.index(target):
                target, reason = cfg.breach_floor, "breach"
        return target, reason

    def _step(self, utilization: float, status: SLOStatus, at_ms: float) -> None:
        current = MODES.index(self._mode)
        target, reason = self._target_mode(utilization, status, margin=0.0)
        if MODES.index(target) > current:
            # Escalate immediately — past the threshold every duplicate
            # makes the overload worse.
            self._transition(target, reason, utilization, at_ms)
            self._hold = 0
            return
        # Recovery is hysteretic: qualify against thresholds lowered by
        # the hysteresis margin, hold for hold_windows, step down once.
        relaxed, _ = self._target_mode(utilization, status, margin=self.config.hysteresis)
        if MODES.index(relaxed) < current:
            self._hold += 1
            if self._hold >= self.config.hold_windows:
                self._transition(MODES[current - 1], "recovery", utilization, at_ms)
                self._hold = 0
        else:
            self._hold = 0

    def _transition(
        self, to_mode: str, reason: str, utilization: float, at_ms: float
    ) -> None:
        transition = ModeTransition(
            at_ms=at_ms,
            window=self._windows,
            from_mode=self._mode,
            to_mode=to_mode,
            reason=reason,
            utilization=utilization,
        )
        self.transitions.append(transition)
        self._mode = to_mode
        telemetry = self.telemetry
        if telemetry is not None:
            telemetry.metrics.counter("cluster.adaptive.mode_transitions").inc()
            if to_mode == "brownout":
                telemetry.metrics.counter("cluster.adaptive.brownouts").inc()
            # Mode flips are first-class events on the observability
            # stream (DESIGN.md §13): `repro top` replays them onto the
            # same windows as the completions they shaped.
            telemetry.tracer.instant(
                "observe.event",
                track="observe",
                at_ms=at_ms,
                kind="mode_transition",
                from_mode=transition.from_mode,
                to_mode=to_mode,
                reason=reason,
                utilization=utilization,
            )

    def _resolve_decision(self, at_ms: float) -> None:
        cfg = self.config
        mode = self._mode
        samples = (
            np.asarray(self._latencies, dtype=float) if self._latencies else None
        )
        percentile = cfg.hedge_percentile.get(mode)
        delay: float | None = None
        if percentile is not None and samples is not None:
            delay = float(np.quantile(samples, percentile))
        retry: RetryPolicy | None = None
        if samples is not None:
            timeout = max(
                cfg.retry_timeout_floor_ms,
                float(np.quantile(samples, cfg.retry_timeout_percentile)),
            )
            retry = RetryPolicy(
                timeout_ms=timeout,
                max_retries=cfg.max_retries[mode],
                backoff=cfg.backoff,
            )
        self._decision = ReplicationDecision(
            mode=mode,
            window=self._windows,
            at_ms=at_ms,
            hedge_delay_ms=delay,
            hedge_percentile=percentile if delay is not None else None,
            retry=retry,
        )

    def _export(self, utilization: float) -> None:
        telemetry = self.telemetry
        if telemetry is None:
            return
        gauge = telemetry.metrics.gauge
        gauge("cluster.adaptive.utilization").set(utilization)
        gauge("cluster.adaptive.hedge_budget").set(self._decision.hedge_budget)
        gauge("cluster.adaptive.mode").set(float(MODES.index(self._mode)))
        telemetry.metrics.counter("cluster.adaptive.windows").inc()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AdaptiveReplicationController(mode={self._mode!r}, "
            f"windows={self._windows}, transitions={len(self.transitions)})"
        )
