"""Cluster-level fan-out/aggregation analysis (the Section 7 motivation)."""

from repro.cluster.adaptive import (
    AdaptiveReplicationController,
    ControllerConfig,
    ModeTransition,
    ReplicationDecision,
)
from repro.cluster.aggregator import (
    achieved_cluster_percentile,
    aggregate_latencies,
    cluster_tail,
    required_per_server_percentile,
)
from repro.cluster.hedging import (
    HedgePolicy,
    RetryPolicy,
    hedged_latency,
    latency_with_retries,
)
from repro.cluster.simulation import (
    ClusterResult,
    RobustClusterResult,
    simulate_cluster,
    simulate_cluster_robust,
)

__all__ = [
    "AdaptiveReplicationController",
    "ClusterResult",
    "ControllerConfig",
    "HedgePolicy",
    "ModeTransition",
    "ReplicationDecision",
    "RetryPolicy",
    "RobustClusterResult",
    "achieved_cluster_percentile",
    "aggregate_latencies",
    "cluster_tail",
    "hedged_latency",
    "latency_with_retries",
    "required_per_server_percentile",
    "simulate_cluster",
    "simulate_cluster_robust",
]
