"""Cluster-level fan-out/aggregation analysis (the Section 7 motivation)."""

from repro.cluster.aggregator import (
    achieved_cluster_percentile,
    aggregate_latencies,
    cluster_tail,
    required_per_server_percentile,
)
from repro.cluster.simulation import ClusterResult, simulate_cluster

__all__ = [
    "ClusterResult",
    "achieved_cluster_percentile",
    "aggregate_latencies",
    "cluster_tail",
    "required_per_server_percentile",
    "simulate_cluster",
]
