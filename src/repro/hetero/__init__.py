"""Heterogeneous core pools and energy accounting for the FM simulator.

Generalizes the engine from ``N`` identical cores to typed pools
(big/little, optional DVFS states) with a deterministic per-pool
energy accumulator.  See DESIGN.md §12.
"""

from repro.hetero.energy import EnergyReport, PoolEnergy
from repro.hetero.pools import CorePool, DVFSState, Topology

__all__ = [
    "CorePool",
    "DVFSState",
    "Topology",
    "PoolEnergy",
    "EnergyReport",
]
