"""Typed core pools: the heterogeneous-silicon substrate model.

The paper's simulator assumes ``N`` identical cores; modern interactive
services run on big/little multicores where the parallelism-vs-tail
tradeoff is also an energy tradeoff (Hurry-up, Nishtala et al. — see
PAPERS.md).  A :class:`Topology` is an ordered list of
:class:`CorePool`\\ s, each a set of identical cores with a *speed
multiplier* (work retired per core-millisecond, relative to the 1.0x
reference core) and an active/idle power draw in watts.  A request's
threads live in exactly one pool at a time — the Hurry-up execution
model, where a query runs on the big or the little cluster and
*migrates* between them — and processor sharing applies within each
pool independently.

Optional :class:`DVFSState`\\ s model frequency scaling: a pool built
with ``dvfs_states`` and a selected ``dvfs`` name takes that state's
speed and power in place of its nominal values.  States are fixed for a
run (the energy accumulator integrates a piecewise-constant power
model; per-run DVFS selection is the granularity the ``hetero-energy``
experiment sweeps).

The single-pool, speed-1.0 topology is the degenerate case: the engine
must produce **bit-identical** results to the homogeneous engine (and
its frozen ``repro.sim._baseline`` reference) under it — attested in
``tests/hetero/test_hetero_engine.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["DVFSState", "CorePool", "Topology"]


@dataclass(frozen=True)
class DVFSState:
    """One frequency/voltage operating point of a pool."""

    name: str
    speed: float
    active_power_w: float
    idle_power_w: float

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("DVFS state needs a name")
        if self.speed <= 0:
            raise ConfigurationError(f"DVFS speed must be positive: {self.speed}")
        if self.active_power_w < 0 or self.idle_power_w < 0:
            raise ConfigurationError(
                f"DVFS powers must be >= 0: {self.active_power_w}/{self.idle_power_w}"
            )


@dataclass(frozen=True)
class CorePool:
    """A set of identical cores.

    Parameters
    ----------
    name:
        Pool label (``"big"``, ``"little"``), unique within a topology.
    count:
        Physical cores in the pool.
    speed:
        Work retired per core-ms relative to the 1.0x reference core.
    active_power_w:
        Power of one core while occupied by request threads (useful
        work and spin alike burn this).
    idle_power_w:
        Power of one online-but-unoccupied core.
    dvfs_states:
        Optional operating points; selecting one via ``dvfs`` replaces
        the nominal speed/power with the state's.
    dvfs:
        Name of the selected DVFS state (``None`` = nominal values).
    """

    name: str
    count: int
    speed: float = 1.0
    active_power_w: float = 1.0
    idle_power_w: float = 0.1
    dvfs_states: tuple[DVFSState, ...] = field(default_factory=tuple)
    dvfs: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("core pool needs a name")
        if self.count < 1:
            raise ConfigurationError(f"pool {self.name}: count must be >= 1")
        if self.speed <= 0:
            raise ConfigurationError(f"pool {self.name}: speed must be positive")
        if self.active_power_w < 0 or self.idle_power_w < 0:
            raise ConfigurationError(f"pool {self.name}: powers must be >= 0")
        names = [state.name for state in self.dvfs_states]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"pool {self.name}: duplicate DVFS state names")
        if self.dvfs is not None and self.dvfs not in names:
            raise ConfigurationError(
                f"pool {self.name}: unknown DVFS state {self.dvfs!r} "
                f"(have: {names or 'none'})"
            )

    # The *operative* values (DVFS-resolved) the engine and the energy
    # accumulator actually use.
    def _state(self) -> DVFSState | None:
        if self.dvfs is None:
            return None
        for state in self.dvfs_states:
            if state.name == self.dvfs:
                return state
        raise ConfigurationError(  # pragma: no cover - blocked in __post_init__
            f"pool {self.name}: unknown DVFS state {self.dvfs!r}"
        )

    @property
    def effective_speed(self) -> float:
        """Speed multiplier after DVFS resolution."""
        state = self._state()
        return self.speed if state is None else state.speed

    @property
    def effective_active_power_w(self) -> float:
        """Per-core active power after DVFS resolution."""
        state = self._state()
        return self.active_power_w if state is None else state.active_power_w

    @property
    def effective_idle_power_w(self) -> float:
        """Per-core idle power after DVFS resolution."""
        state = self._state()
        return self.idle_power_w if state is None else state.idle_power_w

    def at_dvfs(self, state_name: str | None) -> "CorePool":
        """This pool with a different DVFS state selected."""
        return CorePool(
            name=self.name,
            count=self.count,
            speed=self.speed,
            active_power_w=self.active_power_w,
            idle_power_w=self.idle_power_w,
            dvfs_states=self.dvfs_states,
            dvfs=state_name,
        )


class Topology:
    """An ordered, immutable collection of core pools."""

    def __init__(self, pools) -> None:
        pools = tuple(pools)
        if not pools:
            raise ConfigurationError("topology needs at least one pool")
        names = [pool.name for pool in pools]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate pool names: {names}")
        self.pools: tuple[CorePool, ...] = pools

    # ------------------------------------------------------------------
    @classmethod
    def homogeneous(
        cls,
        cores: int,
        name: str = "pool0",
        speed: float = 1.0,
        active_power_w: float = 1.0,
        idle_power_w: float = 0.1,
    ) -> "Topology":
        """A single-pool topology (the paper's identical-core model)."""
        return cls(
            [
                CorePool(
                    name=name,
                    count=cores,
                    speed=speed,
                    active_power_w=active_power_w,
                    idle_power_w=idle_power_w,
                )
            ]
        )

    @classmethod
    def big_little(
        cls,
        big: int = 4,
        little: int = 12,
        big_speed: float = 2.0,
        little_speed: float = 1.0,
        big_active_power_w: float = 3.5,
        big_idle_power_w: float = 0.6,
        little_active_power_w: float = 1.0,
        little_idle_power_w: float = 0.15,
    ) -> "Topology":
        """The canonical two-pool big/little topology (big pool first)."""
        return cls(
            [
                CorePool(
                    "big", big, big_speed,
                    active_power_w=big_active_power_w,
                    idle_power_w=big_idle_power_w,
                ),
                CorePool(
                    "little", little, little_speed,
                    active_power_w=little_active_power_w,
                    idle_power_w=little_idle_power_w,
                ),
            ]
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.pools)

    def __iter__(self):
        return iter(self.pools)

    def __getitem__(self, index: int) -> CorePool:
        return self.pools[index]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Topology) and self.pools == other.pools

    def __hash__(self) -> int:
        return hash(self.pools)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{p.name}:{p.count}@{p.effective_speed:g}x" for p in self.pools
        )
        return f"Topology({inner})"

    @property
    def total_cores(self) -> int:
        """Physical cores across all pools."""
        return sum(pool.count for pool in self.pools)

    @property
    def is_single_pool(self) -> bool:
        """Whether this is the degenerate (homogeneous) configuration."""
        return len(self.pools) == 1

    def index_of(self, name: str) -> int:
        """Pool index by name."""
        for index, pool in enumerate(self.pools):
            if pool.name == name:
                return index
        raise ConfigurationError(f"no pool named {name!r} in {self!r}")

    @property
    def fastest_pool(self) -> int:
        """Index of the highest-speed pool (first wins ties)."""
        speeds = [pool.effective_speed for pool in self.pools]
        return speeds.index(max(speeds))

    @property
    def slowest_pool(self) -> int:
        """Index of the lowest-speed pool (first wins ties)."""
        speeds = [pool.effective_speed for pool in self.pools]
        return speeds.index(min(speeds))

    def equivalent_capacity(self) -> float:
        """Total speed-weighted core capacity (1.0x core equivalents)."""
        return sum(pool.count * pool.effective_speed for pool in self.pools)
