"""Deterministic per-pool energy accounting.

Energy is integrated alongside the fluid work model: between any two
engine events every request's core share is constant, so power is
piecewise-constant and the integral is exact — no sampling, no clock
reads, bit-reproducible under a fixed seed.  Within each interval of
length ``dt`` ms, a pool's cores split three ways:

* **active** — cores doing useful work: each request contributes
  ``degree_speedup * factor`` core-equivalents (its progress rate
  before the pool speed multiplier is applied).
* **spin** — occupied-but-wasted share: ``share_cores - active``,
  i.e. the spin-fraction overhead of partially-parallel execution plus
  contention losses.  Spin burns active power (the core is busy) but
  retires no work, which is exactly why it matters on an energy axis.
* **idle** — online cores with no thread on them, at idle power.

Accumulation is in watt-milliseconds (numerically = millijoules);
:class:`PoolEnergy` converts to joules at report time.  Stalled
requests (fault injection) hold their cores in spin — the thread is
occupied but making no progress.

The report is attached to :class:`repro.sim.metrics.SimulationResult`
as ``result.energy`` (``None`` for legacy homogeneous runs, keeping
every existing experiment byte-identical).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["PoolEnergy", "EnergyReport"]


@dataclass(frozen=True)
class PoolEnergy:
    """Energy decomposition for one core pool over a run."""

    name: str
    cores: int
    speed: float
    active_j: float
    spin_j: float
    idle_j: float

    @property
    def total_j(self) -> float:
        return self.active_j + self.spin_j + self.idle_j

    def scaled(self, fraction: float) -> "PoolEnergy":
        """This pool's energy scaled by a duration fraction (slicing)."""
        return PoolEnergy(
            name=self.name,
            cores=self.cores,
            speed=self.speed,
            active_j=self.active_j * fraction,
            spin_j=self.spin_j * fraction,
            idle_j=self.idle_j * fraction,
        )


class EnergyReport:
    """Per-pool energy totals for one simulation run."""

    def __init__(self, pools, duration_ms: float) -> None:
        self.pools: tuple[PoolEnergy, ...] = tuple(pools)
        self.duration_ms = duration_ms

    @property
    def total_j(self) -> float:
        return sum(pool.total_j for pool in self.pools)

    @property
    def active_j(self) -> float:
        return sum(pool.active_j for pool in self.pools)

    @property
    def spin_j(self) -> float:
        return sum(pool.spin_j for pool in self.pools)

    @property
    def idle_j(self) -> float:
        return sum(pool.idle_j for pool in self.pools)

    def joules_per_query(self, completed: int) -> float:
        """Total joules divided by completed queries (NaN when none)."""
        if completed <= 0:
            return math.nan
        return self.total_j / completed

    def average_power_w(self) -> float:
        """Mean platform power over the run (NaN for zero duration)."""
        if self.duration_ms <= 0:
            return math.nan
        return self.total_j / (self.duration_ms / 1000.0)

    def pool(self, name: str) -> PoolEnergy:
        for entry in self.pools:
            if entry.name == name:
                return entry
        raise KeyError(f"no pool named {name!r} in energy report")

    def scaled(self, fraction: float) -> "EnergyReport":
        """Report scaled to a fraction of the run (arrival slicing)."""
        return EnergyReport(
            (pool.scaled(fraction) for pool in self.pools),
            duration_ms=self.duration_ms * fraction,
        )

    def as_dict(self) -> dict:
        return {
            "duration_ms": self.duration_ms,
            "total_j": self.total_j,
            "active_j": self.active_j,
            "spin_j": self.spin_j,
            "idle_j": self.idle_j,
            "pools": {
                pool.name: {
                    "cores": pool.cores,
                    "speed": pool.speed,
                    "active_j": pool.active_j,
                    "spin_j": pool.spin_j,
                    "idle_j": pool.idle_j,
                    "total_j": pool.total_j,
                }
                for pool in self.pools
            },
        }

    def __repr__(self) -> str:
        inner = ", ".join(f"{p.name}={p.total_j:.3f}J" for p in self.pools)
        return f"EnergyReport({inner}, total={self.total_j:.3f}J)"
