"""The Lucene-like enterprise-search workload (Section 6, Figure 2).

Calibrated to the paper's published characteristics of the 10K
Wikipedia-search profiling run:

* demand histogram (Figure 2(a)): mode around 90 ms, median 186 ms,
  a long tail reaching ~1000 ms — a body+tail lognormal mixture
  reproduces the mode near 100 ms, a median near 190 ms, and a mean
  near 300 ms, which puts the paper's 45-48 RPS knee at ~90 % CPU
  utilization on 15 cores exactly as Figure 9(c) reports;
* speedup (Figure 2(b)): "almost linear speedup for parallelism degree
  2 ... slightly less effective for 2 to 4 degrees and is not effective
  for 5 or more degrees", with the longest 5 % scaling markedly better
  than the shortest 5 %.

The paper's testbed parameters are exposed as module constants: 15
usable cores (16 minus the load-generating client), ``target_p = 24``,
maximum software parallelism 4, 5 ms scheduling quantum, and the 30-48
RPS load range of the plots.
"""

from __future__ import annotations

from repro.core.speedup import LengthDependentSpeedupModel, TabulatedSpeedup
from repro.workloads.synthetic import DemandDistribution, LognormalComponent
from repro.workloads.workload import Workload

__all__ = [
    "lucene_workload",
    "CORES",
    "TARGET_PARALLELISM",
    "MAX_DEGREE",
    "QUANTUM_MS",
    "SPIN_FRACTION",
    "RPS_RANGE",
]

#: 16-core server minus one core for the client (Section 6.1).
CORES = 15
#: Empirically chosen target hardware parallelism (Section 6.1).
TARGET_PARALLELISM = 24
#: From the scalability analysis: speedup flat at degree 5+ (Figure 2(b)).
MAX_DEGREE = 4
#: Self-scheduling period (Section 6.1).
QUANTUM_MS = 5.0
#: Fraction of lost parallelism that burns CPU rather than blocking
#: (segment skew mostly idles workers; partition/merge work spins).
SPIN_FRACTION = 0.25
#: The load range of all Lucene plots.
RPS_RANGE = tuple(range(30, 49, 2))

#: Figure 2(b) speedup anchors: the shortest 5 % barely scale, the
#: longest 5 % scale nearly linearly to degree 3 and plateau by 5.
_SHORT_CURVE = TabulatedSpeedup([1.0, 1.35, 1.55, 1.65, 1.70, 1.70])
_LONG_CURVE = TabulatedSpeedup([1.0, 1.95, 2.80, 3.40, 3.65, 3.70])

#: Figure 2(a) demand shape: a body around 100-140 ms plus a heavy
#: tail, truncated at 1100 ms (the longest profiled requests).  The
#: mixture reproduces the published mode (~90 ms), median (~190 ms),
#: and the utilization knee of the 30-48 RPS load range.
_DEMAND = DemandDistribution(
    [
        LognormalComponent(0.55, 130.0, 0.55),
        LognormalComponent(0.45, 340.0, 0.70),
    ],
    cap_ms=1100.0,
    floor_ms=5.0,
)


def lucene_workload(
    profile_size: int = 10_000, profile_seed: int = 202_406, max_degree: int = 6
) -> Workload:
    """Build the calibrated Lucene-like workload.

    ``max_degree`` controls how many speedup columns the profile
    carries (6 reproduces the full Figure 2(b) x-axis; experiments use
    the first :data:`MAX_DEGREE` of them).
    """
    model = LengthDependentSpeedupModel(
        short_curve=_SHORT_CURVE,
        long_curve=_LONG_CURVE,
        short_ms=40.0,
        long_ms=700.0,
        max_degree=max_degree,
    )
    return Workload(
        name="lucene",
        sampler=_DEMAND,
        speedup_model=model,
        max_degree=max_degree,
        profile_size=profile_size,
        profile_seed=profile_seed,
    )
