"""The Workload bundle: demand distribution + speedups + sampling.

A :class:`Workload` packages everything an experiment needs: a profiled
:class:`~repro.core.demand.DemandProfile` for the offline phase (the
paper's 10K Lucene / 30K Bing profiling runs) and samplers that generate
fresh request traces for the online experiments (the paper's separate
2K-request Lucene runs / 30K-request Bing replays).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.demand import DemandProfile
from repro.core.speedup import SpeedupModel
from repro.errors import ConfigurationError
from repro.sim.engine import ArrivalSpec
from repro.workloads.arrivals import ArrivalProcess

__all__ = ["Workload"]

DemandSampler = Callable[[np.random.Generator, int], np.ndarray]


@dataclass(frozen=True)
class Workload:
    """A named workload with its demand sampler and speedup model."""

    name: str
    sampler: DemandSampler
    speedup_model: SpeedupModel
    max_degree: int
    profile_size: int = 10_000
    profile_seed: int = 1_000_003

    def __post_init__(self) -> None:
        if self.max_degree < 1:
            raise ConfigurationError(f"max_degree must be >= 1: {self.max_degree}")
        if self.profile_size < 1:
            raise ConfigurationError(f"profile_size must be >= 1: {self.profile_size}")

    @property
    def profile(self) -> DemandProfile:
        """The offline profiling set (deterministic: fixed seed)."""
        return self.sample_profile(self.profile_size, np.random.default_rng(self.profile_seed))

    def sample_profile(self, n: int, rng: np.random.Generator) -> DemandProfile:
        """Draw ``n`` requests as a profile (for offline analysis)."""
        seq = self.sampler(rng, n)
        return DemandProfile.from_model(seq, self.speedup_model, self.max_degree)

    def arrivals(
        self, n: int, process: ArrivalProcess, rng: np.random.Generator
    ) -> list[ArrivalSpec]:
        """Draw ``n`` requests with arrival times from ``process`` —
        the open-loop client's trace for one experiment run."""
        seq = self.sampler(rng, n)
        times = process.times_ms(n, rng)
        return [
            ArrivalSpec(
                time_ms=float(t),
                seq_ms=float(s),
                speedup=self.speedup_model.curve_for(float(s)),
            )
            for t, s in zip(times, seq)
        ]
