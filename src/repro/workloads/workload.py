"""The Workload bundle: demand distribution + speedups + sampling.

A :class:`Workload` packages everything an experiment needs: a profiled
:class:`~repro.core.demand.DemandProfile` for the offline phase (the
paper's 10K Lucene / 30K Bing profiling runs) and samplers that generate
fresh request traces for the online experiments (the paper's separate
2K-request Lucene runs / 30K-request Bing replays).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.core.demand import DemandProfile
from repro.core.speedup import SpeedupModel
from repro.errors import ConfigurationError
from repro.sim.engine import ArrivalSpec
from repro.workloads.arrivals import ArrivalProcess

__all__ = ["Workload"]

DemandSampler = Callable[[np.random.Generator, int], np.ndarray]

#: Fixed internal batch size for streamed demand draws — part of the
#: :meth:`Workload.arrival_stream` seeded universe (changing it changes
#: which trace a seed denotes, like changing the sampler would).
_DEMAND_BLOCK = 8192


@dataclass(frozen=True)
class Workload:
    """A named workload with its demand sampler and speedup model."""

    name: str
    sampler: DemandSampler
    speedup_model: SpeedupModel
    max_degree: int
    profile_size: int = 10_000
    profile_seed: int = 1_000_003

    def __post_init__(self) -> None:
        if self.max_degree < 1:
            raise ConfigurationError(f"max_degree must be >= 1: {self.max_degree}")
        if self.profile_size < 1:
            raise ConfigurationError(f"profile_size must be >= 1: {self.profile_size}")

    @property
    def profile(self) -> DemandProfile:
        """The offline profiling set (deterministic: fixed seed)."""
        return self.sample_profile(self.profile_size, np.random.default_rng(self.profile_seed))

    def sample_profile(self, n: int, rng: np.random.Generator) -> DemandProfile:
        """Draw ``n`` requests as a profile (for offline analysis)."""
        seq = self.sampler(rng, n)
        return DemandProfile.from_model(seq, self.speedup_model, self.max_degree)

    def arrivals(
        self, n: int, process: ArrivalProcess, rng: np.random.Generator
    ) -> list[ArrivalSpec]:
        """Draw ``n`` requests with arrival times from ``process`` —
        the open-loop client's trace for one experiment run."""
        seq = self.sampler(rng, n)
        times = process.times_ms(n, rng)
        return [
            ArrivalSpec(
                time_ms=float(t),
                seq_ms=float(s),
                speedup=self.speedup_model.curve_for(float(s)),
            )
            for t, s in zip(times, seq)
        ]

    def arrival_stream(
        self,
        n: int,
        process: ArrivalProcess,
        seed: int,
        chunk_size: int = 8192,
    ) -> Iterator[ArrivalSpec]:
        """Generate ``n`` arrivals lazily, holding O(``chunk_size``)
        memory — the trace source for million-request streamed runs
        (DESIGN.md §14).

        Demands and arrival times come from two independent generators
        spawned from ``SeedSequence(seed)`` (unlike :meth:`arrivals`,
        which interleaves both draws on one generator — the two APIs
        are separate seeded universes).  The trace is *chunk-size
        invariant*: times, because numpy draws are stream-sequential
        and :meth:`ArrivalProcess.iter_times_ms` carries its exact
        accumulation across chunk boundaries; demands, because they are
        drawn in fixed ``_DEMAND_BLOCK``-sized batches regardless of
        ``chunk_size`` (samplers like the lognormal mixture make
        several size-``n`` draws per call, so the draw *batching* — not
        just the stream order — must be pinned for invariance).
        """
        if n < 1:
            raise ConfigurationError(f"n must be >= 1: {n}")
        demand_seq, time_seq = np.random.SeedSequence(seed).spawn(2)
        demand_rng = np.random.default_rng(demand_seq)
        time_rng = np.random.default_rng(time_seq)
        curve_for = self.speedup_model.curve_for
        demands = self._demand_blocks(n, demand_rng)
        buffer = np.empty(0, dtype=float)
        for times in process.iter_times_ms(n, time_rng, chunk_size=chunk_size):
            while len(buffer) < len(times):
                buffer = np.concatenate([buffer, next(demands)])
            seq, buffer = buffer[: len(times)], buffer[len(times) :]
            for t, s in zip(times, seq):
                yield ArrivalSpec(
                    time_ms=float(t), seq_ms=float(s), speedup=curve_for(float(s))
                )

    def _demand_blocks(
        self, n: int, rng: np.random.Generator
    ) -> Iterator[np.ndarray]:
        """Demand draws in fixed-size blocks — the batching (and with
        it every value) depends only on the seed and ``n``, never on
        the consumer's chunk size."""
        produced = 0
        while produced < n:
            take = min(_DEMAND_BLOCK, n - produced)
            produced += take
            yield self.sampler(rng, take)
