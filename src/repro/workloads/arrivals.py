"""Arrival processes for the open-loop client.

The paper's client "issues requests in random order following a Poisson
distribution in an open loop" and varies load by changing the average
arrival rate (RPS).  The Figure 11 load-variation experiment switches
rate between quanta of 500 requests (45 → 30 → 45 → 30 RPS).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ArrivalProcess", "PoissonProcess", "UniformProcess", "PiecewiseRateProcess"]


class ArrivalProcess(ABC):
    """Generates absolute arrival times for ``n`` requests."""

    @abstractmethod
    def times_ms(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``n`` non-decreasing arrival times in milliseconds."""


class PoissonProcess(ArrivalProcess):
    """Open-loop Poisson arrivals at a constant average rate."""

    def __init__(self, rps: float) -> None:
        if rps <= 0:
            raise ConfigurationError(f"rps must be positive: {rps}")
        self.rps = rps

    def times_ms(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 1:
            raise ConfigurationError(f"n must be >= 1: {n}")
        gaps = rng.exponential(1000.0 / self.rps, size=n)
        return np.cumsum(gaps)

    def __repr__(self) -> str:
        return f"PoissonProcess(rps={self.rps:g})"


class UniformProcess(ArrivalProcess):
    """Deterministic, evenly spaced arrivals — useful for tests where
    queueing randomness would obscure the behaviour under study."""

    def __init__(self, rps: float) -> None:
        if rps <= 0:
            raise ConfigurationError(f"rps must be positive: {rps}")
        self.rps = rps

    def times_ms(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 1:
            raise ConfigurationError(f"n must be >= 1: {n}")
        gap = 1000.0 / self.rps
        return gap * np.arange(1, n + 1, dtype=float)

    def __repr__(self) -> str:
        return f"UniformProcess(rps={self.rps:g})"


@dataclass(frozen=True)
class RateQuantum:
    """One load-variation quantum: ``count`` requests at ``rps``."""

    rps: float
    count: int


class PiecewiseRateProcess(ArrivalProcess):
    """Poisson arrivals whose rate switches between fixed-size request
    quanta (the Figure 11 burst experiment).

    ``quanta`` repeats cyclically if ``n`` exceeds the total count.
    """

    def __init__(self, quanta: list[RateQuantum] | list[tuple[float, int]]) -> None:
        normalized = [
            q if isinstance(q, RateQuantum) else RateQuantum(float(q[0]), int(q[1]))
            for q in quanta
        ]
        if not normalized:
            raise ConfigurationError("need at least one rate quantum")
        for q in normalized:
            if q.rps <= 0 or q.count < 1:
                raise ConfigurationError(f"invalid quantum {q}")
        self.quanta = normalized

    def times_ms(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 1:
            raise ConfigurationError(f"n must be >= 1: {n}")
        gaps = np.empty(n, dtype=float)
        filled = 0
        index = 0
        while filled < n:
            quantum = self.quanta[index % len(self.quanta)]
            take = min(quantum.count, n - filled)
            gaps[filled : filled + take] = rng.exponential(
                1000.0 / quantum.rps, size=take
            )
            filled += take
            index += 1
        return np.cumsum(gaps)

    def quantum_boundaries(self, n: int) -> list[tuple[int, int]]:
        """Request-index ranges ``[(start, stop), ...]`` of each quantum
        within the first ``n`` requests — for Figure 11's per-quantum
        tail statistics."""
        bounds = []
        filled = 0
        index = 0
        while filled < n:
            quantum = self.quanta[index % len(self.quanta)]
            take = min(quantum.count, n - filled)
            bounds.append((filled, filled + take))
            filled += take
            index += 1
        return bounds

    def __repr__(self) -> str:
        inner = ", ".join(f"{q.rps:g}x{q.count}" for q in self.quanta)
        return f"PiecewiseRateProcess({inner})"
