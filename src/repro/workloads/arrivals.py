"""Arrival processes for the open-loop client.

The paper's client "issues requests in random order following a Poisson
distribution in an open loop" and varies load by changing the average
arrival rate (RPS).  The Figure 11 load-variation experiment switches
rate between quanta of 500 requests (45 → 30 → 45 → 30 RPS).

Streaming (DESIGN.md §14): :meth:`ArrivalProcess.iter_times_ms` yields
the same times as :meth:`~ArrivalProcess.times_ms` in bounded-size
chunks, bit-identically and independent of the chunk size.  Two facts
make that possible: numpy ``Generator`` draws are stream-sequential
(chunked draws concatenate to the single batch draw), and ``np.cumsum``
accumulates left-to-right, so seeding each chunk's cumsum with the
previous chunk's last absolute time continues the exact float
accumulation ``t_i = t_{i-1} + gap_i`` across the boundary.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["ArrivalProcess", "PoissonProcess", "UniformProcess", "PiecewiseRateProcess"]

_DEFAULT_CHUNK = 8192


def _validate_chunking(n: int, chunk_size: int) -> None:
    if n < 1:
        raise ConfigurationError(f"n must be >= 1: {n}")
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1: {chunk_size}")


def _chunked_cumsum(gaps: np.ndarray, carry: float) -> np.ndarray:
    """Absolute times for one chunk of inter-arrival gaps, continuing
    the sequential accumulation from ``carry`` bit-exactly (the carry is
    folded in as the cumsum's first element, not added after)."""
    block = np.empty(len(gaps) + 1, dtype=float)
    block[0] = carry
    block[1:] = gaps
    return np.cumsum(block)[1:]


class ArrivalProcess(ABC):
    """Generates absolute arrival times for ``n`` requests."""

    @abstractmethod
    def times_ms(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Return ``n`` non-decreasing arrival times in milliseconds."""

    def iter_times_ms(
        self, n: int, rng: np.random.Generator, chunk_size: int = _DEFAULT_CHUNK
    ) -> Iterator[np.ndarray]:
        """Yield the times of :meth:`times_ms` in chunks of at most
        ``chunk_size``.

        The concrete processes override this to generate each chunk on
        demand (O(chunk) memory for arbitrarily large ``n``), with the
        concatenated stream bit-identical to the batch array for every
        chunk size.  This base implementation is the compatibility
        fallback for custom processes: correct, but it materializes the
        whole array once.
        """
        _validate_chunking(n, chunk_size)
        times = self.times_ms(n, rng)
        for start in range(0, n, chunk_size):
            yield times[start : start + chunk_size]


class PoissonProcess(ArrivalProcess):
    """Open-loop Poisson arrivals at a constant average rate."""

    def __init__(self, rps: float) -> None:
        if rps <= 0:
            raise ConfigurationError(f"rps must be positive: {rps}")
        self.rps = rps

    def times_ms(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 1:
            raise ConfigurationError(f"n must be >= 1: {n}")
        gaps = rng.exponential(1000.0 / self.rps, size=n)
        return np.cumsum(gaps)

    def iter_times_ms(
        self, n: int, rng: np.random.Generator, chunk_size: int = _DEFAULT_CHUNK
    ) -> Iterator[np.ndarray]:
        _validate_chunking(n, chunk_size)
        scale = 1000.0 / self.rps
        carry = 0.0
        produced = 0
        while produced < n:
            take = min(chunk_size, n - produced)
            times = _chunked_cumsum(rng.exponential(scale, size=take), carry)
            carry = times[-1]
            produced += take
            yield times

    def __repr__(self) -> str:
        return f"PoissonProcess(rps={self.rps:g})"


class UniformProcess(ArrivalProcess):
    """Deterministic, evenly spaced arrivals — useful for tests where
    queueing randomness would obscure the behaviour under study."""

    def __init__(self, rps: float) -> None:
        if rps <= 0:
            raise ConfigurationError(f"rps must be positive: {rps}")
        self.rps = rps

    def times_ms(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 1:
            raise ConfigurationError(f"n must be >= 1: {n}")
        gap = 1000.0 / self.rps
        return gap * np.arange(1, n + 1, dtype=float)

    def iter_times_ms(
        self, n: int, rng: np.random.Generator, chunk_size: int = _DEFAULT_CHUNK
    ) -> Iterator[np.ndarray]:
        _validate_chunking(n, chunk_size)
        gap = 1000.0 / self.rps
        for start in range(0, n, chunk_size):
            stop = min(start + chunk_size, n)
            # Same elementwise product as the batch path — no running
            # sum, so no carry is needed for bit identity.
            yield gap * np.arange(start + 1, stop + 1, dtype=float)

    def __repr__(self) -> str:
        return f"UniformProcess(rps={self.rps:g})"


@dataclass(frozen=True)
class RateQuantum:
    """One load-variation quantum: ``count`` requests at ``rps``."""

    rps: float
    count: int


class PiecewiseRateProcess(ArrivalProcess):
    """Poisson arrivals whose rate switches between fixed-size request
    quanta (the Figure 11 burst experiment).

    ``quanta`` repeats cyclically if ``n`` exceeds the total count.
    """

    def __init__(self, quanta: list[RateQuantum] | list[tuple[float, int]]) -> None:
        normalized = [
            q if isinstance(q, RateQuantum) else RateQuantum(float(q[0]), int(q[1]))
            for q in quanta
        ]
        if not normalized:
            raise ConfigurationError("need at least one rate quantum")
        for q in normalized:
            if q.rps <= 0 or q.count < 1:
                raise ConfigurationError(f"invalid quantum {q}")
        self.quanta = normalized

    def times_ms(self, n: int, rng: np.random.Generator) -> np.ndarray:
        if n < 1:
            raise ConfigurationError(f"n must be >= 1: {n}")
        gaps = np.empty(n, dtype=float)
        filled = 0
        index = 0
        while filled < n:
            quantum = self.quanta[index % len(self.quanta)]
            take = min(quantum.count, n - filled)
            gaps[filled : filled + take] = rng.exponential(
                1000.0 / quantum.rps, size=take
            )
            filled += take
            index += 1
        return np.cumsum(gaps)

    def iter_times_ms(
        self, n: int, rng: np.random.Generator, chunk_size: int = _DEFAULT_CHUNK
    ) -> Iterator[np.ndarray]:
        _validate_chunking(n, chunk_size)
        carry = 0.0
        produced = 0
        index = 0
        left_in_quantum = self.quanta[0].count
        while produced < n:
            take = min(chunk_size, n - produced)
            gaps = np.empty(take, dtype=float)
            filled = 0
            while filled < take:
                quantum = self.quanta[index % len(self.quanta)]
                seg = min(left_in_quantum, take - filled)
                # A quantum split across chunks draws its gaps in two
                # calls; Generator draws are stream-sequential, so the
                # values equal the batch path's single per-quantum draw.
                gaps[filled : filled + seg] = rng.exponential(
                    1000.0 / quantum.rps, size=seg
                )
                filled += seg
                left_in_quantum -= seg
                if left_in_quantum == 0:
                    index += 1
                    left_in_quantum = self.quanta[index % len(self.quanta)].count
            times = _chunked_cumsum(gaps, carry)
            carry = times[-1]
            produced += take
            yield times

    def quantum_boundaries(self, n: int) -> list[tuple[int, int]]:
        """Request-index ranges ``[(start, stop), ...]`` of each quantum
        within the first ``n`` requests — for Figure 11's per-quantum
        tail statistics."""
        bounds = []
        filled = 0
        index = 0
        while filled < n:
            quantum = self.quanta[index % len(self.quanta)]
            take = min(quantum.count, n - filled)
            bounds.append((filled, filled + take))
            filled += take
            index += 1
        return bounds

    def __repr__(self) -> str:
        inner = ", ".join(f"{q.rps:g}x{q.count}" for q in self.quanta)
        return f"PiecewiseRateProcess({inner})"
