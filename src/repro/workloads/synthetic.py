"""Parametric service-demand distributions.

Interactive-service demand is heavy-tailed: "most user search requests
are short, but a significant percentage are long" (Section 1), with
99th-percentile execution times 10x the mean and 100x the median.
Lognormal mixtures reproduce those shapes; :class:`DemandDistribution`
instances are reusable samplers consumed by :class:`~repro.workloads.workload.Workload`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["LognormalComponent", "DemandDistribution", "bimodal_distribution"]


@dataclass(frozen=True)
class LognormalComponent:
    """One mixture component: lognormal with the given *median* (ms) and
    log-space sigma, weighted by ``weight``."""

    weight: float
    median_ms: float
    sigma: float

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ConfigurationError(f"weight must be positive: {self}")
        if self.median_ms <= 0:
            raise ConfigurationError(f"median_ms must be positive: {self}")
        if self.sigma < 0:
            raise ConfigurationError(f"sigma must be >= 0: {self}")


class DemandDistribution:
    """Lognormal-mixture demand sampler with optional truncation.

    ``cap_ms`` models request termination (Bing "terminates any request
    at 200 ms and returns its partial results", producing the Figure
    1(a) spike at the cap); ``floor_ms`` keeps demands strictly positive.
    """

    def __init__(
        self,
        components: list[LognormalComponent] | list[tuple[float, float, float]],
        cap_ms: float | None = None,
        floor_ms: float = 0.1,
    ) -> None:
        self.components = [
            c if isinstance(c, LognormalComponent) else LognormalComponent(*c)
            for c in components
        ]
        if not self.components:
            raise ConfigurationError("need at least one mixture component")
        if cap_ms is not None and cap_ms <= floor_ms:
            raise ConfigurationError(f"cap_ms must exceed floor_ms: {cap_ms}")
        if floor_ms <= 0:
            raise ConfigurationError(f"floor_ms must be positive: {floor_ms}")
        self.cap_ms = cap_ms
        self.floor_ms = floor_ms
        total = sum(c.weight for c in self.components)
        self._probabilities = np.array([c.weight / total for c in self.components])

    def sample(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Draw ``n`` sequential demands in milliseconds."""
        if n < 1:
            raise ConfigurationError(f"n must be >= 1: {n}")
        choices = rng.choice(len(self.components), size=n, p=self._probabilities)
        medians = np.array([c.median_ms for c in self.components])
        sigmas = np.array([c.sigma for c in self.components])
        # median * exp(sigma * z): exact point masses when sigma == 0.
        values = medians[choices] * np.exp(sigmas[choices] * rng.standard_normal(n))
        np.maximum(values, self.floor_ms, out=values)
        if self.cap_ms is not None:
            np.minimum(values, self.cap_ms, out=values)
        return values

    def __call__(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return self.sample(rng, n)


def bimodal_distribution(
    short_ms: float, long_ms: float, long_fraction: float = 0.5
) -> DemandDistribution:
    """Degenerate two-point "distribution" like the Figure 5 worked
    example (50 ms short / 150 ms long, equal probability)."""
    if not 0.0 < long_fraction < 1.0:
        raise ConfigurationError(f"long_fraction must be in (0, 1): {long_fraction}")
    return DemandDistribution(
        [
            LognormalComponent(1.0 - long_fraction, short_ms, 0.0),
            LognormalComponent(long_fraction, long_ms, 0.0),
        ]
    )
