"""The Bing-like index-server workload (Sections 2 and 7, Figure 1).

Calibrated to the published characteristics of the 30K-request ISN
profiling run:

* demand histogram (Figure 1(a)): "most requests are short, with more
  than 85% taking below 15 ms.  A few requests are very long, up to 200
  ms.  The gap between the median and the 99th percentile is a factor
  of 27x.  The slight rise in frequency at 200 ms is because the server
  terminates any request at 200 ms" — an 80/20 lognormal mixture
  truncated at 200 ms reproduces the shape (median ≈ 7 ms, ~80 % under
  15 ms, 99th near the cap; the long-mass weight is pushed slightly
  above the quoted 15 % so the 100-350 RPS range reaches the ~70 %
  utilization the paper cites for loaded ISNs);
* speedup (Figure 1(b)): "Long requests have over 2 times speedup with
  3 threads.  In contrast, short requests have limited speedup, a
  factor of 1.2 with 3 threads ... at degrees higher than 4, additional
  parallelism does not lead to speed up."

Testbed constants from Section 7.1: 12 cores, ``target_p = 16``,
maximum degree 3, no thread boosting, 100-350 RPS load range.
"""

from __future__ import annotations

from repro.core.speedup import LengthDependentSpeedupModel, TabulatedSpeedup
from repro.workloads.synthetic import DemandDistribution, LognormalComponent
from repro.workloads.workload import Workload

__all__ = [
    "bing_workload",
    "CORES",
    "TARGET_PARALLELISM",
    "MAX_DEGREE",
    "QUANTUM_MS",
    "SPIN_FRACTION",
    "RPS_RANGE",
    "TERMINATION_MS",
]

#: Two 6-core Xeons (Section 7.1).
CORES = 12
#: "A slightly higher number than the 12 available cores."
TARGET_PARALLELISM = 16
#: "The efficiency of parallelism drops significantly at degree 4, thus
#: we configure FM to increase the parallelism degree up to 3."
MAX_DEGREE = 3
#: Same self-scheduling quantum as Lucene.
QUANTUM_MS = 5.0
#: Fraction of lost parallelism that burns CPU rather than blocking.
#: ISN parallelism loss is dominated by shard skew (idle workers), so
#: less of it burns cores than in Lucene's merge-heavy execution.
SPIN_FRACTION = 0.15
#: The load range of the Figure 12 plots.
RPS_RANGE = (100, 150, 180, 200, 230, 260, 280, 310, 350)
#: The ISN terminates requests at 200 ms and returns partial results.
TERMINATION_MS = 200.0

#: Figure 1(b) anchors: shortest 5 % reach only ~1.2x at degree 3;
#: longest 5 % exceed 2x at 3 and plateau near 2.5x by degree 5.
_SHORT_CURVE = TabulatedSpeedup([1.0, 1.12, 1.20, 1.25, 1.27, 1.27])
_LONG_CURVE = TabulatedSpeedup([1.0, 1.80, 2.25, 2.40, 2.45, 2.45])

#: Figure 1(a) shape: ~80 % short (median 6 ms), ~20 % long (median
#: 120 ms), truncated at the 200 ms termination deadline.  Mean ~30 ms
#: puts the top of the RPS range near saturation with FIX-3's overhead,
#: reproducing the Figure 12 knee ordering.
_DEMAND = DemandDistribution(
    [
        LognormalComponent(0.80, 6.0, 0.45),
        LognormalComponent(0.20, 120.0, 0.60),
    ],
    cap_ms=TERMINATION_MS,
    floor_ms=0.5,
)


def bing_workload(
    profile_size: int = 30_000, profile_seed: int = 201_309, max_degree: int = 5
) -> Workload:
    """Build the calibrated Bing-like ISN workload."""
    model = LengthDependentSpeedupModel(
        short_curve=_SHORT_CURVE,
        long_curve=_LONG_CURVE,
        short_ms=3.0,
        long_ms=120.0,
        max_degree=max_degree,
    )
    return Workload(
        name="bing",
        sampler=_DEMAND,
        speedup_model=model,
        max_degree=max_degree,
        profile_size=profile_size,
        profile_seed=profile_seed,
    )
