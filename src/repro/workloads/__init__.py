"""Workload substrate: demand distributions, speedup calibrations, and
arrival processes reproducing the paper's production traces."""

from repro.workloads import bing, lucene
from repro.workloads.arrivals import (
    ArrivalProcess,
    PiecewiseRateProcess,
    PoissonProcess,
    RateQuantum,
    UniformProcess,
)
from repro.workloads.bing import bing_workload
from repro.workloads.lucene import lucene_workload
from repro.workloads.trace_io import load_trace, save_trace, trace_to_profile
from repro.workloads.synthetic import (
    DemandDistribution,
    LognormalComponent,
    bimodal_distribution,
)
from repro.workloads.workload import Workload

__all__ = [
    "ArrivalProcess",
    "DemandDistribution",
    "LognormalComponent",
    "PiecewiseRateProcess",
    "PoissonProcess",
    "RateQuantum",
    "UniformProcess",
    "Workload",
    "bimodal_distribution",
    "bing",
    "bing_workload",
    "load_trace",
    "lucene",
    "lucene_workload",
    "save_trace",
    "trace_to_profile",
]
