"""Request-trace persistence and replay.

The paper replays "a trace containing 30K Bing production user requests
from 2013".  This module provides the equivalent plumbing: save a
generated (or measured) trace to a JSON-lines file and replay it later,
so experiments are exactly repeatable across processes and so external
traces can be brought in.

Each line holds one request: arrival time, sequential demand, and its
speedup table (the offline phase's per-request inputs)::

    {"time_ms": 12.5, "seq_ms": 186.0, "speedups": [1.0, 1.9, 2.5, 3.0]}
"""

from __future__ import annotations

import json
from pathlib import Path
from collections.abc import Iterable, Sequence

from repro.core.speedup import TabulatedSpeedup
from repro.errors import ConfigurationError
from repro.sim.engine import ArrivalSpec

__all__ = ["save_trace", "load_trace", "trace_to_profile"]


def save_trace(arrivals: Sequence[ArrivalSpec], path: str | Path,
               max_degree: int = 6) -> int:
    """Write a trace as JSON lines; returns the number of requests.

    Speedup curves are materialized as tables up to ``max_degree``
    (curves are interfaces; tables are portable).
    """
    specs = list(arrivals)
    if not specs:
        raise ConfigurationError("refusing to save an empty trace")
    with Path(path).open("w") as fh:
        for spec in specs:
            record = {
                "time_ms": spec.time_ms,
                "seq_ms": spec.seq_ms,
                "speedups": [float(v) for v in spec.speedup.table(max_degree)],
            }
            fh.write(json.dumps(record) + "\n")
    return len(specs)


def load_trace(path: str | Path) -> list[ArrivalSpec]:
    """Read a trace written by :func:`save_trace` (arrival-time order)."""
    specs: list[ArrivalSpec] = []
    with Path(path).open() as fh:
        for line_number, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                specs.append(
                    ArrivalSpec(
                        time_ms=float(record["time_ms"]),
                        seq_ms=float(record["seq_ms"]),
                        speedup=TabulatedSpeedup(record["speedups"]),
                    )
                )
            except (KeyError, ValueError, TypeError) as exc:
                raise ConfigurationError(
                    f"{path}:{line_number}: malformed trace record: {exc}"
                ) from exc
    if not specs:
        raise ConfigurationError(f"{path}: empty trace")
    specs.sort(key=lambda s: s.time_ms)
    return specs


def trace_to_profile(arrivals: Iterable[ArrivalSpec], max_degree: int):
    """Build a :class:`~repro.core.demand.DemandProfile` from a trace —
    turning a replayable trace back into offline-phase input."""
    import numpy as np

    from repro.core.demand import DemandProfile

    specs = list(arrivals)
    if not specs:
        raise ConfigurationError("empty trace")
    seq = np.array([s.seq_ms for s in specs])
    tables = np.stack([s.speedup.table(max_degree) for s in specs])
    return DemandProfile(seq, tables)
