"""Equations (1)-(5) of the paper (Figure 6): latency and parallelism
of a request population under an FM interval schedule.

Given an S-form schedule ``{v0, v1, ..., v_{n-1}}`` and a request with
sequential demand ``seq_r`` and speedups ``s_r(d)``:

* Eq. (1) ``time_r(S)`` — completion time: the admission delay ``v0``
  plus the time spent in each parallelism phase.  Phase ``i`` (degree
  ``i``) lasts ``v_i`` and retires ``s_r(i) * v_i`` units of sequential
  work; the final degree ``n`` runs until the work is done.
* Eq. (2) ``ap_r(S)`` — the request's time-averaged parallelism
  (CPU-thread-time divided by completion time; the admission wait
  counts as degree 0).
* Eq. (3) ``ap_R(S, q_r)`` — expected total system parallelism with
  ``q_r`` concurrent requests: the per-request average parallelism
  weighted by residence time, times ``q_r``.
* Eq. (4)/(5) — mean and φ-tail latency over the profile, the tail
  being the order statistic ``L[ceil(φ · |R|)]``.

Two implementations are provided: a scalar reference (direct transcription
of Figure 6, used as ground truth in tests) and vectorized NumPy versions
used by the offline search and analysis code.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.demand import DemandProfile, RequestProfile
from repro.core.schedule import IntervalSchedule
from repro.errors import InvalidScheduleError

__all__ = [
    "completion_time",
    "busy_time",
    "average_parallelism",
    "completion_times",
    "busy_times",
    "total_average_parallelism",
    "mean_latency",
    "tail_latency",
    "weighted_order_statistic",
]


# ----------------------------------------------------------------------
# Scalar reference implementations (direct Figure 6 transcription)
# ----------------------------------------------------------------------
def completion_time(request: RequestProfile, schedule: IntervalSchedule) -> float:
    """Eq. (1): completion time of one request under ``schedule``.

    Walks the parallelism phases: phase ``i < n`` lasts ``v_i`` at
    degree ``i`` (retiring ``s(i) * v_i`` work), the final phase runs at
    degree ``n`` until the remaining work is gone.
    """
    n = schedule.max_degree
    remaining = request.seq_ms
    elapsed = schedule.v0
    for degree in range(1, n):
        speed = request.speedup.speedup(degree)
        capacity = speed * schedule.intervals[degree]
        if remaining <= capacity:
            return elapsed + remaining / speed
        remaining -= capacity
        elapsed += schedule.intervals[degree]
    return elapsed + remaining / request.speedup.speedup(n)


def busy_time(request: RequestProfile, schedule: IntervalSchedule) -> float:
    """CPU thread-time the request consumes: the Eq. (2) numerator
    (``Σ i · duration_i``, with the admission wait contributing 0)."""
    n = schedule.max_degree
    remaining = request.seq_ms
    busy = 0.0
    for degree in range(1, n):
        speed = request.speedup.speedup(degree)
        capacity = speed * schedule.intervals[degree]
        if remaining <= capacity:
            return busy + degree * remaining / speed
        remaining -= capacity
        busy += degree * schedule.intervals[degree]
    return busy + n * remaining / request.speedup.speedup(n)


def average_parallelism(request: RequestProfile, schedule: IntervalSchedule) -> float:
    """Eq. (2): the request's time-averaged parallelism degree."""
    return busy_time(request, schedule) / completion_time(request, schedule)


# ----------------------------------------------------------------------
# Vectorized implementations over a DemandProfile
# ----------------------------------------------------------------------
def _phase_walk(
    profile: DemandProfile, schedule: IntervalSchedule
) -> tuple[np.ndarray, np.ndarray]:
    """Shared phase walk returning ``(times, busy)`` arrays, one entry
    per profile row, both excluding nothing (times include ``v0``)."""
    n = schedule.max_degree
    if n > profile.max_degree:
        raise InvalidScheduleError(
            f"schedule degree {n} exceeds profile max degree {profile.max_degree}"
        )
    seq = profile.seq
    speeds = profile.speedups
    times = np.full(len(seq), schedule.v0, dtype=float)
    busy = np.zeros(len(seq), dtype=float)
    done = np.zeros(len(seq), dtype=float)
    for degree in range(1, n):
        speed = speeds[:, degree - 1]
        capacity = speed * schedule.intervals[degree]
        take = np.minimum(capacity, seq - done)
        np.maximum(take, 0.0, out=take)
        duration = take / speed
        times += duration
        busy += degree * duration
        done += take
    speed_n = speeds[:, n - 1]
    final = (seq - done) / speed_n
    times += final
    busy += n * final
    return times, busy


def completion_times(profile: DemandProfile, schedule: IntervalSchedule) -> np.ndarray:
    """Vectorized Eq. (1) over every request in ``profile``."""
    times, _ = _phase_walk(profile, schedule)
    return times


def busy_times(profile: DemandProfile, schedule: IntervalSchedule) -> np.ndarray:
    """Vectorized Eq. (2) numerator over every request in ``profile``."""
    _, busy = _phase_walk(profile, schedule)
    return busy


def total_average_parallelism(
    profile: DemandProfile, schedule: IntervalSchedule, q_r: int
) -> float:
    """Eq. (3): expected total software parallelism with ``q_r``
    concurrent requests following ``schedule``.

    The residence-time weighting makes this the steady-state expected
    thread count: a random in-flight request is long with probability
    proportional to its residence time.
    """
    if q_r < 1:
        raise ValueError(f"q_r must be >= 1, got {q_r}")
    times, busy = _phase_walk(profile, schedule)
    w = profile.weights
    return float(q_r * np.dot(busy, w) / np.dot(times, w))


def mean_latency(profile: DemandProfile, schedule: IntervalSchedule) -> float:
    """Eq. (4): weighted mean completion time over the profile."""
    times, _ = _phase_walk(profile, schedule)
    return float(np.average(times, weights=profile.weights))


def tail_latency(
    profile: DemandProfile, schedule: IntervalSchedule, phi: float = 0.99
) -> float:
    """Eq. (5): the φ-tail completion time (order statistic
    ``L[ceil(φ · |R|)]`` with multiplicity weights)."""
    times, _ = _phase_walk(profile, schedule)
    return weighted_order_statistic(times, profile.weights, phi)


def weighted_order_statistic(
    values: np.ndarray, weights: np.ndarray, phi: float
) -> float:
    """Eq. (5) order statistic: the smallest ``v`` such that the total
    weight of values ``<= v`` reaches ``phi`` of the whole.

    For unit weights this is exactly ``sorted(values)[ceil(phi * N) - 1]``.
    """
    if not 0.0 < phi <= 1.0:
        raise ValueError(f"phi must be in (0, 1], got {phi}")
    values = np.asarray(values, dtype=float)
    weights = np.asarray(weights, dtype=float)
    if values.shape != weights.shape or values.ndim != 1 or len(values) == 0:
        raise ValueError("values and weights must be equal-length 1-D arrays")
    order = np.argsort(values, kind="stable")
    cum = np.cumsum(weights[order])
    target = math.ceil(phi * cum[-1] - 1e-9)
    index = int(np.searchsorted(cum, target - 1e-9))
    return float(values[order[min(index, len(values) - 1)]])
