"""Analytic queueing baselines for validating the simulator.

The simulator's sequential mode has exact textbook counterparts, which
gives an independent check that its timing machinery is right:

* With one core, full spin, and SEQ scheduling, the server is an
  **M/G/1 processor-sharing** queue.  PS sojourn times are famously
  insensitive to the service distribution beyond its mean:
  ``E[T] = E[S] / (1 - rho)``, and conditional sojourn is linear in
  service demand, ``E[T | S = x] = x / (1 - rho)``.
* With ``c`` cores and fewer than ``c`` sequential requests nothing
  queues, so at low utilization the system behaves like **M/G/inf**:
  sojourn equals service.

The test suite drives the simulator against these formulas; the
functions also serve as sanity baselines in experiments ("is this
latency just queueing?").
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = [
    "utilization",
    "mg1_ps_mean_sojourn",
    "mg1_ps_conditional_sojourn",
    "mg1_ps_slowdown",
]


def utilization(arrival_rate_per_ms: float, mean_service_ms: float, cores: int = 1) -> float:
    """Offered load ``rho = lambda * E[S] / c``."""
    if arrival_rate_per_ms < 0:
        raise ConfigurationError(f"arrival rate must be >= 0: {arrival_rate_per_ms}")
    if mean_service_ms <= 0:
        raise ConfigurationError(f"mean service must be positive: {mean_service_ms}")
    if cores < 1:
        raise ConfigurationError(f"cores must be >= 1: {cores}")
    return arrival_rate_per_ms * mean_service_ms / cores


def _check_stable(rho: float) -> None:
    if not 0.0 <= rho < 1.0:
        raise ConfigurationError(f"queue unstable or invalid: rho = {rho}")


def mg1_ps_mean_sojourn(mean_service_ms: float, rho: float) -> float:
    """M/G/1-PS expected sojourn: ``E[S] / (1 - rho)``.

    Insensitive to the service distribution's shape — only the mean
    enters — which is what makes it such a sharp simulator check for
    heavy-tailed demand.
    """
    if mean_service_ms <= 0:
        raise ConfigurationError(f"mean service must be positive: {mean_service_ms}")
    _check_stable(rho)
    return mean_service_ms / (1.0 - rho)


def mg1_ps_conditional_sojourn(service_ms: float, rho: float) -> float:
    """M/G/1-PS conditional sojourn ``E[T | S = x] = x / (1 - rho)``:
    every request is stretched by the same factor."""
    if service_ms <= 0:
        raise ConfigurationError(f"service must be positive: {service_ms}")
    _check_stable(rho)
    return service_ms / (1.0 - rho)


def mg1_ps_slowdown(rho: float) -> float:
    """The PS stretch factor ``1 / (1 - rho)`` applied to every request."""
    _check_stable(rho)
    return 1.0 / (1.0 - rho)
