"""Capacity planning and TCO analysis (Sections 1 and 7).

The paper's headline business result: "the provider can leverage FM to
service the same user load with 42% fewer servers" — because a policy
with lower tail latency at a given load can, equivalently, sustain a
higher per-server load at a given tail-latency target.

Given measured ``(RPS, tail latency)`` series per policy (produced by
the experiment runner), these helpers compute the maximum sustainable
RPS under a latency target and translate it into server counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence

from repro.errors import ConfigurationError

__all__ = ["LoadLatencyPoint", "max_sustainable_rps", "servers_needed", "server_reduction"]


@dataclass(frozen=True)
class LoadLatencyPoint:
    """One measurement: offered load and the resulting tail latency."""

    rps: float
    latency_ms: float


def _as_points(series: Sequence[LoadLatencyPoint | tuple[float, float]]) -> list[LoadLatencyPoint]:
    points = [
        p if isinstance(p, LoadLatencyPoint) else LoadLatencyPoint(float(p[0]), float(p[1]))
        for p in series
    ]
    if len(points) < 2:
        raise ConfigurationError("need at least two (rps, latency) points")
    if any(b.rps <= a.rps for a, b in zip(points, points[1:])):
        raise ConfigurationError("series must be sorted by strictly increasing RPS")
    return points


def max_sustainable_rps(
    series: Sequence[LoadLatencyPoint | tuple[float, float]], target_ms: float
) -> float:
    """Largest load at which the policy's tail latency stays at or below
    ``target_ms``, by linear interpolation between measured points.

    Latency-vs-load curves are noisy but eventually increasing; we scan
    for the last measured point under the target and interpolate toward
    the first point above it.  Returns 0.0 when even the lightest load
    misses the target, and the largest measured RPS when the target is
    never exceeded.
    """
    if target_ms <= 0:
        raise ConfigurationError(f"target_ms must be positive: {target_ms}")
    points = _as_points(series)
    if points[0].latency_ms > target_ms:
        return 0.0
    last_ok = points[0]
    for point in points[1:]:
        if point.latency_ms <= target_ms:
            last_ok = point
            continue
        # Interpolate the crossing between last_ok and this point.
        span = point.latency_ms - last_ok.latency_ms
        if span <= 0:
            return point.rps
        fraction = (target_ms - last_ok.latency_ms) / span
        return last_ok.rps + fraction * (point.rps - last_ok.rps)
    return points[-1].rps


def servers_needed(total_rps: float, per_server_rps: float) -> int:
    """Servers required to absorb ``total_rps`` when each sustains
    ``per_server_rps`` under the latency target."""
    if total_rps < 0:
        raise ConfigurationError(f"total_rps must be >= 0: {total_rps}")
    if per_server_rps <= 0:
        raise ConfigurationError(
            f"policy cannot meet the latency target at any load "
            f"(per_server_rps = {per_server_rps})"
        )
    return max(1, math.ceil(total_rps / per_server_rps))


def server_reduction(
    baseline_series: Sequence[LoadLatencyPoint | tuple[float, float]],
    improved_series: Sequence[LoadLatencyPoint | tuple[float, float]],
    target_ms: float,
    total_rps: float | None = None,
) -> float:
    """Fraction of servers saved by the improved policy at a tail
    target: ``1 - servers(improved) / servers(baseline)``.

    With ``total_rps`` omitted the asymptotic ratio
    ``1 - baseline_rps / improved_rps`` is returned (server counts
    in the fleet limit); with it, integral server counts are used.
    """
    base_rps = max_sustainable_rps(baseline_series, target_ms)
    improved_rps = max_sustainable_rps(improved_series, target_ms)
    if base_rps <= 0:
        raise ConfigurationError("baseline policy never meets the target")
    if improved_rps <= 0:
        raise ConfigurationError("improved policy never meets the target")
    if total_rps is None:
        return 1.0 - base_rps / improved_rps
    base_servers = servers_needed(total_rps, base_rps)
    improved_servers = servers_needed(total_rps, improved_rps)
    return 1.0 - improved_servers / base_servers
