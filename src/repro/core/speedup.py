"""Speedup-curve models for intra-request parallelism.

The paper's offline phase consumes, for every profiled request, its
sequential execution time and its speedup at each parallelism degree
(Section 2, Figures 1(b) and 2(b)).  Three facts from those measurements
shape the models here:

* speedup is *sublinear*: parallel efficiency ``s(d) / d`` decreases as
  the degree ``d`` grows (the premise of Theorem 1);
* speedup *plateaus*: beyond some degree extra threads do not help
  (degree 4 for Bing, degree 5 for Lucene);
* *long requests parallelize better than short ones* (the longest 5 % of
  Bing requests reach 2.2x at degree 3; the shortest 5 % only 1.2x).

:class:`SpeedupCurve` is the per-request view (``s(d)`` for one request)
and :class:`SpeedupModel` maps a request's sequential demand to its
curve, capturing the length dependence.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Sequence

import numpy as np

from repro.errors import InvalidSpeedupError

__all__ = [
    "SpeedupCurve",
    "TabulatedSpeedup",
    "AmdahlSpeedup",
    "LinearSpeedup",
    "SpeedupModel",
    "UniformSpeedupModel",
    "LengthDependentSpeedupModel",
]


class SpeedupCurve(ABC):
    """Speedup of a single request as a function of parallelism degree.

    Implementations must satisfy ``speedup(1) == 1.0`` and be
    non-decreasing in the degree.  Degrees beyond the largest modelled
    degree return the plateau value (extra threads never slow the
    request down in this model; contention is the simulator's job).
    """

    @abstractmethod
    def speedup(self, degree: int) -> float:
        """Return ``s(degree)``, the factor by which ``degree`` threads
        shorten the request relative to sequential execution."""

    def efficiency(self, degree: int) -> float:
        """Parallel efficiency ``s(d) / d`` at the given degree."""
        return self.speedup(degree) / degree

    def is_sublinear(self, max_degree: int) -> bool:
        """Check the Theorem 1 premise: efficiency strictly decreases
        over ``1..max_degree``."""
        effs = [self.efficiency(d) for d in range(1, max_degree + 1)]
        return all(a > b for a, b in zip(effs, effs[1:]))

    def table(self, max_degree: int) -> np.ndarray:
        """Return ``[s(1), ..., s(max_degree)]`` as a float array."""
        return np.array(
            [self.speedup(d) for d in range(1, max_degree + 1)], dtype=float
        )

    def validate(self, max_degree: int = 8) -> None:
        """Raise :class:`InvalidSpeedupError` on a malformed curve."""
        if not math.isclose(self.speedup(1), 1.0, rel_tol=1e-9):
            raise InvalidSpeedupError(f"s(1) must be 1.0, got {self.speedup(1)}")
        prev = 1.0
        for degree in range(2, max_degree + 1):
            value = self.speedup(degree)
            if value < prev - 1e-12:
                raise InvalidSpeedupError(
                    f"speedup must be non-decreasing: s({degree}) = {value} "
                    f"< s({degree - 1}) = {prev}"
                )
            if value > degree + 1e-9:
                raise InvalidSpeedupError(
                    f"superlinear speedup unsupported: s({degree}) = {value}"
                )
            prev = value


class TabulatedSpeedup(SpeedupCurve):
    """Speedup curve given by explicit measurements ``s(1)..s(n)``.

    This mirrors the paper's input format: profiled speedups at each
    degree.  Degrees above ``len(values)`` return the last entry
    (plateau).

    Parameters
    ----------
    values:
        ``values[j]`` is the speedup at degree ``j + 1``; ``values[0]``
        must be 1.0.
    """

    def __init__(self, values: Sequence[float]) -> None:
        if len(values) == 0:
            raise InvalidSpeedupError("tabulated curve needs at least s(1)")
        self._values = tuple(float(v) for v in values)
        self.validate(max_degree=len(self._values))

    def speedup(self, degree: int) -> float:
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        index = min(degree, len(self._values)) - 1
        return self._values[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TabulatedSpeedup({list(self._values)!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TabulatedSpeedup) and self._values == other._values

    def __hash__(self) -> int:
        return hash(self._values)


class AmdahlSpeedup(SpeedupCurve):
    """Amdahl's-law curve with a per-thread coordination overhead.

    ``s(d) = (1 - overhead * (d - 1)) / (serial_fraction + (1 - serial_fraction) / d)``

    The overhead term models synchronization cost per added worker
    (Section 3.3: "FM must consider any overhead due to parallelism").
    The curve is clamped to be non-decreasing so that an overhead large
    enough to make extra threads counterproductive shows up as a plateau
    rather than a decline (idle extra threads, not slowdown).
    """

    def __init__(self, serial_fraction: float, overhead: float = 0.0) -> None:
        if not 0.0 <= serial_fraction <= 1.0:
            raise InvalidSpeedupError(
                f"serial_fraction must be in [0, 1], got {serial_fraction}"
            )
        if not 0.0 <= overhead < 1.0:
            raise InvalidSpeedupError(f"overhead must be in [0, 1), got {overhead}")
        self.serial_fraction = float(serial_fraction)
        self.overhead = float(overhead)

    def speedup(self, degree: int) -> float:
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        best = 1.0
        f = self.serial_fraction
        for d in range(2, degree + 1):
            scale = max(0.0, 1.0 - self.overhead * (d - 1))
            raw = scale / (f + (1.0 - f) / d)
            best = max(best, raw)
        return best

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AmdahlSpeedup(serial_fraction={self.serial_fraction}, overhead={self.overhead})"


class LinearSpeedup(SpeedupCurve):
    """Perfect linear speedup up to a cap — useful in tests and as the
    degenerate case where Theorem 1's strict inequality becomes equality."""

    def __init__(self, max_effective_degree: int | None = None) -> None:
        if max_effective_degree is not None and max_effective_degree < 1:
            raise InvalidSpeedupError("max_effective_degree must be >= 1")
        self.max_effective_degree = max_effective_degree

    def speedup(self, degree: int) -> float:
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        if self.max_effective_degree is not None:
            degree = min(degree, self.max_effective_degree)
        return float(degree)


class SpeedupModel(ABC):
    """Maps a request's sequential demand to its speedup curve.

    The paper profiles every request individually; synthetic workloads
    instead draw the curve from the demand, reproducing the observed
    long-requests-scale-better effect.
    """

    @abstractmethod
    def curve_for(self, seq_ms: float) -> SpeedupCurve:
        """Return the speedup curve of a request whose sequential
        execution time is ``seq_ms`` milliseconds."""

    def tables_for(self, seq_ms: np.ndarray, max_degree: int) -> np.ndarray:
        """Vectorized helper: ``(len(seq_ms), max_degree)`` array whose
        row ``i`` is the speedup table of request ``i``."""
        out = np.empty((len(seq_ms), max_degree), dtype=float)
        for i, seq in enumerate(seq_ms):
            out[i] = self.curve_for(float(seq)).table(max_degree)
        return out


class UniformSpeedupModel(SpeedupModel):
    """Every request shares one speedup curve, regardless of length."""

    def __init__(self, curve: SpeedupCurve) -> None:
        self.curve = curve

    def curve_for(self, seq_ms: float) -> SpeedupCurve:
        return self.curve


class LengthDependentSpeedupModel(SpeedupModel):
    """Interpolates between a short-request and a long-request curve.

    Requests at or below ``short_ms`` get ``short_curve``; at or above
    ``long_ms`` they get ``long_curve``; in between, the per-degree
    speedups are log-linearly interpolated in the demand.  This
    reproduces the spread between the "shortest 5 %" and "longest 5 %"
    curves in Figures 1(b)/2(b).
    """

    def __init__(
        self,
        short_curve: SpeedupCurve,
        long_curve: SpeedupCurve,
        short_ms: float,
        long_ms: float,
        max_degree: int = 8,
    ) -> None:
        if short_ms <= 0 or long_ms <= short_ms:
            raise InvalidSpeedupError(
                f"need 0 < short_ms < long_ms, got {short_ms}, {long_ms}"
            )
        self.short_ms = float(short_ms)
        self.long_ms = float(long_ms)
        self.max_degree = int(max_degree)
        self._short_table = short_curve.table(self.max_degree)
        self._long_table = long_curve.table(self.max_degree)

    def _weight(self, seq_ms: float) -> float:
        """Interpolation weight in [0, 1]: 0 = short curve, 1 = long curve."""
        if seq_ms <= self.short_ms:
            return 0.0
        if seq_ms >= self.long_ms:
            return 1.0
        return math.log(seq_ms / self.short_ms) / math.log(self.long_ms / self.short_ms)

    def curve_for(self, seq_ms: float) -> SpeedupCurve:
        w = self._weight(seq_ms)
        blended = (1.0 - w) * self._short_table + w * self._long_table
        blended[0] = 1.0
        # Interpolation of two valid curves is non-decreasing, but guard
        # against float drift before handing the table out.
        np.maximum.accumulate(blended, out=blended)
        return TabulatedSpeedup(blended)

    def tables_for(self, seq_ms: np.ndarray, max_degree: int) -> np.ndarray:
        seq = np.asarray(seq_ms, dtype=float)
        weights = np.clip(
            np.log(np.maximum(seq, 1e-12) / self.short_ms)
            / math.log(self.long_ms / self.short_ms),
            0.0,
            1.0,
        )
        short = self._extend(self._short_table, max_degree)
        long_ = self._extend(self._long_table, max_degree)
        tables = (1.0 - weights[:, None]) * short[None, :] + weights[:, None] * long_[None, :]
        tables[:, 0] = 1.0
        np.maximum.accumulate(tables, axis=1, out=tables)
        return tables

    @staticmethod
    def _extend(table: np.ndarray, max_degree: int) -> np.ndarray:
        """Extend a speedup table to ``max_degree`` by plateauing."""
        if max_degree <= len(table):
            return table[:max_degree]
        pad = np.full(max_degree - len(table), table[-1])
        return np.concatenate([table, pad])
