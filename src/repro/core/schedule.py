"""Schedule representations for FM incremental parallelism (Section 4.1).

The paper uses two equivalent representations:

* **σ (sigma) form** — :class:`Schedule`: a list of ``(t_i, d_j)`` steps,
  "at load q_r, when a request reaches time t_i, execute it with
  parallelism degree d_j".  ``t_0`` may be the admission-control
  sentinel ``e1`` ("wait until another request exits").
* **S form** — :class:`IntervalSchedule`: ``{v0, v1, ..., v_{n-1}}``,
  "start the request at time v0 and add parallelism from d_i to d_{i+1}
  after interval v_{i+1}".  The final degree ``n`` runs to completion.

The offline search enumerates S-form schedules (Figure 7); the interval
table stores and displays σ form (Table 2).  Conversions here are exact
and lossless up to collapsing zero-length phases, mirroring the paper's
example ``σ = {(0, d1), (50, d3)}  ⇔  S = {0, 50, 0}`` for ``n = 3``.

Time convention: σ step times are measured **from request arrival**
(so ``t_i = v0 + v1 + ... + v_i``), matching Eq. (1)'s total-latency
accounting.  The online scheduler instead needs thresholds relative to
*execution* start, provided by :meth:`Schedule.progress_steps`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.errors import InvalidScheduleError

__all__ = ["WAIT_FOR_EXIT", "ScheduleStep", "Schedule", "IntervalSchedule"]


class _WaitForExit:
    """Singleton sentinel for the ``e1`` admission-control marker."""

    _instance: "_WaitForExit | None" = None

    def __new__(cls) -> "_WaitForExit":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "e1"


#: The ``e1`` marker: a new request must wait until another exits.
WAIT_FOR_EXIT = _WaitForExit()


@dataclass(frozen=True)
class ScheduleStep:
    """One σ entry: at arrival-relative time ``time_ms`` switch to
    ``degree`` worker threads."""

    time_ms: float
    degree: int

    def __post_init__(self) -> None:
        if self.time_ms < 0 or not math.isfinite(self.time_ms):
            raise InvalidScheduleError(f"step time must be finite and >= 0: {self}")
        if self.degree < 1:
            raise InvalidScheduleError(f"step degree must be >= 1: {self}")


class Schedule:
    """σ-form schedule: ordered degree steps plus optional admission control.

    Parameters
    ----------
    steps:
        Non-empty sequence of :class:`ScheduleStep` with strictly
        increasing times and strictly increasing degrees (the FM
        non-decreasing-parallelism property of Theorem 1).
    wait_for_exit:
        When True, the request may not start until another request
        leaves the system (``t0 = e1`` in the paper); the first step's
        time then counts from the moment admission is granted.
    """

    def __init__(
        self, steps: list[ScheduleStep] | tuple[ScheduleStep, ...],
        wait_for_exit: bool = False,
    ) -> None:
        if not steps:
            raise InvalidScheduleError("schedule needs at least one step")
        for prev, cur in zip(steps, steps[1:]):
            if cur.time_ms <= prev.time_ms:
                raise InvalidScheduleError(
                    f"step times must strictly increase: {prev} -> {cur}"
                )
            if cur.degree <= prev.degree:
                raise InvalidScheduleError(
                    f"degrees must strictly increase (few-to-many): {prev} -> {cur}"
                )
        self.steps: tuple[ScheduleStep, ...] = tuple(steps)
        self.wait_for_exit = bool(wait_for_exit)

    @property
    def admission_delay_ms(self) -> float:
        """Arrival-to-start delay (``v0``); 0 when the request starts
        immediately.  Meaningless when :attr:`wait_for_exit` is set."""
        return self.steps[0].time_ms

    @property
    def initial_degree(self) -> int:
        """Parallelism degree the request starts executing with."""
        return self.steps[0].degree

    @property
    def max_degree(self) -> int:
        """Final (largest) parallelism degree of the schedule."""
        return self.steps[-1].degree

    def progress_steps(self) -> list[tuple[float, int]]:
        """Degree thresholds relative to *execution start*.

        Returns ``[(progress_ms, degree), ...]``: once a request has
        executed for ``progress_ms``, it should run with ``degree``
        threads.  The first entry is always ``(0.0, initial_degree)``.
        """
        start = self.admission_delay_ms
        return [(step.time_ms - start, step.degree) for step in self.steps]

    def degree_at_progress(self, progress_ms: float) -> int:
        """Degree a request should use after ``progress_ms`` of execution."""
        degree = self.steps[0].degree
        start = self.admission_delay_ms
        for step in self.steps:
            if step.time_ms - start <= progress_ms + 1e-12:
                degree = step.degree
            else:
                break
        return degree

    # ------------------------------------------------------------------
    def to_intervals(self, max_degree: int) -> "IntervalSchedule":
        """Convert to S form with ``n = max_degree`` (inverse of
        :meth:`IntervalSchedule.to_schedule`)."""
        if max_degree < self.max_degree:
            raise InvalidScheduleError(
                f"max_degree {max_degree} < schedule's top degree {self.max_degree}"
            )
        intervals = [0.0] * max_degree
        intervals[0] = 0.0 if self.wait_for_exit else self.admission_delay_ms
        for step, nxt in zip(self.steps, self.steps[1:]):
            # Phase at step.degree lasts until the next step; phases for
            # skipped degrees stay 0.
            intervals[step.degree] = nxt.time_ms - step.time_ms
        return IntervalSchedule(intervals, wait_for_exit=self.wait_for_exit)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation."""
        return {
            "wait_for_exit": self.wait_for_exit,
            "steps": [[step.time_ms, step.degree] for step in self.steps],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Schedule":
        """Inverse of :meth:`to_dict`."""
        steps = [ScheduleStep(float(t), int(d)) for t, d in data["steps"]]
        return cls(steps, wait_for_exit=bool(data.get("wait_for_exit", False)))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Schedule)
            and self.steps == other.steps
            and self.wait_for_exit == other.wait_for_exit
        )

    def __hash__(self) -> int:
        return hash((self.steps, self.wait_for_exit))

    def __repr__(self) -> str:
        parts = []
        for i, step in enumerate(self.steps):
            if self.wait_for_exit and i == 0:
                parts.append(f"(e1, d{step.degree})")
            else:
                parts.append(f"({step.time_ms:g}, d{step.degree})")
        return "Schedule{" + ", ".join(parts) + "}"

    def describe(self) -> str:
        """Human-readable one-liner in the paper's Table 2 style, e.g.
        ``"0, d1  50, d3"`` or ``"e1, d1  315, d2"``."""
        parts = []
        for i, step in enumerate(self.steps):
            time_txt = "e1" if (self.wait_for_exit and i == 0) else f"{step.time_ms:g}"
            parts.append(f"{time_txt}, d{step.degree}")
        return "  ".join(parts)


class IntervalSchedule:
    """S-form schedule: ``{v0, v1, ..., v_{n-1}}`` phase durations.

    ``v0`` is the admission delay; ``v_i`` (``1 <= i <= n-1``) is the
    time spent at degree ``i`` before stepping to degree ``i + 1``; the
    final degree ``n = len(intervals)`` runs until completion.  A zero
    ``v_i`` skips degree ``i`` entirely.
    """

    def __init__(
        self, intervals: list[float] | tuple[float, ...],
        wait_for_exit: bool = False,
    ) -> None:
        if not intervals:
            raise InvalidScheduleError("interval schedule needs at least v0")
        values = tuple(float(v) for v in intervals)
        for v in values:
            if v < 0 or not math.isfinite(v):
                raise InvalidScheduleError(f"intervals must be finite and >= 0: {values}")
        self.intervals: tuple[float, ...] = values
        self.wait_for_exit = bool(wait_for_exit)

    @property
    def v0(self) -> float:
        """Admission delay in milliseconds."""
        return self.intervals[0]

    @property
    def max_degree(self) -> int:
        """The schedule's final parallelism degree ``n``."""
        return len(self.intervals)

    def phase_duration(self, degree: int) -> float:
        """Time spent at ``degree`` before stepping up; ``inf`` for the
        final degree."""
        if not 1 <= degree <= self.max_degree:
            raise ValueError(f"degree must be in [1, {self.max_degree}]")
        if degree == self.max_degree:
            return math.inf
        return self.intervals[degree]

    def to_schedule(self) -> Schedule:
        """Convert to σ form, collapsing zero-length phases."""
        steps: list[ScheduleStep] = []
        t = 0.0 if self.wait_for_exit else self.v0
        n = self.max_degree
        for degree in range(1, n + 1):
            duration = self.intervals[degree] if degree < n else math.inf
            if duration > 0:
                steps.append(ScheduleStep(t, degree))
                if math.isfinite(duration):
                    t += duration
        return Schedule(steps, wait_for_exit=self.wait_for_exit)

    def to_dict(self) -> dict[str, Any]:
        """JSON-friendly representation."""
        return {"wait_for_exit": self.wait_for_exit, "intervals": list(self.intervals)}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "IntervalSchedule":
        """Inverse of :meth:`to_dict`."""
        return cls([float(v) for v in data["intervals"]],
                   wait_for_exit=bool(data.get("wait_for_exit", False)))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IntervalSchedule)
            and self.intervals == other.intervals
            and self.wait_for_exit == other.wait_for_exit
        )

    def __hash__(self) -> int:
        return hash((self.intervals, self.wait_for_exit))

    def __repr__(self) -> str:
        head = "e1, " if self.wait_for_exit else ""
        return f"IntervalSchedule{{{head}{', '.join(f'{v:g}' for v in self.intervals)}}}"
