"""Offline interval-selection search (Section 4.1, Figure 7).

Enumerates candidate S-form schedules on a quantized time grid, keeps
those whose expected total parallelism ``ap_R(S, q_r)`` stays within the
hardware target, and picks the one minimizing φ-tail latency (mean
latency breaking ties) for every load level ``q_r``.

Two implementations:

* :func:`exhaustive_search` — a literal transcription of the Figure 7
  pseudocode (nested loops over ``v0 .. v_{n-1}``).  Exponential; used
  as ground truth on tiny inputs.
* :func:`build_interval_table` — the production path with the paper's
  optimizations (interval steps, sum-of-intervals pruning, demand
  binning) plus one of our own: because the admission delay ``v0``
  shifts every completion time uniformly, the tail and mean for a
  candidate are ``tail_nov0 + v0`` / ``mean_nov0 + v0`` and the
  parallelism constraint is monotone in ``v0``, so the optimal ``v0``
  per candidate has the closed form ``ceil(max(0, (q_r * busy / target
  - time) / N) / step) * step`` instead of an enumeration dimension.
  Tests verify exact equivalence with the exhaustive search.

Admission control falls out of the search as in the paper: when the
best candidate at some load needs ``v0 >= y`` (the longest request in
the workload) or no candidate is feasible at all, the row becomes the
``e1`` marker — new requests wait for an exit — reusing the previous
row's degree intervals (exactly how Table 2's ``>= 25`` row relates to
row 24).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

from repro.core.demand import DemandProfile
from repro.core.formulas import (
    mean_latency,
    tail_latency,
    total_average_parallelism,
)
from repro.core.schedule import IntervalSchedule, Schedule, ScheduleStep
from repro.core.table import IntervalTable, TableMetadata
from repro.errors import ConfigurationError, SearchInfeasibleError

__all__ = ["SearchConfig", "build_interval_table", "exhaustive_search"]

_EPS = 1e-9


@dataclass(frozen=True)
class SearchConfig:
    """Inputs to the offline search (Table 1 / Section 4.1).

    Parameters
    ----------
    max_degree:
        Maximum software parallelism ``n`` per request (from the
        scalability analysis; 4 for Lucene, 3 for Bing).
    target_parallelism:
        Target hardware parallelism ``target_p`` — total software
        threads the system should sustain (24 for Lucene on 15 cores,
        16 for Bing on 12 cores: a slight oversubscription).
    step_ms:
        Interval quantization step (the paper uses 5 ms for Table 2).
    phi:
        Tail percentile to optimize (0.99 throughout the paper).
    max_interval_ms:
        ``y``, the largest interval value searched; defaults to the
        longest request in the profile, rounded up to a step.
    max_load:
        Highest load row to compute (the Figure 7 ``req_max`` input —
        the system's admission capacity).  Defaults to
        ``ceil(target_parallelism)``, reproducing Table 2's structure:
        rows up to the thread target, then the ``e1`` admission row
        (q >= 25 for ``target_p = 24``).  The search may emit the ``e1``
        row earlier if it saturates before the cap.
    num_bins:
        Collapse the profile into this many demand bins first (the
        paper's "few minutes" optimization).  ``None`` searches the raw
        profile.
    chunk_size:
        Candidate-grid chunk size for the vectorized evaluation,
        bounding peak memory.
    """

    max_degree: int
    target_parallelism: float
    step_ms: float = 5.0
    phi: float = 0.99
    max_interval_ms: float | None = None
    max_load: int | None = None
    num_bins: int | None = None
    chunk_size: int = 100_000
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.max_degree < 1:
            raise ConfigurationError(f"max_degree must be >= 1: {self.max_degree}")
        if self.target_parallelism <= 0:
            raise ConfigurationError(
                f"target_parallelism must be positive: {self.target_parallelism}"
            )
        if self.step_ms <= 0:
            raise ConfigurationError(f"step_ms must be positive: {self.step_ms}")
        if not 0.0 < self.phi <= 1.0:
            raise ConfigurationError(f"phi must be in (0, 1]: {self.phi}")
        if self.max_load is not None and self.max_load < 1:
            raise ConfigurationError(f"max_load must be >= 1: {self.max_load}")


# ----------------------------------------------------------------------
# Candidate grid
# ----------------------------------------------------------------------
def _grid_values(y: float, step: float) -> np.ndarray:
    """Quantized interval values ``0, step, ..., <= y``."""
    count = int(math.floor(y / step + _EPS)) + 1
    return np.arange(count, dtype=float) * step


def enumerate_combos(n: int, y: float, step: float) -> np.ndarray:
    """All ``(v1, ..., v_{n-1})`` combinations on the step grid with
    ``sum <= y`` (the paper's "sum of all intervals is less than the
    lifetime of a request" pruning), in lexicographic order.

    Returns a ``(G, n - 1)`` array; for ``n == 1`` a single empty combo.
    """
    dims = n - 1
    if dims == 0:
        return np.zeros((1, 0), dtype=float)
    values = _grid_values(y, step)
    combos: list[tuple[float, ...]] = []
    budget = y + _EPS

    def extend(prefix: tuple[float, ...], remaining: float, depth: int) -> None:
        if depth == dims:
            combos.append(prefix)
            return
        for v in values:
            if v > remaining:
                break
            extend(prefix + (v,), remaining - v, depth + 1)

    extend((), budget, 0)
    return np.array(combos, dtype=float).reshape(len(combos), dims)


# ----------------------------------------------------------------------
# Vectorized candidate statistics
# ----------------------------------------------------------------------
@dataclass
class _ComboStats:
    """Per-candidate aggregates over the whole profile (v0 excluded)."""

    tail: np.ndarray  # (G,) phi-tail completion time at v0 = 0
    mean: np.ndarray  # (G,) mean completion time at v0 = 0
    total_time: np.ndarray  # (G,) weighted sum of completion times at v0 = 0
    total_busy: np.ndarray  # (G,) weighted sum of CPU thread-time


def _evaluate_chunk(
    profile: DemandProfile, combos: np.ndarray, n: int, phi: float
) -> _ComboStats:
    """Phase-walk Eq. (1)/(2) for a chunk of candidates at ``v0 = 0``."""
    seq = profile.seq  # (B,)
    speeds = profile.speedups  # (B, >= n)
    weights = profile.weights  # (B,)
    g = len(combos)
    b = len(seq)
    times = np.zeros((g, b), dtype=float)
    busy = np.zeros((g, b), dtype=float)
    done = np.zeros((g, b), dtype=float)
    for degree in range(1, n):
        speed = speeds[:, degree - 1][None, :]  # (1, B)
        cap = speed * combos[:, degree - 1][:, None]  # (G, B)
        take = np.clip(seq[None, :] - done, 0.0, cap)
        duration = take / speed
        times += duration
        busy += degree * duration
        done += take
    speed_n = speeds[:, n - 1][None, :]
    final = (seq[None, :] - done) / speed_n
    times += final
    busy += n * final

    total_time = times @ weights
    total_busy = busy @ weights
    total_w = weights.sum()
    mean = total_time / total_w

    # Weighted phi-order statistic per row.  Completion time is not in
    # general monotone in demand (long requests may scale much better),
    # so sort each row.
    order = np.argsort(times, axis=1, kind="stable")
    sorted_times = np.take_along_axis(times, order, axis=1)
    cum = np.cumsum(weights[order], axis=1)
    target = math.ceil(phi * total_w - _EPS)
    idx = np.sum(cum < target - _EPS, axis=1)
    idx = np.minimum(idx, b - 1)
    tail = np.take_along_axis(sorted_times, idx[:, None], axis=1)[:, 0]
    return _ComboStats(tail=tail, mean=mean, total_time=total_time, total_busy=total_busy)


def _evaluate_all(
    profile: DemandProfile, combos: np.ndarray, n: int, phi: float, chunk: int
) -> _ComboStats:
    """Chunked evaluation keeping peak memory proportional to
    ``chunk * len(profile)``.

    The configured chunk size assumes a binned profile; for raw
    profiles (tens of thousands of rows) the chunk shrinks so one
    chunk's working set stays around 20M floats per array.
    """
    budget_elements = 20_000_000
    effective = max(64, min(chunk, budget_elements // max(1, len(profile))))
    parts = [
        _evaluate_chunk(profile, combos[start : start + effective], n, phi)
        for start in range(0, len(combos), effective)
    ]
    return _ComboStats(
        tail=np.concatenate([p.tail for p in parts]),
        mean=np.concatenate([p.mean for p in parts]),
        total_time=np.concatenate([p.total_time for p in parts]),
        total_busy=np.concatenate([p.total_busy for p in parts]),
    )


# ----------------------------------------------------------------------
# Table construction
# ----------------------------------------------------------------------
def build_interval_table(profile: DemandProfile, config: SearchConfig) -> IntervalTable:
    """Run the offline search and return the load-indexed interval table.

    Implements Figure 7 with the optimizations described in the module
    docstring.  Rows are computed for ``q_r = 1, 2, ...`` until the
    admission-control (``e1``) row appears or ``config.max_load`` is
    reached; the final row always applies to all higher loads.
    """
    if config.max_degree > profile.max_degree:
        raise ConfigurationError(
            f"max_degree {config.max_degree} exceeds profile speedup "
            f"columns {profile.max_degree}"
        )
    working = profile.binned(config.num_bins) if config.num_bins else profile
    n = config.max_degree
    step = config.step_ms
    y = config.max_interval_ms
    if y is None:
        y = math.ceil(working.max() / step) * step

    combos = enumerate_combos(n, y, step)
    stats = _evaluate_all(working, combos, n, config.phi, config.chunk_size)
    total_w = working.total_weight

    load_cap = config.max_load or max(1, int(math.ceil(config.target_parallelism)))
    schedules: list[Schedule] = []
    previous_combo: np.ndarray | None = None
    for q_r in range(1, load_cap + 1):
        # Closed-form minimal admission delay per candidate:
        # ap_R(S, q) = q * busy / (time + W * v0) <= target
        v0_min = (q_r * stats.total_busy / config.target_parallelism - stats.total_time) / total_w
        np.maximum(v0_min, 0.0, out=v0_min)
        v0 = np.ceil((v0_min - _EPS) / step) * step
        v0 += 0.0  # normalize -0.0 from the ceil of tiny negatives
        feasible = v0 <= y + _EPS
        if not feasible.any():
            schedules.append(_e1_row(previous_combo, n))
            break
        tail_q = np.where(feasible, stats.tail + v0, np.inf)
        mean_q = np.where(feasible, stats.mean + v0, np.inf)
        best = _lexicographic_argmin(tail_q, mean_q, v0)
        if v0[best] >= y - _EPS:
            # The search "returned v0 = y": admission control (Section
            # 4.1) — the row becomes e1 and the table is complete.
            schedules.append(_e1_row(previous_combo, n))
            break
        chosen = IntervalSchedule(
            [float(v0[best])] + [float(x) for x in combos[best]]
        )
        schedules.append(chosen.to_schedule())
        previous_combo = combos[best]
    else:
        # Loop exhausted without admission control; cap with an e1 row
        # so the table is total over loads.
        schedules.append(_e1_row(previous_combo, n))

    metadata = TableMetadata(
        target_parallelism=config.target_parallelism,
        max_degree=n,
        step_ms=step,
        phi=config.phi,
        extra={"max_interval_ms": y, "num_bins": config.num_bins, **config.extra},
    )
    return IntervalTable(schedules, metadata=metadata)


def _e1_row(previous_combo: np.ndarray | None, n: int) -> Schedule:
    """Build the ``e1`` admission row: wait for an exit, then follow the
    previous load's degree intervals (Table 2's ``>= 25`` row keeps row
    24's ``t1..t3``).  With no previous row, run sequentially."""
    if previous_combo is None or len(previous_combo) == 0:
        return Schedule([ScheduleStep(0.0, 1)], wait_for_exit=True)
    intervals = [0.0] + [float(v) for v in previous_combo]
    return IntervalSchedule(intervals, wait_for_exit=True).to_schedule()


def _lexicographic_argmin(
    tail: np.ndarray, mean: np.ndarray, v0: np.ndarray
) -> int:
    """Index minimizing ``(tail, mean, v0, position)`` — the same winner
    the Figure 7 loop order would keep."""
    best = int(np.argmin(tail))
    tol = 1e-9 * max(1.0, abs(tail[best]))
    tied = np.flatnonzero(tail <= tail[best] + tol)
    if len(tied) == 1:
        return best
    mean_best = mean[tied].min()
    tied = tied[mean[tied] <= mean_best + tol]
    if len(tied) == 1:
        return int(tied[0])
    v0_best = v0[tied].min()
    tied = tied[v0[tied] <= v0_best + tol]
    return int(tied[0])


# ----------------------------------------------------------------------
# Literal Figure 7 reference implementation
# ----------------------------------------------------------------------
def exhaustive_search(
    profile: DemandProfile, config: SearchConfig
) -> IntervalTable:
    """Direct transcription of the Figure 7 pseudocode.

    Nested loops over ``v0 .. v_{n-1}`` on the step grid; candidates are
    feasible when ``ap_R(S, q_r) <= target_p``; the kept schedule
    minimizes tail latency, then mean.  Exponential in ``n`` — use only
    on small profiles/grids (it exists to validate the fast path).
    """
    working = profile.binned(config.num_bins) if config.num_bins else profile
    n = config.max_degree
    step = config.step_ms
    y = config.max_interval_ms
    if y is None:
        y = math.ceil(working.max() / step) * step
    values = _grid_values(y, step)
    load_cap = config.max_load or max(1, int(math.ceil(config.target_parallelism)))

    schedules: list[Schedule] = []
    previous: IntervalSchedule | None = None
    for q_r in range(1, load_cap + 1):
        min_tail = math.inf
        min_mean = math.inf
        result: IntervalSchedule | None = None
        for candidate in _iter_candidates(values, n, y):
            schedule = IntervalSchedule(candidate)
            if total_average_parallelism(working, schedule, q_r) > (
                config.target_parallelism + _EPS
            ):
                continue
            tail = tail_latency(working, schedule, config.phi)
            mean = mean_latency(working, schedule)
            if tail < min_tail - _EPS or (
                abs(tail - min_tail) <= _EPS and mean < min_mean - _EPS
            ):
                min_tail, min_mean, result = tail, mean, schedule
        at_capacity = result is None or result.v0 >= y - _EPS
        if at_capacity:
            base = previous.intervals[1:] if previous is not None else ()
            schedules.append(_e1_row(np.array(base), n))
            break
        schedules.append(result.to_schedule())
        previous = result
    else:
        # Load cap reached without saturating: close the table with the
        # e1 row so it is total over loads (same as the fast path).
        base = previous.intervals[1:] if previous is not None else ()
        schedules.append(_e1_row(np.array(base), n))
    if not schedules:
        raise SearchInfeasibleError("no feasible schedule at load 1")

    metadata = TableMetadata(
        target_parallelism=config.target_parallelism,
        max_degree=n,
        step_ms=step,
        phi=config.phi,
        extra={"max_interval_ms": y, "exhaustive": True},
    )
    return IntervalTable(schedules, metadata=metadata)


def _iter_candidates(
    values: np.ndarray, n: int, y: float
) -> Iterator[list[float]]:
    """Yield ``[v0, v1, ..., v_{n-1}]`` in Figure 7 loop order, pruning
    interval sums above ``y`` (``v0`` is exempt: it is an admission
    delay, not execution progress)."""
    for v0 in values:
        for rest in itertools.product(values, repeat=n - 1):
            if sum(rest) > y + _EPS:
                continue
            yield [float(v0), *map(float, rest)]
