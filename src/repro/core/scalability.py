"""Scalability analysis: choosing the maximum software parallelism.

Section 4 ("Judicious use of software parallelism"): the offline phase
performs "a scalability analysis to determine a maximum degree of
software parallelism to introduce", limiting the degree "to the amount
effective at speeding up long requests".  The paper picks ``n = 4`` for
Lucene (speedup flat at 5+) and ``n = 3`` for Bing (efficiency drops
sharply at 4).

:func:`choose_max_degree` encodes that rule: keep adding degrees while
the marginal speedup of the *long* requests (the tail-latency drivers)
justifies the extra thread.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.demand import DemandProfile
from repro.errors import ConfigurationError

__all__ = ["choose_max_degree", "speedup_report", "SpeedupReportRow"]


def choose_max_degree(
    profile: DemandProfile,
    min_marginal_gain: float = 0.08,
    longest_fraction: float = 0.05,
    cap: int | None = None,
) -> int:
    """Pick the largest degree whose marginal speedup still pays off.

    Walks degrees ``2, 3, ...`` and stops before the first degree whose
    relative speedup gain for the longest ``longest_fraction`` of
    requests falls below ``min_marginal_gain``
    (``s(d) / s(d-1) - 1 < min_marginal_gain``).

    Parameters
    ----------
    profile:
        Demand profile carrying per-request speedup tables.
    min_marginal_gain:
        Minimum relative improvement a degree must deliver (default 8 %,
        which selects 4 for the Lucene-like curves and 3 for the
        Bing-like curves).
    longest_fraction:
        Which upper demand slice to evaluate (the paper profiles the
        longest 5 %).
    cap:
        Optional hard upper bound (e.g. the core count).
    """
    if not 0.0 < longest_fraction <= 1.0:
        raise ConfigurationError(f"longest_fraction must be in (0, 1]: {longest_fraction}")
    if min_marginal_gain < 0.0:
        raise ConfigurationError(f"min_marginal_gain must be >= 0: {min_marginal_gain}")
    limit = profile.max_degree if cap is None else min(cap, profile.max_degree)
    chosen = 1
    lo = 1.0 - longest_fraction
    for degree in range(2, limit + 1):
        current = profile.class_speedup(degree, lo, 1.0)
        previous = profile.class_speedup(degree - 1, lo, 1.0)
        if current / previous - 1.0 < min_marginal_gain:
            break
        chosen = degree
    return chosen


@dataclass(frozen=True)
class SpeedupReportRow:
    """One degree's speedups for the three request classes plotted in
    Figures 1(b) and 2(b)."""

    degree: int
    all_requests: float
    longest: float
    shortest: float


def speedup_report(
    profile: DemandProfile,
    max_degree: int | None = None,
    class_fraction: float = 0.05,
) -> list[SpeedupReportRow]:
    """Average speedup per degree for all requests, the longest
    ``class_fraction``, and the shortest ``class_fraction`` — the data
    behind Figures 1(b)/2(b)."""
    limit = max_degree or profile.max_degree
    rows = []
    for degree in range(1, limit + 1):
        rows.append(
            SpeedupReportRow(
                degree=degree,
                all_requests=profile.average_speedup(degree),
                longest=profile.class_speedup(degree, 1.0 - class_fraction, 1.0),
                shortest=profile.class_speedup(degree, 0.0, class_fraction),
            )
        )
    return rows
