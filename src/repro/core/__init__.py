"""The paper's primary contribution: FM offline analysis.

Demand profiles, schedule representations, the Figure 6 latency and
parallelism formulas, the Figure 7 interval-selection search, the
scalability analysis that bounds software parallelism, Theorem 1
machinery, and capacity/TCO planning.
"""

from repro.core.capacity import (
    LoadLatencyPoint,
    max_sustainable_rps,
    server_reduction,
    servers_needed,
)
from repro.core.demand import DemandProfile, RequestProfile
from repro.core.queueing import (
    mg1_ps_conditional_sojourn,
    mg1_ps_mean_sojourn,
    mg1_ps_slowdown,
    utilization,
)
from repro.core.formulas import (
    average_parallelism,
    busy_time,
    busy_times,
    completion_time,
    completion_times,
    mean_latency,
    tail_latency,
    total_average_parallelism,
    weighted_order_statistic,
)
from repro.core.scalability import SpeedupReportRow, choose_max_degree, speedup_report
from repro.core.schedule import (
    WAIT_FOR_EXIT,
    IntervalSchedule,
    Schedule,
    ScheduleStep,
)
from repro.core.search import SearchConfig, build_interval_table, exhaustive_search
from repro.core.speedup import (
    AmdahlSpeedup,
    LengthDependentSpeedupModel,
    LinearSpeedup,
    SpeedupCurve,
    SpeedupModel,
    TabulatedSpeedup,
    UniformSpeedupModel,
)
from repro.core.table import IntervalTable, TableMetadata
from repro.core.theory import WorkSchedule, WorkSegment, survival_integral

__all__ = [
    "AmdahlSpeedup",
    "DemandProfile",
    "IntervalSchedule",
    "IntervalTable",
    "LengthDependentSpeedupModel",
    "LinearSpeedup",
    "LoadLatencyPoint",
    "RequestProfile",
    "Schedule",
    "ScheduleStep",
    "SearchConfig",
    "SpeedupCurve",
    "SpeedupModel",
    "SpeedupReportRow",
    "TableMetadata",
    "TabulatedSpeedup",
    "UniformSpeedupModel",
    "WAIT_FOR_EXIT",
    "WorkSchedule",
    "WorkSegment",
    "average_parallelism",
    "build_interval_table",
    "busy_time",
    "busy_times",
    "choose_max_degree",
    "completion_time",
    "completion_times",
    "exhaustive_search",
    "max_sustainable_rps",
    "mean_latency",
    "mg1_ps_conditional_sojourn",
    "mg1_ps_mean_sojourn",
    "mg1_ps_slowdown",
    "server_reduction",
    "servers_needed",
    "speedup_report",
    "survival_integral",
    "tail_latency",
    "total_average_parallelism",
    "utilization",
    "weighted_order_statistic",
]
