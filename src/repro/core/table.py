"""The FM interval table (Section 4.1, Table 2).

An :class:`IntervalTable` maps instantaneous system load ``q_r`` (the
number of requests in the system) to a σ-form :class:`Schedule`.  The
offline search produces one row per load level from 1 up to the system's
admission capacity; at loads beyond the last row the last row applies
(by construction it carries the ``e1`` admission-control marker, so
excess requests queue).

Tables serialize to JSON so the offline phase can run "daily, weekly, or
at any other coarse granularity" and ship its output to servers, and
pretty-print in the layout of Table 2.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.core.schedule import Schedule
from repro.errors import ConfigurationError

__all__ = ["IntervalTable", "TableMetadata"]


@dataclass(frozen=True)
class TableMetadata:
    """Provenance of an interval table: the offline-search inputs."""

    target_parallelism: float
    max_degree: int
    step_ms: float
    phi: float = 0.99
    extra: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "target_parallelism": self.target_parallelism,
            "max_degree": self.max_degree,
            "step_ms": self.step_ms,
            "phi": self.phi,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TableMetadata":
        return cls(
            target_parallelism=float(data["target_parallelism"]),
            max_degree=int(data["max_degree"]),
            step_ms=float(data["step_ms"]),
            phi=float(data.get("phi", 0.99)),
            extra=dict(data.get("extra", {})),
        )


class IntervalTable:
    """Load-indexed schedule table — the offline phase's output.

    Parameters
    ----------
    schedules:
        ``schedules[i]`` is the schedule for load ``q_r = i + 1``; the
        list must be non-empty.  Loads above ``len(schedules)`` resolve
        to the last entry.
    metadata:
        Optional :class:`TableMetadata` recording the search inputs.
    """

    def __init__(
        self, schedules: list[Schedule], metadata: TableMetadata | None = None
    ) -> None:
        if not schedules:
            raise ConfigurationError("interval table needs at least one row")
        self._schedules: tuple[Schedule, ...] = tuple(schedules)
        self.metadata = metadata

    @property
    def max_load(self) -> int:
        """Largest load with an explicit row."""
        return len(self._schedules)

    def lookup(self, q_r: int) -> Schedule:
        """Schedule for instantaneous load ``q_r`` (clamped to the last
        row above :attr:`max_load`)."""
        if q_r < 1:
            raise ValueError(f"load must be >= 1, got {q_r}")
        return self._schedules[min(q_r, self.max_load) - 1]

    def __len__(self) -> int:
        return len(self._schedules)

    def __iter__(self):
        return iter(self._schedules)

    def rows(self) -> list[tuple[int, Schedule]]:
        """All ``(load, schedule)`` pairs."""
        return [(i + 1, s) for i, s in enumerate(self._schedules)]

    def admission_capacity(self) -> int | None:
        """Smallest load whose row says ``e1`` (wait for an exit), i.e.
        the number of requests the table admits concurrently; ``None``
        if the table never applies admission control."""
        for load, schedule in self.rows():
            if schedule.wait_for_exit:
                return load
        return None

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "metadata": self.metadata.to_dict() if self.metadata else None,
            "schedules": [s.to_dict() for s in self._schedules],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "IntervalTable":
        meta = data.get("metadata")
        return cls(
            [Schedule.from_dict(s) for s in data["schedules"]],
            metadata=TableMetadata.from_dict(meta) if meta else None,
        )

    def save(self, path: str | Path) -> None:
        """Write the table as JSON."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "IntervalTable":
        """Read a table written by :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    # ------------------------------------------------------------------
    # Display (Table 2 layout)
    # ------------------------------------------------------------------
    def format(self, collapse: bool = True) -> str:
        """Render in the paper's Table 2 layout.

        One line per load (or per run of equal-schedule loads when
        ``collapse`` is set, shown as ``4-6``), columns ``t0 t1 ...``
        with entries like ``50, d3`` and ``e1, d1`` for admission
        control.
        """
        width = max(len(s.steps) for s in self._schedules)
        groups: list[tuple[int, int, Schedule]] = []
        for load, schedule in self.rows():
            if collapse and groups and groups[-1][2] == schedule:
                start, _, existing = groups[-1]
                groups[-1] = (start, load, existing)
            else:
                groups.append((load, load, schedule))

        header = ["q_r"] + [f"t{i}" for i in range(width)]
        table_rows: list[list[str]] = [header]
        last_index = len(groups) - 1
        for i, (start, end, schedule) in enumerate(groups):
            if i == last_index and end == self.max_load and start != end:
                label = f">={start}"
            elif start == end:
                label = f"{start}"
            else:
                label = f"{start}-{end}"
            cells = [label]
            for j, step in enumerate(schedule.steps):
                time_txt = "e1" if (schedule.wait_for_exit and j == 0) else f"{step.time_ms:g}"
                cells.append(f"{time_txt}, d{step.degree}")
            cells.extend([""] * (width + 1 - len(cells)))
            table_rows.append(cells)

        widths = [max(len(row[c]) for row in table_rows) for c in range(width + 1)]
        lines = [
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
            for row in table_rows
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"IntervalTable(rows={self.max_load})"
