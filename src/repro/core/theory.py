"""Theorem 1 machinery (Section 3.2 and the Appendix).

The theorem: given a service-demand distribution ``F`` and a sublinear
speedup function ``s``, among schedules meeting a φ-tail latency
constraint ``d``, one that minimizes expected resource usage assigns
parallelism in *non-decreasing* order — few-to-many.

The appendix formalizes a schedule as a map from work cycles to degrees:
``S(x) = i`` means the ``x``-th unit of sequential work is executed with
degree ``i`` (at speed ``s(i)``).  The objective and constraint are

* resource usage  ``∫₀ʷ [1 - F(x)] · S(x) / s(S(x)) dx``   (Eq. 6)
* deadline        ``∫₀ʷ 1 / s(S(x)) dx ≤ d``                (Eq. 7)

with ``w = F⁻¹(φ)``.  This module makes both computable for
piecewise-constant schedules (:class:`WorkSchedule`) against empirical
demand profiles, and implements the appendix's exchange argument as an
executable transformation, so tests and the ablation bench can verify:

* swapping a decreasing degree pair never increases resource usage and
  never changes total processing time (the proof's inequality);
* sorting segments into non-decreasing degree order is therefore
  optimal within a multiset of segments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.demand import DemandProfile
from repro.core.speedup import SpeedupCurve
from repro.errors import InvalidScheduleError

__all__ = ["WorkSegment", "WorkSchedule", "survival_integral"]


@dataclass(frozen=True)
class WorkSegment:
    """A run of ``work`` sequential-work units executed at ``degree``."""

    work: float
    degree: int

    def __post_init__(self) -> None:
        if self.work < 0:
            raise InvalidScheduleError(f"segment work must be >= 0: {self}")
        if self.degree < 1:
            raise InvalidScheduleError(f"segment degree must be >= 1: {self}")


def survival_integral(profile: DemandProfile, a: float, b: float) -> float:
    """``∫ₐᵇ [1 - F(x)] dx`` for the profile's empirical demand CDF.

    ``1 - F(x)`` is the weighted fraction of requests with demand
    ``> x``; the integral is the expected demand each request
    contributes inside ``[a, b)``.
    """
    if b < a:
        raise ValueError(f"need a <= b, got [{a}, {b})")
    seq = profile.seq
    w = profile.weights
    overlap = np.clip(seq - a, 0.0, b - a)
    return float(np.dot(overlap, w) / w.sum())


class WorkSchedule:
    """Piecewise-constant work-to-degree schedule (the appendix's S(x)).

    Segments are executed in order; segment boundaries live in *work*
    space (cycles), not time space.
    """

    def __init__(self, segments: list[WorkSegment] | tuple[WorkSegment, ...]) -> None:
        if not segments:
            raise InvalidScheduleError("work schedule needs at least one segment")
        self.segments: tuple[WorkSegment, ...] = tuple(segments)

    @property
    def total_work(self) -> float:
        """Total sequential work covered (should equal ``w = F⁻¹(φ)``)."""
        return sum(seg.work for seg in self.segments)

    def is_non_decreasing(self) -> bool:
        """True when degrees never drop — the few-to-many property."""
        degrees = [seg.degree for seg in self.segments if seg.work > 0]
        return all(a <= b for a, b in zip(degrees, degrees[1:]))

    def processing_time(self, speedup: SpeedupCurve) -> float:
        """Eq. 7 left side: time to complete all covered work."""
        return sum(seg.work / speedup.speedup(seg.degree) for seg in self.segments)

    def resource_usage(self, profile: DemandProfile, speedup: SpeedupCurve) -> float:
        """Eq. 6: expected core-time consumed per request under this
        schedule, against the profile's empirical demand distribution."""
        total = 0.0
        x = 0.0
        for seg in self.segments:
            if seg.work == 0:
                continue
            s = speedup.speedup(seg.degree)
            total += survival_integral(profile, x, x + seg.work) * seg.degree / s
            x += seg.work
        return total

    def meets_deadline(self, speedup: SpeedupCurve, deadline: float) -> bool:
        """Whether the schedule completes the covered work by ``deadline``."""
        return self.processing_time(speedup) <= deadline + 1e-9

    # ------------------------------------------------------------------
    # The appendix's exchange argument, as executable transformations.
    # ------------------------------------------------------------------
    def swap(self, i: int, j: int) -> "WorkSchedule":
        """Exchange the degrees of segments ``i`` and ``j`` *including*
        their work extents (the proof swaps equal-measure slices; swapping
        whole segments with their work preserves both total work and, by
        construction, the processing time of each slice).

        Note degrees move with their work amounts, so total processing
        time is invariant — exactly the proof's setup.
        """
        if not (0 <= i < len(self.segments) and 0 <= j < len(self.segments)):
            raise IndexError(f"segment index out of range: {i}, {j}")
        segs = list(self.segments)
        segs[i], segs[j] = segs[j], segs[i]
        return WorkSchedule(segs)

    def sorted_non_decreasing(self) -> "WorkSchedule":
        """The canonical few-to-many reordering: same segment multiset,
        degrees non-decreasing.  By Theorem 1 this never has higher
        resource usage and has identical processing time."""
        return WorkSchedule(sorted(self.segments, key=lambda seg: seg.degree))

    def __repr__(self) -> str:
        inner = ", ".join(f"{seg.work:g}@d{seg.degree}" for seg in self.segments)
        return f"WorkSchedule[{inner}]"
