"""Service-demand profiles — the offline phase's primary input.

A :class:`DemandProfile` is the reproduction of the paper's "request
demand profile": for every profiled request, its sequential execution
time and its speedup at each parallelism degree (Table 1: ``r in R``,
``seq_r``, ``s_r(d_j)``).  Profiles also provide the histogram and
percentile views used in Figures 1(a) and 2(a), and the demand-binning
optimization of Section 4.1 ("grouping requests into demand distribution
bins with their frequencies, which reduces our computation time to a few
minutes").

Profiles are value objects: arrays are copied on construction and never
mutated.  All times are in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.speedup import SpeedupCurve, SpeedupModel, TabulatedSpeedup
from repro.errors import InvalidProfileError

__all__ = ["DemandProfile", "RequestProfile"]


@dataclass(frozen=True)
class RequestProfile:
    """One profiled request: sequential demand plus its speedup curve."""

    seq_ms: float
    speedup: SpeedupCurve

    def parallel_time(self, degree: int) -> float:
        """Execution time when run with ``degree`` dedicated cores."""
        return self.seq_ms / self.speedup.speedup(degree)


class DemandProfile:
    """An immutable collection of request profiles.

    Internally column-oriented for the vectorized offline search:

    * ``seq`` — ``(N,)`` sequential times, sorted ascending;
    * ``speedups`` — ``(N, max_degree)`` where column ``j`` holds
      ``s_r(j + 1)``;
    * ``weights`` — ``(N,)`` positive multiplicities (1.0 for raw
      profiles; bin frequencies for binned profiles).

    Sorting by demand is a structural invariant that the tail-latency
    formula exploits: request completion time under any FM schedule is
    non-decreasing in sequential demand *when speedup curves are also
    ordered* (longer requests parallelize at least as well — true for
    all workloads in the paper), so percentiles reduce to an index
    lookup.
    """

    def __init__(
        self,
        seq_ms: Sequence[float] | np.ndarray,
        speedups: np.ndarray,
        weights: Sequence[float] | np.ndarray | None = None,
    ) -> None:
        seq = np.asarray(seq_ms, dtype=float).copy()
        if seq.ndim != 1 or len(seq) == 0:
            raise InvalidProfileError("profile needs a non-empty 1-D demand array")
        if np.any(seq <= 0) or not np.all(np.isfinite(seq)):
            raise InvalidProfileError("sequential demands must be positive and finite")
        tables = np.asarray(speedups, dtype=float).copy()
        if tables.shape != (len(seq), tables.shape[1]) or tables.shape[1] < 1:
            raise InvalidProfileError(
                f"speedups must be (N, max_degree), got {tables.shape}"
            )
        if not np.allclose(tables[:, 0], 1.0):
            raise InvalidProfileError("speedup column 0 must be s(1) = 1.0")
        if np.any(np.diff(tables, axis=1) < -1e-9):
            raise InvalidProfileError("speedup tables must be non-decreasing in degree")
        if weights is None:
            w = np.ones(len(seq), dtype=float)
        else:
            w = np.asarray(weights, dtype=float).copy()
            if w.shape != seq.shape or np.any(w <= 0):
                raise InvalidProfileError("weights must be positive, one per request")

        order = np.argsort(seq, kind="stable")
        self._seq = seq[order]
        self._speedups = tables[order]
        self._weights = w[order]
        self._seq.setflags(write=False)
        self._speedups.setflags(write=False)
        self._weights.setflags(write=False)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_requests(
        cls, requests: Iterable[RequestProfile], max_degree: int
    ) -> "DemandProfile":
        """Build a profile from individual :class:`RequestProfile` objects."""
        reqs = list(requests)
        if not reqs:
            raise InvalidProfileError("no requests given")
        seq = np.array([r.seq_ms for r in reqs], dtype=float)
        tables = np.stack([r.speedup.table(max_degree) for r in reqs])
        return cls(seq, tables)

    @classmethod
    def from_model(
        cls,
        seq_ms: Sequence[float] | np.ndarray,
        model: SpeedupModel,
        max_degree: int,
    ) -> "DemandProfile":
        """Build a profile by attaching model-derived speedup curves to
        measured (or generated) sequential times."""
        seq = np.asarray(seq_ms, dtype=float)
        return cls(seq, model.tables_for(seq, max_degree))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def seq(self) -> np.ndarray:
        """Sorted sequential demands, milliseconds, shape ``(N,)``."""
        return self._seq

    @property
    def speedups(self) -> np.ndarray:
        """Speedup tables aligned with :attr:`seq`, shape ``(N, max_degree)``."""
        return self._speedups

    @property
    def weights(self) -> np.ndarray:
        """Request multiplicities aligned with :attr:`seq`."""
        return self._weights

    @property
    def max_degree(self) -> int:
        """Largest parallelism degree the profile carries speedups for."""
        return self._speedups.shape[1]

    def __len__(self) -> int:
        return len(self._seq)

    @property
    def total_weight(self) -> float:
        """Total request count represented (sum of multiplicities)."""
        return float(self._weights.sum())

    def request(self, index: int) -> RequestProfile:
        """Materialize request ``index`` as a :class:`RequestProfile`."""
        return RequestProfile(
            seq_ms=float(self._seq[index]),
            speedup=TabulatedSpeedup(self._speedups[index]),
        )

    # ------------------------------------------------------------------
    # Statistics (Figures 1(a) / 2(a))
    # ------------------------------------------------------------------
    def mean(self) -> float:
        """Weighted mean sequential demand."""
        return float(np.average(self._seq, weights=self._weights))

    def percentile(self, phi: float) -> float:
        """Weighted ``phi``-quantile of sequential demand, ``phi`` in (0, 1].

        Uses the paper's order-statistic definition (Eq. 5): the demand
        of the ``ceil(phi * N)``-th smallest request.
        """
        if not 0.0 < phi <= 1.0:
            raise ValueError(f"phi must be in (0, 1], got {phi}")
        cum = np.cumsum(self._weights)
        target = phi * cum[-1]
        index = int(np.searchsorted(cum, target - 1e-9))
        return float(self._seq[min(index, len(self._seq) - 1)])

    def median(self) -> float:
        """Weighted median sequential demand."""
        return self.percentile(0.5)

    def max(self) -> float:
        """Longest sequential demand in the profile."""
        return float(self._seq[-1])

    def histogram(self, bin_ms: float) -> tuple[np.ndarray, np.ndarray]:
        """Demand histogram with fixed-width bins, as plotted in
        Figures 1(a)/2(a).

        Returns ``(edges, counts)`` where ``edges`` has one more entry
        than ``counts``.
        """
        if bin_ms <= 0:
            raise ValueError(f"bin_ms must be positive, got {bin_ms}")
        top = float(np.ceil(self._seq[-1] / bin_ms)) * bin_ms
        edges = np.arange(0.0, top + bin_ms / 2, bin_ms)
        counts, _ = np.histogram(self._seq, bins=edges, weights=self._weights)
        return edges, counts

    def average_speedup(self, degree: int) -> float:
        """Weighted mean speedup at ``degree`` over all requests
        (the "All requests" series of Figures 1(b)/2(b))."""
        if not 1 <= degree <= self.max_degree:
            raise ValueError(f"degree must be in [1, {self.max_degree}]")
        return float(np.average(self._speedups[:, degree - 1], weights=self._weights))

    def class_speedup(self, degree: int, lo: float, hi: float) -> float:
        """Weighted mean speedup at ``degree`` over requests whose demand
        percentile rank lies in ``[lo, hi)`` — e.g. ``(0.95, 1.0)`` for
        the "Longest 5 %" series."""
        cum = np.cumsum(self._weights)
        ranks = (cum - self._weights / 2) / cum[-1]
        mask = (ranks >= lo) & (ranks < hi)
        if not mask.any():
            raise InvalidProfileError(f"no requests in percentile band [{lo}, {hi})")
        return float(
            np.average(self._speedups[mask, degree - 1], weights=self._weights[mask])
        )

    # ------------------------------------------------------------------
    # Binning (the fast offline-search path)
    # ------------------------------------------------------------------
    def binned(self, num_bins: int) -> "DemandProfile":
        """Collapse the profile into ``num_bins`` equal-population demand
        bins, each represented by its weighted-mean demand and speedups.

        This is the paper's computation-time optimization; the search
        accepts either form.  Binning preserves total weight.
        """
        if num_bins < 1:
            raise ValueError(f"num_bins must be >= 1, got {num_bins}")
        if num_bins >= len(self._seq):
            return self
        cum = np.cumsum(self._weights)
        boundaries = np.linspace(0.0, cum[-1], num_bins + 1)[1:-1]
        splits = np.searchsorted(cum, boundaries, side="left") + 1
        groups = np.split(np.arange(len(self._seq)), splits)
        seq, tables, weights = [], [], []
        for group in groups:
            if len(group) == 0:
                continue
            w = self._weights[group]
            seq.append(np.average(self._seq[group], weights=w))
            tables.append(np.average(self._speedups[group], axis=0, weights=w))
            weights.append(w.sum())
        tables_arr = np.stack(tables)
        tables_arr[:, 0] = 1.0
        return DemandProfile(np.array(seq), tables_arr, np.array(weights))

    def subsample(self, n: int, rng: np.random.Generator) -> "DemandProfile":
        """Random subsample of ``n`` requests (uniform over multiplicity),
        for cheap experimentation; weights reset to 1."""
        if n < 1:
            raise ValueError(f"n must be >= 1, got {n}")
        probabilities = self._weights / self._weights.sum()
        idx = rng.choice(len(self._seq), size=min(n, len(self._seq)),
                         replace=False, p=probabilities)
        return DemandProfile(self._seq[idx], self._speedups[idx])
