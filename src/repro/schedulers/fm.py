"""FM — Few-to-Many incremental parallelization (Section 4.2).

The online half of the paper's contribution.  Each request:

1. On arrival, indexes the interval table by the instantaneous load
   ``q_r`` (number of requests in the system, itself included).  The
   row's ``t0`` decides admission: 0 starts immediately at the row's
   initial degree; ``t0 > 0`` delays the start; ``e1`` queues the
   request until another exits.
2. While running, self-schedules every quantum: re-reads the load,
   re-indexes the table, and raises its degree to the row's prescription
   for its current execution progress.  Degrees never decrease; when
   load spikes the request simply stops climbing (higher rows have
   longer intervals), and when load drops it climbs faster — the
   self-correction of Section 4.2.
3. When stepping to the row's maximum degree, it requests selective
   thread priority boosting, granted while the global boosted-thread
   count stays below the core count.
"""

from __future__ import annotations

from repro.core.table import IntervalTable
from repro.errors import ConfigurationError
from repro.sim.api import Admission, Scheduler, SchedulerContext
from repro.sim.request import SimRequest

__all__ = ["FMScheduler"]


class FMScheduler(Scheduler):
    """Interval-table-driven incremental parallelism.

    Parameters
    ----------
    table:
        The offline phase's output (:func:`repro.core.build_interval_table`).
    boosting:
        Enable selective thread priority boosting (Section 4.2).  The
        paper's Bing deployment runs without it; Lucene with it.
    progress:
        Which execution-progress index drives the interval thresholds:
        ``"effective"`` (default) uses contention-normalized time, so a
        request slowed by oversubscription climbs the table in
        proportion to work actually done; ``"wall"`` uses elapsed wall
        time, the paper's literal implementation.  Wall-clock indexing
        over-parallelizes under sustained contention (requests age
        without progressing); the ablation bench quantifies the gap.
    max_backlog:
        Overload load shedding: when an arrival lands on the ``e1`` row
        and the backlog already holds this many requests, reject it
        immediately (fail fast) instead of letting the queue destroy
        every later request's tail.  ``None`` disables the bound.
    deadline_ms:
        Deadline budget: a request whose *queueing* delay exceeds this
        budget is shed at its next wait-check — by then the client has
        given up, so executing it would only burn cores.  ``None``
        disables deadline shedding.
    """

    name = "FM"

    def __init__(
        self,
        table: IntervalTable,
        boosting: bool = True,
        progress: str = "effective",
        max_backlog: int | None = None,
        deadline_ms: float | None = None,
    ) -> None:
        if len(table) < 1:
            raise ConfigurationError("FM needs a non-empty interval table")
        if progress not in ("effective", "wall"):
            raise ConfigurationError(f"progress must be effective|wall: {progress}")
        if max_backlog is not None and max_backlog < 0:
            raise ConfigurationError(f"max_backlog must be >= 0: {max_backlog}")
        if deadline_ms is not None and deadline_ms <= 0:
            raise ConfigurationError(f"deadline_ms must be positive: {deadline_ms}")
        self.table = table
        self.boosting = boosting
        self.progress = progress
        self.max_backlog = max_backlog
        self.deadline_ms = deadline_ms
        if not boosting:
            self.name = "FM-noboost"
        if progress == "wall":
            self.name += "/wall"
        if max_backlog is not None or deadline_ms is not None:
            self.name += "+shed"

    # ------------------------------------------------------------------
    def on_arrival(self, ctx: SchedulerContext, request: SimRequest) -> Admission:
        row = self.table.lookup(ctx.system_count)
        if row.wait_for_exit:
            if self.max_backlog is not None and ctx.queued_count >= self.max_backlog:
                return Admission.shed()
            return Admission.wait_for_exit()
        if row.admission_delay_ms > 0:
            return Admission.delay(row.admission_delay_ms)
        return Admission.start(row.initial_degree)

    def on_wait_check(self, ctx: SchedulerContext, request: SimRequest) -> Admission:
        """Re-evaluate a waiting request against the *current* load row.

        The required wait is the row's ``t0`` measured from arrival; if
        the request has already waited that long it starts now,
        otherwise it keeps waiting for the remainder.  A row that says
        ``e1`` keeps it queued.  A request whose queueing delay has
        blown its deadline budget is shed (fail fast).
        """
        waited = ctx.now_ms - request.arrival_ms
        if self.deadline_ms is not None and waited > self.deadline_ms:
            return Admission.shed(deadline=True)
        row = self.table.lookup(ctx.system_count)
        if row.wait_for_exit:
            return Admission.wait_for_exit()
        remaining = row.admission_delay_ms - waited
        if remaining > 1e-9:
            return Admission.delay(remaining)
        return Admission.start(row.initial_degree)

    def on_quantum(self, ctx: SchedulerContext, request: SimRequest) -> int:
        row = self.table.lookup(ctx.system_count)
        if self.progress == "effective":
            progress = request.effective_progress_ms()
        else:
            progress = request.progress_ms(ctx.now_ms)
        desired = max(row.degree_at_progress(progress), request.degree)
        if (
            self.boosting
            and desired > request.degree
            and desired >= row.max_degree
            and not request.boosted
        ):
            # Boost only when stepping to the maximum degree and only
            # within the global budget (Section 4.2).
            ctx.try_boost(request, desired)
        return desired
