"""FIX-N: a predefined fixed parallelism degree per request (Section 5).

Reduces tail latency at low load but oversubscribes as load grows
(Figure 3: FIX-4 crosses above SEQ near 42 RPS in Lucene).

Two production variants from the paper are supported:

* **load protection** (Section 7.2): Bing's production FIX-3
  parallelizes "when the total number of requests in the system is less
  than 30; otherwise, it runs requests sequentially";
* **age-based boosting** (Figure 10(c)): the FIX-3+boosting ablation
  grants old requests boosted thread priority, approximating FM's
  selective boosting without its incremental degrees.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.api import Admission, Scheduler, SchedulerContext
from repro.sim.request import SimRequest

__all__ = ["FixedScheduler"]


class FixedScheduler(Scheduler):
    """Constant degree-N parallelism.

    Parameters
    ----------
    degree:
        Worker threads per request.
    load_protection:
        When set, requests arriving while ``system_count`` is at or
        above this value run sequentially instead.
    boost_after_ms:
        When set, a request that has executed this long requests boosted
        priority for its threads (subject to the global budget).
    """

    def __init__(
        self,
        degree: int,
        load_protection: int | None = None,
        boost_after_ms: float | None = None,
    ) -> None:
        if degree < 1:
            raise ConfigurationError(f"degree must be >= 1, got {degree}")
        if load_protection is not None and load_protection < 1:
            raise ConfigurationError(f"load_protection must be >= 1: {load_protection}")
        if boost_after_ms is not None and boost_after_ms < 0:
            raise ConfigurationError(f"boost_after_ms must be >= 0: {boost_after_ms}")
        self.degree = degree
        self.load_protection = load_protection
        self.boost_after_ms = boost_after_ms
        self.uses_quantum = boost_after_ms is not None
        self.name = f"FIX-{degree}"
        if load_protection is not None:
            self.name += f"/lp{load_protection}"
        if boost_after_ms is not None:
            self.name += "+boost"

    def on_arrival(self, ctx: SchedulerContext, request: SimRequest) -> Admission:
        if self.load_protection is not None and ctx.system_count >= self.load_protection:
            return Admission.start(1)
        return Admission.start(self.degree)

    def on_quantum(self, ctx: SchedulerContext, request: SimRequest) -> int:
        if (
            self.boost_after_ms is not None
            and not request.boosted
            and request.progress_ms(ctx.now_ms) >= self.boost_after_ms
        ):
            ctx.try_boost(request, request.degree)
        return request.degree
