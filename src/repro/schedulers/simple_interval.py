"""The Figure 4 strawman: add one thread every fixed interval.

"The simplest approach to incremental parallelism is to simply add
parallelism periodically, e.g., add one thread to each request after a
fixed time interval.  Unfortunately, this approach does a poor job of
controlling the total parallelism, regardless of the interval length."
(Section 3.3.)  Simp-20ms/100ms/500ms in the paper's plots.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.api import Admission, Scheduler, SchedulerContext
from repro.sim.request import SimRequest

__all__ = ["SimpleIntervalScheduler"]


class SimpleIntervalScheduler(Scheduler):
    """Start sequential; gain one thread per ``interval_ms`` of
    execution, up to ``max_degree`` — oblivious to system load."""

    def __init__(self, interval_ms: float, max_degree: int) -> None:
        if interval_ms <= 0:
            raise ConfigurationError(f"interval_ms must be positive: {interval_ms}")
        if max_degree < 1:
            raise ConfigurationError(f"max_degree must be >= 1: {max_degree}")
        self.interval_ms = interval_ms
        self.max_degree = max_degree
        self.name = f"Simp-{interval_ms:g}ms"

    def on_arrival(self, ctx: SchedulerContext, request: SimRequest) -> Admission:
        return Admission.start(1)

    def on_quantum(self, ctx: SchedulerContext, request: SimRequest) -> int:
        elapsed = request.progress_ms(ctx.now_ms)
        return min(1 + int(elapsed // self.interval_ms), self.max_degree)
