"""Hurry-up: deadline-endangered requests migrate to big cores.

A reimplementation of the scheduling idea in "Hurry-up: Scaling Web
Search on Big/Little Multi-core Architectures" (Nishtala et al., see
PAPERS.md) inside our fluid simulator: every request starts on the
*little* (slowest) pool at a fixed parallelism degree, and a request
whose age crosses an endangerment threshold — a fraction of the
service deadline — is migrated wholesale onto the *big* (fastest) pool
so it can still make the deadline.  Parallelism itself is static, like
FIX-N; the only actuator is placement, which is exactly what makes it
the right baseline to separate "where" gains from FM's "how many"
gains in the ``hetero-energy`` experiment.

On a homogeneous topology (or the legacy engine) there is only one
pool, migration is a no-op, and the policy degenerates to FIX-N.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.api import Admission, Scheduler, SchedulerContext
from repro.sim.request import SimRequest

__all__ = ["HurryUpScheduler"]


class HurryUpScheduler(Scheduler):
    """Fixed-degree parallelism with deadline-driven big-core rescue.

    Parameters
    ----------
    degree:
        Worker threads per request (static, like FIX-N).
    deadline_ms:
        The service deadline the policy protects.
    endangered_fraction:
        A request older than ``endangered_fraction * deadline_ms`` is
        considered deadline-endangered and migrates to the fastest
        pool at its next quantum.
    load_protection:
        Bing-style load protection: arrivals seeing ``system_count``
        at or above this run sequentially instead.
    """

    uses_quantum = True

    def __init__(
        self,
        degree: int = 3,
        deadline_ms: float = 200.0,
        endangered_fraction: float = 0.4,
        load_protection: int | None = None,
    ) -> None:
        if degree < 1:
            raise ConfigurationError(f"degree must be >= 1, got {degree}")
        if deadline_ms <= 0:
            raise ConfigurationError(f"deadline_ms must be positive: {deadline_ms}")
        if not 0.0 < endangered_fraction <= 1.0:
            raise ConfigurationError(
                f"endangered_fraction must be in (0, 1]: {endangered_fraction}"
            )
        if load_protection is not None and load_protection < 1:
            raise ConfigurationError(f"load_protection must be >= 1: {load_protection}")
        self.degree = degree
        self.deadline_ms = deadline_ms
        self.endangered_fraction = endangered_fraction
        self.load_protection = load_protection
        self.name = f"Hurry-up-{degree}"
        if load_protection is not None:
            self.name += f"/lp{load_protection}"

    @property
    def endangered_age_ms(self) -> float:
        """Age past which a request migrates to the fastest pool."""
        return self.endangered_fraction * self.deadline_ms

    def on_arrival(self, ctx: SchedulerContext, request: SimRequest) -> Admission:
        degree = self.degree
        if self.load_protection is not None and ctx.system_count >= self.load_protection:
            degree = 1
        # Everyone starts on the little cluster; speed is earned by
        # aging toward the deadline, not granted up front.
        return Admission.start(degree, pool=ctx.slowest_pool)

    def on_quantum(self, ctx: SchedulerContext, request: SimRequest) -> int:
        age_ms = ctx.now_ms - request.arrival_ms
        if age_ms >= self.endangered_age_ms:
            fastest = ctx.fastest_pool
            if request.pool != fastest:
                ctx.migrate(request, fastest)
        return request.degree
