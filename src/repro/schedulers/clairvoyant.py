"""Request Clairvoyant (RC) — the oracular predictive baseline.

Section 5: "This scheduler is oracular, because it is given all
requests' sequential execution times.  It is an upper bound on
predictive scheduling [Jeon et al., SIGIR 2014] ... It selects a
parallelism degree for long requests when they enter the system based
on a threshold and executes other requests sequentially.  The
parallelism degree is constant."

The paper tunes the threshold empirically (225 ms for Lucene);
:func:`tune_threshold` reproduces that offline grid search against the
demand profile using the Figure 6 formulas.
"""

from __future__ import annotations

import numpy as np

from repro.core.demand import DemandProfile
from repro.errors import ConfigurationError
from repro.sim.api import Admission, Scheduler, SchedulerContext
from repro.sim.request import SimRequest

__all__ = ["ClairvoyantScheduler", "tune_threshold"]


class ClairvoyantScheduler(Scheduler):
    """Oracle length threshold: long requests run at ``degree``, short
    ones sequentially.  Load-oblivious by design (its weakness)."""

    uses_quantum = False

    def __init__(self, threshold_ms: float, degree: int) -> None:
        if threshold_ms < 0:
            raise ConfigurationError(f"threshold_ms must be >= 0: {threshold_ms}")
        if degree < 1:
            raise ConfigurationError(f"degree must be >= 1: {degree}")
        self.threshold_ms = threshold_ms
        self.degree = degree
        self.name = f"RC({threshold_ms:g}ms,d{degree})"

    def on_arrival(self, ctx: SchedulerContext, request: SimRequest) -> Admission:
        if request.seq_ms >= self.threshold_ms:
            return Admission.start(self.degree)
        return Admission.start(1)


def tune_threshold(
    profile: DemandProfile,
    degree: int,
    target_parallelism: float | None = None,
    load: int | None = None,
    candidates: np.ndarray | None = None,
) -> float:
    """Offline grid search for the best RC threshold.

    Mirrors "we experimentally search for the best threshold": lowering
    the threshold parallelizes more requests (shorter tail) but raises
    total parallelism and therefore contention.  Without a resource
    budget the optimum degenerates to "parallelize everything", so the
    tuning keeps the same constraint the FM search uses: at a reference
    load of ``load`` concurrent requests, RC's expected total
    parallelism ``q * sum(busy) / sum(time)`` must fit within
    ``target_parallelism``.  Among feasible thresholds the smallest wins
    (isolated tail latency is non-increasing as more requests
    parallelize).

    Callers normally pass the system's thread target as
    ``target_parallelism`` (it defaults to ``4 * degree`` when absent);
    ``load`` defaults to ``target_parallelism / 2`` — the high-load
    operating point, where average per-request parallelism is around 2.
    """
    if target_parallelism is None:
        target_parallelism = 4.0 * degree
    if load is None:
        load = max(1, int(round(target_parallelism / 2)))
    if candidates is None:
        candidates = np.unique(np.percentile(profile.seq, np.arange(1, 100)))
    speed = profile.speedups[:, min(degree, profile.max_degree) - 1]
    weights = profile.weights
    for threshold in np.sort(candidates):
        is_long = profile.seq >= threshold
        times = np.where(is_long, profile.seq / speed, profile.seq)
        busy = np.where(is_long, degree * profile.seq / speed, profile.seq)
        ap = load * np.dot(busy, weights) / np.dot(times, weights)
        if ap <= target_parallelism + 1e-9:
            return float(threshold)
    return float(profile.max())
