"""Scheduling policies evaluated in the paper (Section 5).

* :class:`SequentialScheduler` — SEQ: every request runs with 1 thread.
* :class:`FixedScheduler` — FIX-N: constant degree N, optionally with
  Bing-style load protection and age-based priority boosting.
* :class:`SimpleIntervalScheduler` — the Figure 4 strawman: +1 thread
  every fixed interval, ignoring load.
* :class:`AdaptiveScheduler` — Jeon et al. (EuroSys 2013): degree chosen
  from load at arrival, constant thereafter.
* :class:`ClairvoyantScheduler` — RC: oracle sequential times; long
  requests get a fixed degree, short ones run sequentially.
* :class:`FMScheduler` — the paper's contribution: interval-table
  driven incremental parallelism with admission control and selective
  thread priority boosting.
* :class:`ReprofilingFMScheduler` — extension: FM with the paper's
  periodic offline analysis run online against observed demand.
* :class:`HurryUpScheduler` — Nishtala et al.'s big/little baseline:
  fixed degree, deadline-endangered requests migrate to big cores.
* :class:`EnergyAwareFMScheduler` — EA-FM: FM degrees with
  little-first placement and earned big-core promotion.
"""

from repro.schedulers.adaptive import AdaptiveScheduler
from repro.schedulers.clairvoyant import ClairvoyantScheduler
from repro.schedulers.energy_fm import EnergyAwareFMScheduler
from repro.schedulers.fixed import FixedScheduler
from repro.schedulers.fm import FMScheduler
from repro.schedulers.hurryup import HurryUpScheduler
from repro.schedulers.reprofiling import ReprofilingFMScheduler
from repro.schedulers.sequential import SequentialScheduler
from repro.schedulers.simple_interval import SimpleIntervalScheduler

__all__ = [
    "AdaptiveScheduler",
    "ClairvoyantScheduler",
    "EnergyAwareFMScheduler",
    "FixedScheduler",
    "FMScheduler",
    "HurryUpScheduler",
    "ReprofilingFMScheduler",
    "SequentialScheduler",
    "SimpleIntervalScheduler",
]
