"""SEQ: every request executes sequentially (Section 5).

The reference point for all comparisons — it never oversubscribes, but
long requests run at full sequential length, dominating the tail.
"""

from __future__ import annotations

from repro.sim.api import Admission, Scheduler, SchedulerContext
from repro.sim.request import SimRequest

__all__ = ["SequentialScheduler"]


class SequentialScheduler(Scheduler):
    """One worker thread per request, forever."""

    uses_quantum = False
    name = "SEQ"

    def on_arrival(self, ctx: SchedulerContext, request: SimRequest) -> Admission:
        return Admission.start(1)
