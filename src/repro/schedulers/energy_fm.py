"""EA-FM: energy-aware Few-to-Many on heterogeneous core pools.

The degree policy is exactly FM's (interval table, incremental raises,
selective boosting) — what changes is *placement*:

* every request is admitted onto the *slowest* (little) pool, where a
  millisecond of work costs the fewest joules;
* a request is migrated to the *fastest* (big) pool only when it is
  deadline-endangered: FM has boosted it, or it has aged past
  ``rescue_age_ms`` while the big pool has occupancy headroom.

The crucial *negative* choice is what does **not** promote: a request
FM decides to widen.  Wide requests are the long, work-heavy ones — in
a heavy-tailed workload they carry most of the total work-milliseconds
— so "promote whatever FM parallelizes" moves the bulk of the offered
work onto the power-hungry pool and loses the energy race against a
policy that never migrates at all.  Parallelism on little cores is
cheap; big-core speed is reserved for requests that are already late.
Age, not width, is the promotion signal (the same endangerment test
Hurry-up uses), which keeps the big pool's work share to the tail
slice that actually buys 99th-percentile latency.

Short requests therefore live and die on little cores, wide-but-young
requests fan out across little cores, and only the aging tail climbs
onto big silicon — spending big-core joules exactly where they move
the tail.

On a single-pool topology every placement decision is the identity, so
EA-FM is bit-identical to plain FM (attested in the test suite); it
composes unchanged with FM's shedding (``max_backlog``/``deadline_ms``)
and the fault machinery because it only wraps admissions with a pool
and adds migrations.
"""

from __future__ import annotations

from repro.core.table import IntervalTable
from repro.errors import ConfigurationError
from repro.schedulers.fm import FMScheduler
from repro.sim.api import Admission, AdmissionAction, SchedulerContext
from repro.sim.request import SimRequest

__all__ = ["EnergyAwareFMScheduler"]


class EnergyAwareFMScheduler(FMScheduler):
    """FM with little-first placement and endangered-only big rescue.

    Parameters
    ----------
    table, boosting, progress, max_backlog, deadline_ms:
        Passed through to :class:`~repro.schedulers.fm.FMScheduler`.
    rescue_age_ms:
        A request older than this is deadline-endangered and migrates
        to the fastest pool — provided the pool has headroom.
    min_free_cores:
        Occupancy headroom the fastest pool must have for an age-based
        rescue.  The default (2.2) approximates one max-degree
        request's occupancy under the Bing spin fraction, i.e. "room
        for the migrant".  Boosted requests skip this gate: FM only
        boosts the extreme tail, and those always get the fast
        silicon.
    """

    def __init__(
        self,
        table: IntervalTable,
        boosting: bool = True,
        progress: str = "effective",
        max_backlog: int | None = None,
        deadline_ms: float | None = None,
        rescue_age_ms: float = 50.0,
        min_free_cores: float = 2.2,
    ) -> None:
        super().__init__(
            table,
            boosting=boosting,
            progress=progress,
            max_backlog=max_backlog,
            deadline_ms=deadline_ms,
        )
        if rescue_age_ms <= 0:
            raise ConfigurationError(f"rescue_age_ms must be positive: {rescue_age_ms}")
        if min_free_cores < 0:
            raise ConfigurationError(f"min_free_cores must be >= 0: {min_free_cores}")
        self.rescue_age_ms = rescue_age_ms
        self.min_free_cores = min_free_cores
        self.name = "EA-" + self.name

    # ------------------------------------------------------------------
    def _park_on_little(
        self, ctx: SchedulerContext, decision: Admission
    ) -> Admission:
        """Pin START admissions to the slowest pool — while it has
        occupancy headroom.  When the little cluster is saturated the
        decision is left unplaced and the engine default (fastest pool
        with headroom) applies, so EA-FM degrades into plain FM
        placement at saturation instead of piling arrivals onto an
        already-overloaded little pool."""
        if decision.action is AdmissionAction.START and decision.pool is None:
            slowest = ctx.slowest_pool
            if ctx.pool_free_cores(slowest) > 0.0:
                return Admission.start(decision.degree, pool=slowest)
        return decision

    def on_arrival(self, ctx: SchedulerContext, request: SimRequest) -> Admission:
        return self._park_on_little(ctx, super().on_arrival(ctx, request))

    def on_wait_check(self, ctx: SchedulerContext, request: SimRequest) -> Admission:
        return self._park_on_little(ctx, super().on_wait_check(ctx, request))

    def on_quantum(self, ctx: SchedulerContext, request: SimRequest) -> int:
        desired = super().on_quantum(ctx, request)
        fastest = ctx.fastest_pool
        if request.pool != fastest and (
            request.boosted
            or (
                ctx.now_ms - request.arrival_ms >= self.rescue_age_ms
                and ctx.pool_free_cores(fastest) >= self.min_free_cores
            )
        ):
            ctx.migrate(request, fastest)
        return desired
