"""Online re-profiling FM — the paper's periodic-analysis loop, closed.

Section 2: "Although the individual requests submitted to a service
change frequently, the demand profile of these requests changes slowly,
making periodic offline or online processing practical", and §4.1: "The
offline analysis can run daily, weekly, or at any other coarse
granularity, as dictated by the characteristics of the workload."

:class:`ReprofilingFMScheduler` implements that loop inside the server:
it runs FM off a current interval table while collecting the sequential
demands of completed requests into a sliding window; every
``rebuild_every_ms`` of virtual time it rebuilds the demand profile
from the window (attaching the standing speedup model — parallelism
efficiency is a property of the engine and hardware, which do not
drift), re-runs the interval search, and swaps the table atomically.

When the workload drifts (e.g. a new query mix doubles the tail), the
static table's intervals are mis-calibrated; the re-profiling variant
converges to the new optimum within one rebuild period.  The
``ext-reprofile`` experiment quantifies this.

With an :class:`~repro.observe.slo.SLOMonitor` attached, the loop also
closes on *latency* rather than just the timer: when the monitor's
short-window percentile drifts away from its long-window baseline —
the mix shifted — the scheduler rebuilds immediately (subject to
``drift_cooldown_ms``) instead of waiting out the period.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.demand import DemandProfile
from repro.core.search import SearchConfig, build_interval_table
from repro.core.speedup import SpeedupModel
from repro.core.table import IntervalTable
from repro.errors import ConfigurationError
from repro.schedulers.fm import FMScheduler
from repro.sim.api import SchedulerContext
from repro.sim.request import SimRequest
from repro.telemetry import resolve_telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.observe.slo import SLOMonitor

__all__ = ["ReprofilingFMScheduler"]


class ReprofilingFMScheduler(FMScheduler):
    """FM with a periodic profile-and-rebuild loop.

    Parameters
    ----------
    initial_table:
        The table to start from (built from whatever profile was
        available at deploy time).
    speedup_model:
        Maps observed sequential demands to speedup curves when
        rebuilding the profile.
    search_config:
        Search parameters for rebuilds.  ``num_bins`` should be set —
        rebuilds run inline with the simulation.
    window:
        Number of most-recent completions the rolling profile keeps.
    rebuild_every_ms:
        Virtual-time period between rebuilds (the paper's "daily or
        weekly", compressed to simulation scale).
    min_samples:
        Don't rebuild until this many completions were observed.
    slo_monitor:
        Optional :class:`~repro.observe.slo.SLOMonitor`.  Every
        completion is fed to it; a drift verdict triggers an immediate
        rebuild (recorded in ``drift_rebuilds``) without waiting for
        the timer.
    drift_cooldown_ms:
        Minimum virtual time between drift-triggered rebuilds, so a
        sustained drift doesn't rebuild on every completion while the
        windows converge.
    """

    def __init__(
        self,
        initial_table: IntervalTable,
        speedup_model: SpeedupModel,
        search_config: SearchConfig,
        window: int = 2000,
        rebuild_every_ms: float = 10_000.0,
        min_samples: int = 200,
        boosting: bool = True,
        slo_monitor: "SLOMonitor | None" = None,
        drift_cooldown_ms: float = 2_000.0,
    ) -> None:
        super().__init__(initial_table, boosting=boosting)
        if window < 10:
            raise ConfigurationError(f"window must be >= 10: {window}")
        if rebuild_every_ms <= 0:
            raise ConfigurationError(
                f"rebuild_every_ms must be positive: {rebuild_every_ms}"
            )
        if min_samples < 10:
            raise ConfigurationError(f"min_samples must be >= 10: {min_samples}")
        self.name = "FM-reprofile"
        self._initial_table = initial_table
        self.speedup_model = speedup_model
        self.search_config = search_config
        self.window = window
        self.rebuild_every_ms = rebuild_every_ms
        self.min_samples = min_samples
        if drift_cooldown_ms <= 0:
            raise ConfigurationError(
                f"drift_cooldown_ms must be positive: {drift_cooldown_ms}"
            )
        self.slo_monitor = slo_monitor
        self.drift_cooldown_ms = drift_cooldown_ms
        self._samples: list[float] = []
        self._last_rebuild_ms = 0.0
        #: Rebuild timestamps, for observability and tests.
        self.rebuilds: list[float] = []
        #: Subset of ``rebuilds`` that the SLO monitor's drift signal
        #: triggered ahead of the timer.
        self.drift_rebuilds: list[float] = []

    def reset(self) -> None:
        self.table = self._initial_table
        self._samples = []
        self._last_rebuild_ms = 0.0
        self.rebuilds = []
        self.drift_rebuilds = []
        if self.slo_monitor is not None:
            self.slo_monitor.reset()

    def on_exit(self, ctx: SchedulerContext, request: SimRequest) -> None:
        self._samples.append(request.seq_ms)
        if len(self._samples) > self.window:
            del self._samples[: len(self._samples) - self.window]
        enough = len(self._samples) >= self.min_samples
        due = ctx.now_ms - self._last_rebuild_ms >= self.rebuild_every_ms
        monitor = self.slo_monitor
        if monitor is not None:
            monitor.observe(request.latency_ms, at_ms=ctx.now_ms)
            cooled = ctx.now_ms - self._last_rebuild_ms >= self.drift_cooldown_ms
            if enough and cooled and not due and monitor.drifted():
                self._rebuild(ctx.now_ms)
                self.drift_rebuilds.append(ctx.now_ms)
                return
        if due and enough:
            self._rebuild(ctx.now_ms)

    def _rebuild(self, now_ms: float) -> None:
        """Re-run the offline analysis on the observed window."""
        profile = DemandProfile.from_model(
            self._samples, self.speedup_model, self.search_config.max_degree
        )
        self.table = build_interval_table(profile, self.search_config)
        self._last_rebuild_ms = now_ms
        self.rebuilds.append(now_ms)
        # Rebuilds are rare and load-bearing: surface each as an
        # observability event.  The scheduler holds no telemetry handle
        # (SchedulerContext exposes none), so the ambient pipeline —
        # installed by --trace — is resolved on this cold path only.
        telemetry = resolve_telemetry(None)
        if telemetry is not None:
            telemetry.tracer.instant(
                "observe.event",
                track="observe",
                at_ms=now_ms,
                kind="reprofile",
                samples=len(self._samples),
                rebuilds=len(self.rebuilds),
            )
