"""Adaptive parallelism (Jeon et al., EuroSys 2013) — the prior state
of the art the paper compares against (Section 5).

"This scheduler selects the parallelism degree for a request based on
load when the request first enters the system.  The parallelism degree
remains constant."  It adapts to load but cannot distinguish short from
long requests, so at moderate-to-high load it still parallelizes the
plentiful short requests.

The degree rule divides the thread budget by the instantaneous request
count: with ``target_p`` total threads available and ``q`` requests in
the system, each new request gets ``target_p / q`` threads (clamped to
``[1, max_degree]``) — aggressive when idle, sequential when busy.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.sim.api import Admission, Scheduler, SchedulerContext
from repro.sim.request import SimRequest

__all__ = ["AdaptiveScheduler"]


class AdaptiveScheduler(Scheduler):
    """Load-at-arrival parallelism with a constant degree thereafter."""

    uses_quantum = False
    name = "Adaptive"

    def __init__(self, max_degree: int, target_parallelism: float) -> None:
        if max_degree < 1:
            raise ConfigurationError(f"max_degree must be >= 1: {max_degree}")
        if target_parallelism < 1:
            raise ConfigurationError(
                f"target_parallelism must be >= 1: {target_parallelism}"
            )
        self.max_degree = max_degree
        self.target_parallelism = target_parallelism

    def on_arrival(self, ctx: SchedulerContext, request: SimRequest) -> Admission:
        load = max(1, ctx.system_count)
        degree = int(self.target_parallelism // load)
        return Admission.start(min(max(degree, 1), self.max_degree))
