"""Core allocation: occupancy-based processor sharing with boosting.

How many cores does a degree-``d`` request occupy?  Its threads deliver
``s(d)`` cores' worth of useful work (the measured speedup), and the
shortfall ``d - s(d)`` splits two ways:

* a *spin* share — parallelization overhead that burns CPU (partition
  and merge work, synchronization spinning): occupies cores;
* a *blocked* share — workers idling at synchronization points, e.g.
  waiting for the slowest index segment: occupies nothing, so other
  requests can use those cores.  This harvestable idleness is exactly
  why the paper sets the thread target *above* the core count ("threads
  may occasionally block for synchronization or more rarely I/O" —
  24 threads on 15 cores for Lucene, 16 on 12 for Bing).

Occupancy is therefore ``o(d) = s(d) + spin * (d - s(d))`` with
``spin`` in [0, 1] a workload property.  A sequential request occupies
exactly one core (``o(1) = 1``).  While total occupancy fits within the
``M`` cores every request runs at full speed; beyond that the OS
round-robins and unboosted requests scale down proportionally — except
*boosted* threads (Section 4.2's selective priority boosting), which
are scheduled whenever ready and therefore keep full speed (the boost
budget keeps boosted threads below the core count).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.request import SimRequest

__all__ = ["ThreadAllocation", "occupancy", "compute_shares", "BoostController"]


@dataclass(frozen=True, slots=True)
class ThreadAllocation:
    """Per-request outcome of one allocation round.

    ``progress_factor`` multiplies the request's speedup (1.0 = no
    contention); ``core_alloc`` is the total physical-core share the
    request's threads consume (for utilization accounting).
    """

    progress_factor: float
    core_alloc: float


def occupancy(speedup: float, degree: int, spin_fraction: float) -> float:
    """Cores a degree-``degree`` request occupies when unconstrained."""
    if degree < 1:
        raise SimulationError(f"degree must be >= 1, got {degree}")
    if speedup < 1.0 - 1e-9 or speedup > degree + 1e-9:
        raise SimulationError(f"speedup {speedup} out of [1, {degree}]")
    return speedup + spin_fraction * (degree - speedup)


def compute_shares(
    running: Iterable["SimRequest"], cores: int, spin_fraction: float = 0.25
) -> dict[int, ThreadAllocation]:
    """Allocate cores to every running request.

    Returns ``{rid: ThreadAllocation}``.  Boosted requests' occupancy is
    satisfied first (they never slow down while the boost invariant
    holds); unboosted requests share the remaining capacity, scaling
    down proportionally when oversubscribed.
    """
    if not 0.0 <= spin_fraction <= 1.0:
        raise SimulationError(f"spin_fraction must be in [0, 1]: {spin_fraction}")
    requests = list(running)
    demands = {
        r.rid: occupancy(r.speedup.speedup(r.degree), r.degree, spin_fraction)
        for r in requests
    }
    boosted_demand = sum(demands[r.rid] for r in requests if r.boosted)
    unboosted_demand = sum(demands[r.rid] for r in requests if not r.boosted)

    boosted_factor = min(1.0, cores / boosted_demand) if boosted_demand > 0 else 1.0
    remaining = cores - boosted_demand * boosted_factor
    if unboosted_demand > 0:
        unboosted_factor = min(1.0, max(0.0, remaining) / unboosted_demand)
    else:
        unboosted_factor = 1.0

    out: dict[int, ThreadAllocation] = {}
    for request in requests:
        factor = boosted_factor if request.boosted else unboosted_factor
        out[request.rid] = ThreadAllocation(
            progress_factor=factor, core_alloc=demands[request.rid] * factor
        )
    return out


class BoostController:
    """Tracks the global boosted-thread budget (Section 4.2).

    The paper: "We only boost a request when increasing its parallelism
    to the maximum degree and when the resulting total number of boosted
    threads will be less than the number of cores."  The *when* is the
    policy's call; this controller enforces the budget and keeps the
    synchronized count the paper implements with a shared variable.
    """

    def __init__(self, cores: int) -> None:
        if cores < 1:
            raise SimulationError(f"cores must be >= 1, got {cores}")
        self.cores = cores
        self.boosted_threads = 0
        self._held: dict[int, int] = {}

    def try_boost(self, request: "SimRequest", degree: int) -> bool:
        """Grant boosted priority to all ``degree`` threads of ``request``
        if the budget allows; returns whether the request is boosted."""
        if request.rid in self._held:
            return True
        if degree < 1:
            raise SimulationError(f"boost degree must be >= 1, got {degree}")
        if self.boosted_threads + degree >= self.cores:
            # Denied: mark the request so the flight recorder charges
            # subsequent contention slowdown to boost wait — the
            # latency component this denial creates.
            request.boost_pending = True
            return False
        self.boosted_threads += degree
        self._held[request.rid] = degree
        request.boosted = True
        request.boost_pending = False
        return True

    def release(self, request: "SimRequest") -> None:
        """Return a completed request's boosted threads to the budget."""
        held = self._held.pop(request.rid, 0)
        self.boosted_threads -= held
        request.boosted = False
        if self.boosted_threads < 0:
            raise SimulationError("boosted thread count went negative")

    def reset(self) -> None:
        """Clear all grants (between simulation runs)."""
        self.boosted_threads = 0
        self._held.clear()
