"""The virtual-time multicore server engine.

A fluid discrete-event simulation: between state-change events every
request's work-depletion rate is constant, so the engine only touches
state when something happens — an arrival, an admission-delay expiry, a
self-scheduling quantum, or a completion.  Completions are *tentative*
events computed from current rates and carry a generation number; any
rate change (degree raise, boost, arrival, exit) bumps the generation,
invalidating stale completions still in the heap.

Determinism: given identical arrival specs and scheduler state the run
is bit-for-bit reproducible — the event queue breaks time ties by
insertion order and no wall-clock or randomness enters the engine.

Hot-path structure (DESIGN.md §10): the engine is the inner loop of
every load sweep, so the per-event work is kept incremental.  Per-degree
speedup and occupancy are cached on the request and refreshed only when
the degree changes; each rate refresh is two tight passes over the
running set (re-accumulate the two demand sums, then rescale factors,
rates, and the earliest tentative completion in one sweep) with no dict
or allocation churn; the commit loop inlines
:meth:`~repro.sim.request.SimRequest.advance`; the backlog is a
``deque`` and delayed ids a sorted list.  Every optimization preserves
bit-for-bit identity with the frozen reference implementation in
:mod:`repro.sim._baseline` — in particular the demand sums are
re-accumulated in running-set order rather than maintained by
add/subtract, because float addition is non-associative and
incrementally-maintained sums would drift from the reference.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import deque
from heapq import heappop
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Sequence

from repro.core.speedup import SpeedupCurve
from repro.errors import SimulationError
from repro.faults.plan import CoreFault, FaultPlan, StallFault
from repro.hetero.energy import EnergyReport, PoolEnergy
from repro.hetero.pools import Topology
from repro.sim.api import Admission, AdmissionAction, Scheduler, SchedulerContext
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.metrics import MetricsCollector, SimulationResult
from repro.sim.processor import BoostController, occupancy
from repro.sim.request import RequestState, SimRequest
from repro.telemetry import Telemetry, resolve_telemetry
from repro.telemetry.spans import Span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (observe -> sim)
    from repro.observe.live import LivePlane

__all__ = ["ArrivalSpec", "Engine", "simulate"]

# FAULT event payload tags (internal).
_CORE_LOSS = "core_loss"
_CORE_RESTORE = "core_restore"
_STALL = "stall"
_STALL_END = "stall_end"

_FINISH_EPS = 1e-6  # ms — one nanosecond of slack for float residue
_INF = float("inf")


@dataclass(frozen=True)
class ArrivalSpec:
    """One request the open-loop client will submit."""

    time_ms: float
    seq_ms: float
    speedup: SpeedupCurve
    tag: Any = None


class Engine:
    """Simulates one multicore server under a scheduling policy.

    An engine runs **once**: :meth:`run` raises on a second call rather
    than silently mixing stale clocks, requests, and metrics into a new
    simulation — construct a fresh engine (or use :func:`simulate`) per
    run.

    Parameters
    ----------
    cores:
        Hardware parallelism (15 for the Lucene testbed, 12 for Bing).
    scheduler:
        The policy deciding admission, degrees, and boosting.
    quantum_ms:
        Self-scheduling period (Section 6.1 uses 5 ms).
    spin_fraction:
        Fraction of lost parallelism (``d - s(d)``) that burns CPU
        rather than blocking (see :mod:`repro.sim.processor`).
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan` injecting core
        loss/restore events, per-request straggler inflation, and
        transient worker stalls.  Plans are fully materialized and
        seeded, so injection preserves bit-for-bit reproducibility.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` pipeline.  When
        resolved (explicitly or via an installed ambient pipeline) the
        engine emits per-request spans on the ``"sim"`` track — a
        retroactive ``queue`` span covering any admission wait, a
        ``run`` span from start to completion (with a ``boost``
        instant when priority boosting fires), and a ``shed`` span for
        rejected requests — plus counters and a latency histogram,
        all timestamped in *virtual* milliseconds.  When absent (the
        default) no telemetry code runs at all.
    attribution:
        The per-request flight recorder (on by default): every
        committed interval is charged to one of the additive latency
        components — queue wait, full-speed-equivalent service,
        contention inflation, boost wait, stall — which surface on
        :class:`~repro.sim.metrics.RequestRecord`, as ``sim.attr.*``
        histograms, and as attrs on the ``run`` span.  Disable to shave
        the accounting from the hot loop (``BENCH_observe.json``
        quantifies the cost).
    topology:
        Optional :class:`~repro.hetero.pools.Topology` of typed core
        pools (big/little, DVFS-resolved speeds and powers).  When set,
        processor sharing runs *per pool* (a request's threads occupy
        exactly one pool), rates scale by the pool speed, and a
        deterministic energy accumulator tracks active/spin/idle joules
        per pool (DESIGN.md §12).  ``topology.total_cores`` must equal
        ``cores``.  When ``None`` (the default) the legacy homogeneous
        path runs untouched — and a single-pool topology at speed 1.0
        is attested bit-identical to it, because every hetero-path
        float operation reduces to the legacy one (``x * 1.0`` is exact
        in IEEE 754 and the per-pool demand sums accumulate in the same
        running-set order).
    """

    def __init__(
        self,
        cores: int,
        scheduler: Scheduler,
        quantum_ms: float = 5.0,
        spin_fraction: float = 0.25,
        fault_plan: FaultPlan | None = None,
        telemetry: Telemetry | None = None,
        attribution: bool = True,
        topology: Topology | None = None,
        live: "LivePlane | None" = None,
        collector: MetricsCollector | None = None,
    ) -> None:
        if cores < 1:
            raise SimulationError(f"cores must be >= 1, got {cores}")
        if quantum_ms <= 0:
            raise SimulationError(f"quantum_ms must be positive, got {quantum_ms}")
        if not 0.0 <= spin_fraction <= 1.0:
            raise SimulationError(f"spin_fraction must be in [0, 1]: {spin_fraction}")
        if topology is not None and topology.total_cores != cores:
            raise SimulationError(
                f"topology has {topology.total_cores} cores, engine asked for {cores}"
            )
        self.cores = cores
        self.scheduler = scheduler
        self.quantum_ms = quantum_ms
        self.spin_fraction = spin_fraction
        self.fault_plan = fault_plan
        self.boost = BoostController(cores)

        self.now_ms = 0.0
        self._cores_online = cores
        self._queue = EventQueue()
        self._requests: dict[int, SimRequest] = {}
        self._running: dict[int, SimRequest] = {}
        self._waiting_fifo: deque[int] = deque()  # e1-queued request ids, FIFO
        self._delayed: list[int] = []  # mid-delay request ids, sorted (= arrival order)
        self._candidate = 0  # requests mid-admission (counted in the load)
        self._generation = 0
        self._rates_dirty = False
        #: Streaming-mode state (DESIGN.md §14): when :meth:`run` is
        #: handed an iterator instead of a sequence, arrivals are
        #: generated lazily (one in flight ahead of the clock) and
        #: finished requests are dropped from the table, so memory is
        #: O(running set) instead of O(total requests).
        self._stream: Iterator[ArrivalSpec] | None = None
        self._discard_done = False
        self._submitted = 0
        self._next_rid = 0
        self._last_stream_ms = 0.0
        #: ``collector`` swaps the record-keeping strategy: the default
        #: :class:`MetricsCollector` keeps every RequestRecord (full
        #: SimulationResult); a streaming collector (repro.sim.stream)
        #: folds completions into mergeable histograms instead.
        self._metrics = collector if collector is not None else MetricsCollector(cores)
        self._ctx = SchedulerContext(self)
        self._completed = 0
        self._shed = 0
        self._ran = False
        #: Events drained from the queue by :meth:`run` (including stale
        #: tentative completions) — the numerator of events/sec benches.
        self.events_processed = 0
        self.telemetry = resolve_telemetry(telemetry)
        self.attribution = attribution
        #: Optional live observability plane (repro.observe.live): each
        #: completion and fault feeds its window stream.  Costs one
        #: attribute check per completion when absent.
        self._live = live
        self._run_spans: dict[int, Span] = {}

        #: Heterogeneous-topology state (repro.hetero).  The per-pool
        #: arrays are indexed by pool position; energy accumulates in
        #: watt-milliseconds (= millijoules) and converts to joules in
        #: the final :class:`~repro.hetero.energy.EnergyReport`.  The
        #: hot-path entry points are rebound per instance so the legacy
        #: run loop never pays a single ``if`` for the hetero feature.
        self.topology = topology
        self._hetero = topology is not None
        if topology is not None:
            npools = len(topology)
            self._npools = npools
            self._pool_names = [pool.name for pool in topology]
            self._pool_speeds = [pool.effective_speed for pool in topology]
            self._pool_active_w = [pool.effective_active_power_w for pool in topology]
            self._pool_idle_w = [pool.effective_idle_power_w for pool in topology]
            self._pool_online = [pool.count for pool in topology]
            self._pools_by_speed = sorted(
                range(npools), key=lambda i: (-self._pool_speeds[i], i)
            )
            self._e_active = [0.0] * npools
            self._e_spin = [0.0] * npools
            self._e_idle = [0.0] * npools
            self._commit = self._commit_hetero  # type: ignore[method-assign]
            self._recompute_rates = (  # type: ignore[method-assign]
                self._recompute_rates_hetero
            )

    # ------------------------------------------------------------------
    # Observable state (SchedulerContext reads these)
    # ------------------------------------------------------------------
    @property
    def system_count(self) -> int:
        """The interval-table load index: requests *admitted* to the
        system (running or waiting out an admission delay), plus the
        candidate currently being evaluated.

        Requests queued behind the ``e1`` marker are outside the system
        — they have not been admitted — so they do not inflate the
        index (otherwise a transient backlog would pin every later
        lookup at the ``e1`` row and starve the server).
        """
        return len(self._running) + len(self._delayed) + self._candidate

    @property
    def running_count(self) -> int:
        return len(self._running)

    @property
    def total_threads(self) -> int:
        return sum(r.degree for r in self._running.values())

    @property
    def queued_count(self) -> int:
        """Size of the ``e1`` backlog (the quantity shedding bounds)."""
        return len(self._waiting_fifo)

    @property
    def cores_online(self) -> int:
        """Cores currently available (reduced while a core fault is live)."""
        return self._cores_online

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(
        self, arrivals: Sequence[ArrivalSpec] | Iterable[ArrivalSpec]
    ) -> SimulationResult:
        """Execute all arrivals to completion and return the metrics.

        Engines are single-shot: a second call raises
        :class:`~repro.errors.SimulationError` instead of reusing the
        first run's clock, request table, and metric integrals.

        ``arrivals`` may be a materialized sequence (the classic path:
        sorted up front, every request kept for the final records) or
        any other iterable (the *streaming* path, DESIGN.md §14): specs
        are consumed lazily in non-decreasing time order, one arrival
        event in flight ahead of the clock, and completed or shed
        requests are discarded — memory stays O(running set) for
        million-request runs.  Streamed arrivals enter the event heap
        through a dedicated sequence band that preserves the batch
        path's tie-breaking, so the same trace replays bit-identically
        through either path.
        """
        if self._ran:
            raise SimulationError(
                "engine already ran; construct a new Engine per simulation"
            )
        self._ran = True
        self.scheduler.reset()
        self.boost.reset()
        if isinstance(arrivals, Sequence):
            if not arrivals:
                raise SimulationError("no arrivals to simulate")
            for rid, spec in enumerate(sorted(arrivals, key=lambda s: s.time_ms)):
                request = SimRequest(
                    rid, spec.time_ms, spec.seq_ms, spec.speedup, tag=spec.tag
                )
                self._requests[rid] = request
                self._queue.push(spec.time_ms, Event(EventKind.ARRIVAL, request_id=rid))
            self._submitted = len(self._requests)
        else:
            self._stream = iter(arrivals)
            self._discard_done = True
            if not self._push_next_arrival():
                raise SimulationError("no arrivals to simulate")
        if self.fault_plan is not None:
            for core_fault in self.fault_plan.core_faults:
                self._queue.push(
                    core_fault.time_ms,
                    Event(EventKind.FAULT, payload=(_CORE_LOSS, core_fault)),
                )
            for stall in self.fault_plan.stalls:
                self._queue.push(
                    stall.time_ms, Event(EventKind.FAULT, payload=(_STALL, stall))
                )

        # The run loop: hot enough that the queue pop and the kind
        # dispatch are inlined here, with enum members and the heap
        # hoisted to locals (a few % per lookup at this call count).
        # Branches are ordered by event frequency: quantum ticks
        # dominate, then completions, then arrivals.
        heap = self._queue.heap
        requests = self._requests
        streaming = self._stream is not None
        quantum_kind = EventKind.QUANTUM
        completion_kind = EventKind.COMPLETION
        arrival_kind = EventKind.ARRIVAL
        delay_kind = EventKind.DELAY_EXPIRED
        finish_eps = _FINISH_EPS
        events = 0
        while heap:
            time_ms, _, event = heappop(heap)
            events += 1
            kind = event.kind
            if kind is completion_kind and event.generation != self._generation:
                continue  # stale rate snapshot
            now = self.now_ms
            if time_ms < now - finish_eps:
                raise SimulationError(
                    f"time went backwards: {time_ms} < {now}"
                )
            self._commit(time_ms if time_ms > now else now)
            if kind is quantum_kind:
                try:
                    request = requests[event.request_id]
                except KeyError:
                    continue  # finished + discarded (streaming mode)
                self._handle_quantum(request, event)
            elif kind is completion_kind:
                self._handle_completion()
            elif kind is arrival_kind:
                if streaming:
                    # Keep exactly one future arrival in the heap: pull
                    # the next spec as its predecessor is delivered.
                    self._push_next_arrival()
                self._handle_arrival(requests[event.request_id])
            elif kind is delay_kind:
                try:
                    request = requests[event.request_id]
                except KeyError:
                    continue  # shed + discarded (streaming mode)
                self._handle_delay_expired(request)
            else:  # EventKind.FAULT — the enum is closed
                self._handle_fault(event.payload)
            if self._rates_dirty:
                self._recompute_rates()
        self.events_processed = events
        if self._live is not None:
            self._live.flush(self.now_ms)

        if self._completed + self._shed != self._submitted:
            stuck = self._submitted - self._completed - self._shed
            raise SimulationError(
                f"{stuck} requests never completed (scheduler deadlock?)"
            )
        if self._hetero:
            self._metrics.energy_report = self._build_energy_report()
        return self._metrics.finalize()

    def _push_next_arrival(self) -> bool:
        """Pull the next spec off the arrival stream and schedule it;
        returns False when the stream is exhausted (streaming mode)."""
        spec = next(self._stream, None)
        if spec is None:
            return False
        time_ms = spec.time_ms
        if time_ms < self._last_stream_ms:
            raise SimulationError(
                "streamed arrivals must be non-decreasing in time: "
                f"{time_ms} after {self._last_stream_ms}"
            )
        self._last_stream_ms = time_ms
        rid = self._next_rid
        self._next_rid = rid + 1
        self._requests[rid] = SimRequest(
            rid, time_ms, spec.seq_ms, spec.speedup, tag=spec.tag
        )
        self._queue.push_streamed_arrival(
            time_ms, Event(EventKind.ARRIVAL, request_id=rid)
        )
        self._submitted += 1
        return True

    # ------------------------------------------------------------------
    # Event handlers (dispatched inline by the run loop)
    # ------------------------------------------------------------------
    def _handle_arrival(self, request: SimRequest) -> None:
        if self.fault_plan is not None:
            inflation = self.fault_plan.straggler_inflation(request.rid)
            if inflation > 1.0:
                # A straggler: the request carries more work than its
                # nominal demand (slow replica, cold cache).  seq_ms
                # stays nominal — the scheduler and the demand-band
                # metrics see the demand the request *claimed*.
                request.remaining_work *= inflation
                request.impaired = True
                self._metrics.fault_stats.stragglers_injected += 1
        if self.telemetry is not None:
            self.telemetry.metrics.counter("sim.arrivals").inc()
        # The request counts toward the load its own admission sees
        # (the interval table is indexed by the count including it).
        self._candidate = 1
        decision = self.scheduler.on_arrival(self._ctx, request)
        self._candidate = 0
        self._apply_admission(request, decision)

    def _handle_delay_expired(self, request: SimRequest) -> None:
        if request.state is not RequestState.DELAYED:
            return  # already started by a wait-check wake-up
        self._delayed_discard(request.rid)
        self._candidate = 1
        decision = self.scheduler.on_wait_check(self._ctx, request)
        self._candidate = 0
        self._apply_admission(request, decision)

    def _handle_quantum(self, request: SimRequest, event: Event) -> None:
        if request.state is not RequestState.RUNNING:
            return
        telemetry = self.telemetry
        if telemetry is not None:
            was_boosted = request.boosted
        desired = self.scheduler.on_quantum(self._ctx, request)
        if desired > request.degree:
            request.raise_degree(desired)
            self._refresh_degree_cache(request)
            self._rates_dirty = True
            if telemetry is not None:
                telemetry.metrics.counter("sim.degree_raises").inc()
        if telemetry is not None and request.boosted and not was_boosted:
            telemetry.metrics.counter("sim.boosts").inc()
            telemetry.tracer.instant(
                "boost", track="sim", lane=request.rid, at_ms=self.now_ms,
                degree=request.degree,
            )
        # Requests have at most one quantum tick in flight, so the event
        # object just popped is simply re-armed — no allocation per tick.
        self._queue.push(self.now_ms + self.quantum_ms, event)

    def _handle_completion(self) -> None:
        finished = [r for r in self._running.values() if r.is_finished]
        if not finished:
            raise SimulationError("completion event with no finished request")
        for request in finished:
            request.finish(self.now_ms)
            del self._running[request.rid]
            self._metrics.record(request)  # snapshot before boost release
            if self.telemetry is not None:
                self._finish_telemetry(request)  # span needs boosted flag too
            if self._live is not None:
                self._feed_live()
            self.boost.release(request)
            self._completed += 1
            self.scheduler.on_exit(self._ctx, request)
        if self._discard_done:
            # Streaming mode: the record (or histogram sample) is taken;
            # drop the object so memory tracks the running set.  Any
            # quantum tick still in the heap finds the id missing and is
            # skipped by the run loop.
            requests = self._requests
            for request in finished:
                del requests[request.rid]
        self._rates_dirty = True
        self._wake_waiters(exits=len(finished))

    def _feed_live(self) -> None:
        """Feed the just-recorded completion into the live plane's
        window stream (components/energy/pool from the same
        :class:`RequestRecord` the collector keeps)."""
        record = self._metrics.records[-1]
        self._live.observe(
            at_ms=record.finish_ms,
            latency_ms=record.latency_ms,
            components=record.attribution() if self.attribution else None,
            energy_j=record.energy_j,
            pool=self._pool_names[record.pool] if self._hetero else "",
            rid=record.rid,
        )

    # ------------------------------------------------------------------
    # Fault injection (see repro.faults)
    # ------------------------------------------------------------------
    def _handle_fault(self, payload: object) -> None:
        kind, detail = payload  # type: ignore[misc]
        stats = self._metrics.fault_stats
        if kind == _CORE_LOSS:
            fault: CoreFault = detail
            removed = self._cores_online - max(1, self._cores_online - fault.cores)
            self._cores_online -= removed
            if self._hetero:
                # Take cores from the highest-index pools first (the
                # little cluster in the canonical big/little ordering),
                # deterministically; individual pools may go to zero as
                # long as the machine keeps one core somewhere.
                remaining = removed
                taken = [0] * self._npools
                for pool in range(self._npools - 1, -1, -1):
                    take = min(remaining, self._pool_online[pool])
                    self._pool_online[pool] -= take
                    taken[pool] = take
                    remaining -= take
                    if remaining == 0:
                        break
                restore_detail: object = tuple(taken)
            else:
                restore_detail = removed
            stats.core_faults_applied += 1
            stats.faults_fired += 1
            self._observe_fault("core_loss", cores=removed)
            self._queue.push(
                self.now_ms + fault.duration_ms,
                Event(EventKind.FAULT, payload=(_CORE_RESTORE, restore_detail)),
            )
            self._rates_dirty = True
        elif kind == _CORE_RESTORE:
            if self._hetero:
                taken = detail  # per-pool removal counts from the loss
                for pool, count in enumerate(taken):
                    self._pool_online[pool] += count
                self._cores_online = min(self.cores, sum(self._pool_online))
            else:
                self._cores_online = min(self.cores, self._cores_online + int(detail))
            self._observe_fault("core_restore", cores_online=self._cores_online)
            self._rates_dirty = True
        elif kind == _STALL:
            stall: StallFault = detail
            victim = self._stall_victim()
            if victim is None:
                return  # nothing running; the stall is a no-op
            victim.stalled_until_ms = self.now_ms + stall.duration_ms
            victim.impaired = True
            stats.stalls_injected += 1
            stats.faults_fired += 1
            self._observe_fault(
                "stall", rid=victim.rid, duration_ms=stall.duration_ms
            )
            self._queue.push(
                victim.stalled_until_ms,
                Event(EventKind.FAULT, payload=(_STALL_END, victim.rid)),
            )
            self._rates_dirty = True
        elif kind == _STALL_END:
            # The victim may have been re-stalled or already finished;
            # recomputing rates handles every case.
            self._rates_dirty = True
        else:  # pragma: no cover - payload tags are closed
            raise SimulationError(f"unknown fault payload {payload!r}")

    def _observe_fault(self, fault: str, **detail: object) -> None:
        """Surface an injected fault as a first-class observability
        event: an ``observe.event`` instant on the trace and an
        annotation on the live plane's window stream.  Cold path —
        faults are orders of magnitude rarer than completions."""
        if self.telemetry is not None:
            self.telemetry.tracer.instant(
                "observe.event",
                track="observe",
                at_ms=self.now_ms,
                kind="fault",
                fault=fault,
                **detail,
            )
        if self._live is not None:
            self._live.annotate(self.now_ms, "fault", fault=fault, **detail)

    def _stall_victim(self) -> SimRequest | None:
        """Deterministic stall target: the running request with the most
        remaining work (ties broken by lowest rid)."""
        candidates = [
            r
            for r in self._running.values()
            if not r.is_stalled(self.now_ms) and not r.is_finished
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda r: (r.remaining_work, -r.rid))

    # ------------------------------------------------------------------
    # Admission machinery
    # ------------------------------------------------------------------
    def _apply_admission(self, request: SimRequest, decision: Admission) -> None:
        if decision.action is AdmissionAction.START or (
            decision.action is AdmissionAction.DELAY and decision.delay_ms <= 0
        ):
            self._start_request(request, decision.degree, decision.pool)
        elif decision.action is AdmissionAction.DELAY:
            request.state = RequestState.DELAYED
            insort(self._delayed, request.rid)
            self._queue.push(
                self.now_ms + decision.delay_ms,
                Event(EventKind.DELAY_EXPIRED, request_id=request.rid),
            )
        elif decision.action is AdmissionAction.WAIT_FOR_EXIT:
            if not self._running and not self._delayed:
                # Nothing will ever exit; queuing would deadlock.  Start
                # sequentially — matches FM's behaviour, where the e1 row
                # admits one request per exit and an idle system admits
                # immediately.
                self._start_request(request, 1)
            else:
                request.state = RequestState.QUEUED
                self._waiting_fifo.append(request.rid)
                if self.telemetry is not None:
                    self.telemetry.metrics.gauge("sim.queue_depth").set(
                        len(self._waiting_fifo)
                    )
        elif decision.action is AdmissionAction.SHED:
            # Fail fast: the request never runs; it is recorded (never
            # silently dropped) and leaves the system immediately.
            request.shed(self.now_ms)
            self._metrics.record_shed(request, decision.deadline)
            self._shed += 1
            if self._discard_done:
                # Streaming mode: shed requests leave the table too (a
                # pending DELAY_EXPIRED for them is skipped on pop).
                del self._requests[request.rid]
            if self.telemetry is not None:
                self.telemetry.metrics.counter("sim.sheds").inc()
                self.telemetry.tracer.complete(
                    "shed", request.arrival_ms, self.now_ms,
                    track="sim", lane=request.rid, deadline=decision.deadline,
                )
        else:  # pragma: no cover - enum is closed
            raise SimulationError(f"unknown admission {decision}")

    def _start_request(
        self, request: SimRequest, degree: int, pool: int | None = None
    ) -> None:
        """Begin executing an admitted request (the one place requests
        transition into the running set).

        On a heterogeneous topology the request is placed on ``pool``
        when the policy pinned one, else on the engine default: the
        fastest pool with occupancy headroom for it (falling back to
        the freest pool) — so policies that never mention pools still
        get sensible big-first placement.
        """
        waited_as = request.state  # pre-start state names the wait kind
        request.start(self.now_ms, max(1, degree))
        self._refresh_degree_cache(request)
        if self._hetero:
            if pool is not None and 0 <= pool < self._npools:
                request.pool = pool
            else:
                request.pool = self._default_pool(request)
        self._running[request.rid] = request
        self._rates_dirty = True
        if self.scheduler.uses_quantum:
            self._queue.push(
                self.now_ms + self.quantum_ms,
                Event(EventKind.QUANTUM, request_id=request.rid),
            )
        if self.telemetry is not None:
            tracer = self.telemetry.tracer
            if self.now_ms > request.arrival_ms:
                tracer.complete(
                    "queue", request.arrival_ms, self.now_ms,
                    track="sim", lane=request.rid,
                    wait=waited_as.value,
                )
            self._run_spans[request.rid] = tracer.begin(
                "run", track="sim", lane=request.rid, at_ms=self.now_ms,
                degree=request.degree,
            )

    def _finish_telemetry(self, request: SimRequest) -> None:
        """Close a completed request's run span and update metrics."""
        telemetry = self.telemetry
        telemetry.metrics.counter("sim.completions").inc()
        telemetry.metrics.histogram("sim.latency_ms").record(request.latency_ms)
        attrs: dict[str, object] = {}
        if self.attribution:
            metrics = telemetry.metrics
            queue_ms = (request.start_ms or request.arrival_ms) - request.arrival_ms
            metrics.histogram("sim.attr.queue_ms").record(queue_ms)
            metrics.histogram("sim.attr.service_ms").record(request.attr_service_ms)
            metrics.histogram("sim.attr.contention_ms").record(
                request.attr_contention_ms
            )
            metrics.histogram("sim.attr.boost_wait_ms").record(
                request.attr_boost_wait_ms
            )
            metrics.histogram("sim.attr.stall_ms").record(request.attr_stall_ms)
            # The run span carries the full decomposition so offline
            # trace analysis (`repro analyze`) can attribute the tail
            # without the RequestRecords.
            attrs = {
                "queue_ms": queue_ms,
                "service_ms": request.attr_service_ms,
                "contention_ms": request.attr_contention_ms,
                "boost_wait_ms": request.attr_boost_wait_ms,
                "stall_ms": request.attr_stall_ms,
            }
        if self._hetero:
            energy_j = request.energy_mj / 1000.0
            telemetry.metrics.histogram("sim.energy.request_j").record(energy_j)
            attrs["energy_j"] = energy_j
            attrs["pool"] = self._pool_names[request.pool]
            attrs["migrations"] = request.migrations
        span = self._run_spans.pop(request.rid, None)
        if span is not None:
            telemetry.tracer.end(
                span, at_ms=self.now_ms,
                latency_ms=request.latency_ms,
                degree=request.degree,
                boosted=request.boosted,
                **attrs,
            )

    def _wake_waiters(self, exits: int) -> None:
        """Re-evaluate waiting requests after ``exits`` completions
        (Section 4.2: "When a request leaves, FM computes the load and
        starts a queued request (if one exists)").

        Queued (``e1``) requests are admitted in FIFO order for as long
        as the policy's current row allows; at saturation the ``e1``
        contract applies — "wait until another request exits and then
        start executing sequentially" — one forced admission per exit.
        The backlog is a deque, so each admission is an O(1)
        ``popleft`` even when overload has queued thousands.
        """
        forced = 0
        waiting = self._waiting_fifo
        while waiting:
            request = self._requests[waiting[0]]
            self._candidate = 1
            decision = self.scheduler.on_wait_check(self._ctx, request)
            self._candidate = 0
            if decision.action is AdmissionAction.WAIT_FOR_EXIT:
                if forced >= exits:
                    break
                decision = Admission.start(1)
                forced += 1
            waiting.popleft()
            if self.telemetry is not None:
                self.telemetry.metrics.gauge("sim.queue_depth").set(len(waiting))
            self._apply_admission(request, decision)
        # Delayed requests may start early when load drops — or be shed
        # if their deadline budget expired while they waited.  The list
        # is kept sorted by rid (= arrival order), so the snapshot needs
        # no per-wake sort.
        for rid in tuple(self._delayed):
            request = self._requests[rid]
            decision = self.scheduler.on_wait_check(self._ctx, request)
            if decision.action is AdmissionAction.START or (
                decision.action is AdmissionAction.DELAY and decision.delay_ms <= 0
            ):
                self._delayed_discard(rid)
                self._apply_admission(
                    request, Admission.start(decision.degree, decision.pool)
                )
            elif decision.action is AdmissionAction.SHED:
                self._delayed_discard(rid)
                self._apply_admission(request, decision)
            # A longer delay keeps the original timer: the pending
            # DELAY_EXPIRED event will re-check anyway.

    def _delayed_discard(self, rid: int) -> None:
        """Remove ``rid`` from the sorted delayed-id list, if present."""
        ids = self._delayed
        i = bisect_left(ids, rid)
        if i < len(ids) and ids[i] == rid:
            del ids[i]

    # ------------------------------------------------------------------
    # Fluid-rate machinery
    # ------------------------------------------------------------------
    def _refresh_degree_cache(self, request: SimRequest) -> None:
        """Refresh the per-degree caches after a degree change.

        ``s(degree)`` and the occupancy ``o(degree)`` depend only on the
        request's curve, its degree, and the engine's spin fraction —
        recomputing them here (degree changes are rare) is what lets the
        per-event rate refresh touch no speedup curves at all.
        """
        s = request.speedup.speedup(request.degree)
        request.degree_speedup = s
        request.degree_demand = occupancy(s, request.degree, self.spin_fraction)

    def _commit(self, t: float) -> None:
        """Advance work and metric integrals from ``now`` to ``t`` under
        the current (constant) rates.

        This is the hottest loop in the simulator — it visits every
        running request on every event — so the body of
        :meth:`SimRequest.advance` is inlined here (same operations, in
        the same order, so results stay bit-identical to the method).
        """
        dt = t - self.now_ms
        if dt > 0:
            now = self.now_ms
            attribution = self.attribution
            have_faults = self.fault_plan is not None
            busy_cores = 0.0
            total_threads = 0
            for request in self._running.values():
                factor = request.share_factor
                core_alloc = request.share_cores
                # Stall boundaries coincide with commit boundaries (the
                # STALL / STALL_END events force commits), so stalledness
                # is constant across [now, t).  Without a fault plan no
                # request is ever stalled — skip the check entirely.
                stalled = have_faults and request.is_stalled(now)
                useful = factor * dt
                if attribution:
                    if stalled:
                        request.attr_stall_ms += dt
                    else:
                        request.attr_service_ms += useful
                        slowdown = dt - useful
                        if request.boost_pending and not request.boosted:
                            request.attr_boost_wait_ms += slowdown
                        else:
                            request.attr_contention_ms += slowdown
                request.effective_ms += useful
                remaining = request.remaining_work - request.rate * dt
                if remaining <= 0.0:
                    if remaining < -1e-6:
                        raise SimulationError(
                            f"request {request.rid}: overshoot {remaining}"
                        )
                    remaining = 0.0
                request.remaining_work = remaining
                degree = request.degree
                request.thread_time_ms += degree * dt
                request.core_time_ms += core_alloc * dt
                residency = request.degree_residency
                try:
                    residency[degree] += dt
                except KeyError:
                    residency[degree] = dt
                busy_cores += core_alloc
                total_threads += degree
            in_system = (
                len(self._running) + len(self._delayed) + len(self._waiting_fifo)
            )
            self._metrics.observe_interval(dt, total_threads, busy_cores, in_system)
        self.now_ms = t

    def _recompute_rates(self) -> None:
        """Refresh per-request rates and schedule the next tentative
        completion; called after any state change.

        Two tight passes over the running set, no allocations:

        1. re-accumulate the boosted / unboosted occupancy sums from the
           cached per-degree demands (re-accumulated, not incrementally
           adjusted: float addition is non-associative, and the sums
           must stay bit-identical to the reference engine's);
        2. derive the two contention factors, then store each request's
           factor, core share, and rate inline and track the earliest
           tentative completion in the same sweep.
        """
        self._rates_dirty = False
        self._generation += 1
        running = self._running
        boosted_demand = 0.0
        unboosted_demand = 0.0
        for request in running.values():
            if request.boosted:
                boosted_demand += request.degree_demand
            else:
                unboosted_demand += request.degree_demand

        cores = self._cores_online
        boosted_factor = min(1.0, cores / boosted_demand) if boosted_demand > 0 else 1.0
        remaining_cores = cores - boosted_demand * boosted_factor
        if unboosted_demand > 0:
            unboosted_factor = min(1.0, max(0.0, remaining_cores) / unboosted_demand)
        else:
            unboosted_factor = 1.0

        now = self.now_ms
        have_faults = self.fault_plan is not None
        earliest = _INF
        for request in running.values():
            factor = boosted_factor if request.boosted else unboosted_factor
            request.share_factor = factor
            request.share_cores = request.degree_demand * factor
            rate = request.degree_speedup * factor
            if have_faults and request.is_stalled(now):
                # An injected worker stall: the request's threads keep
                # their cores (hung workers occupy, not yield) but
                # retire no work until the stall expires.
                rate = 0.0
            request.rate = rate
            if rate > 0.0:
                eta = now + request.remaining_work / rate
                if eta < earliest:
                    earliest = eta
        if earliest < _INF:
            self._queue.push(
                max(earliest, now),
                Event(EventKind.COMPLETION, generation=self._generation),
            )

    # ------------------------------------------------------------------
    # Heterogeneous-topology machinery (repro.hetero, DESIGN.md §12).
    # These entry points replace _commit/_recompute_rates via instance
    # rebinding in __init__ when a topology is supplied; the legacy
    # homogeneous path never reaches any of this code.
    # ------------------------------------------------------------------
    def pool_free_cores(self, pool: int) -> float:
        """Occupancy headroom of ``pool``: online cores minus the summed
        occupancy demand of the requests currently placed there (the
        whole machine on the homogeneous path)."""
        if not self._hetero:
            if pool != 0:
                raise SimulationError(f"homogeneous engine has no pool {pool}")
            demand = 0.0
            for request in self._running.values():
                demand += request.degree_demand
            return self._cores_online - demand
        if not 0 <= pool < self._npools:
            raise SimulationError(f"no pool {pool} in {self.topology!r}")
        free = float(self._pool_online[pool])
        for request in self._running.values():
            if request.pool == pool:
                free -= request.degree_demand
        return free

    def migrate(self, request: SimRequest, pool: int) -> bool:
        """Move a running request's threads to another pool (the
        Hurry-up actuator); returns True when the placement changed.
        Migration cost is modeled as zero — rates simply refresh under
        the new placement at the next recomputation."""
        if (
            not self._hetero
            or not 0 <= pool < self._npools
            or request.state is not RequestState.RUNNING
            or request.pool == pool
        ):
            return False
        source = request.pool
        request.pool = pool
        request.migrations += 1
        self._rates_dirty = True
        if self.telemetry is not None:
            self.telemetry.metrics.counter("sim.migrations").inc()
            self.telemetry.tracer.instant(
                "migrate", track="sim", lane=request.rid, at_ms=self.now_ms,
                source=self._pool_names[source], target=self._pool_names[pool],
            )
        return True

    def _default_pool(self, request: SimRequest) -> int:
        """Engine placement: the fastest pool whose occupancy headroom
        fits the request's demand, else the freest pool (faster pools
        win headroom ties).  Deterministic — depends only on the
        running set and the fixed speed ordering."""
        free = [float(count) for count in self._pool_online]
        for running in self._running.values():
            free[running.pool] -= running.degree_demand
        demand = request.degree_demand
        best = self._pools_by_speed[0]
        for pool in self._pools_by_speed:
            if free[pool] >= demand - 1e-9:
                return pool
            if free[pool] > free[best] + 1e-12:
                best = pool
        return best

    def _commit_hetero(self, t: float) -> None:
        """The heterogeneous commit: the legacy :meth:`_commit` loop
        (same operations in the same order, so the single-pool case
        stays bit-identical) plus the energy accumulator.

        Within the interval each request's threads occupy
        ``share_cores`` physical cores on its pool at active power;
        the useful part is ``degree_speedup * factor`` core-equivalents
        (zero while stalled) and the rest is spin.  Online cores with
        no thread accrue idle energy.  Accumulation is in W·ms = mJ.
        """
        dt = t - self.now_ms
        if dt > 0:
            now = self.now_ms
            attribution = self.attribution
            have_faults = self.fault_plan is not None
            busy_cores = 0.0
            total_threads = 0
            active_w = self._pool_active_w
            e_active = self._e_active
            e_spin = self._e_spin
            pool_busy = [0.0] * self._npools
            for request in self._running.values():
                factor = request.share_factor
                core_alloc = request.share_cores
                stalled = have_faults and request.is_stalled(now)
                useful = factor * dt
                if attribution:
                    if stalled:
                        request.attr_stall_ms += dt
                    else:
                        request.attr_service_ms += useful
                        slowdown = dt - useful
                        if request.boost_pending and not request.boosted:
                            request.attr_boost_wait_ms += slowdown
                        else:
                            request.attr_contention_ms += slowdown
                request.effective_ms += useful
                remaining = request.remaining_work - request.rate * dt
                if remaining <= 0.0:
                    if remaining < -1e-6:
                        raise SimulationError(
                            f"request {request.rid}: overshoot {remaining}"
                        )
                    remaining = 0.0
                request.remaining_work = remaining
                degree = request.degree
                request.thread_time_ms += degree * dt
                request.core_time_ms += core_alloc * dt
                residency = request.degree_residency
                try:
                    residency[degree] += dt
                except KeyError:
                    residency[degree] = dt
                busy_cores += core_alloc
                total_threads += degree
                # --- energy: occupied cores burn active power; the
                # useful share is active, the remainder spin (a stalled
                # request's threads hold their cores but retire nothing,
                # so its whole occupancy is spin).
                pool = request.pool
                occupied_ms = core_alloc * dt
                active_ms = 0.0 if stalled else request.degree_speedup * factor * dt
                power = active_w[pool]
                e_active[pool] += power * active_ms
                e_spin[pool] += power * (occupied_ms - active_ms)
                request.energy_mj += power * occupied_ms
                pool_busy[pool] += core_alloc
            idle_w = self._pool_idle_w
            online = self._pool_online
            e_idle = self._e_idle
            for pool in range(self._npools):
                idle_cores = online[pool] - pool_busy[pool]
                if idle_cores > 0.0:
                    e_idle[pool] += idle_w[pool] * idle_cores * dt
            in_system = (
                len(self._running) + len(self._delayed) + len(self._waiting_fifo)
            )
            self._metrics.observe_interval(dt, total_threads, busy_cores, in_system)
        self.now_ms = t

    def _recompute_rates_hetero(self) -> None:
        """Per-pool fluid rates: the legacy two-pass refresh with the
        demand sums and contention factors computed pool-by-pool, and
        each rate scaled by its pool's speed multiplier.

        The sums accumulate in running-set order (like the legacy
        pass), so with one pool at speed 1.0 every operation — the
        division, the min/max clamps, ``rate = s * factor * 1.0`` —
        reduces bitwise to the homogeneous engine's.
        """
        self._rates_dirty = False
        self._generation += 1
        running = self._running
        npools = self._npools
        boosted_demand = [0.0] * npools
        unboosted_demand = [0.0] * npools
        for request in running.values():
            if request.boosted:
                boosted_demand[request.pool] += request.degree_demand
            else:
                unboosted_demand[request.pool] += request.degree_demand

        online = self._pool_online
        boosted_factor = [1.0] * npools
        unboosted_factor = [1.0] * npools
        for pool in range(npools):
            cores = online[pool]
            demand = boosted_demand[pool]
            factor = min(1.0, cores / demand) if demand > 0 else 1.0
            boosted_factor[pool] = factor
            remaining_cores = cores - demand * factor
            demand = unboosted_demand[pool]
            if demand > 0:
                unboosted_factor[pool] = min(
                    1.0, max(0.0, remaining_cores) / demand
                )

        now = self.now_ms
        have_faults = self.fault_plan is not None
        speeds = self._pool_speeds
        earliest = _INF
        for request in running.values():
            pool = request.pool
            factor = (
                boosted_factor[pool] if request.boosted else unboosted_factor[pool]
            )
            request.share_factor = factor
            request.share_cores = request.degree_demand * factor
            rate = request.degree_speedup * factor * speeds[pool]
            if have_faults and request.is_stalled(now):
                rate = 0.0
            request.rate = rate
            if rate > 0.0:
                eta = now + request.remaining_work / rate
                if eta < earliest:
                    earliest = eta
        if earliest < _INF:
            self._queue.push(
                max(earliest, now),
                Event(EventKind.COMPLETION, generation=self._generation),
            )

    def _build_energy_report(self) -> EnergyReport:
        """Convert the W·ms accumulators into the per-pool report and
        export the ``sim.energy.*`` gauges."""
        pools = [
            PoolEnergy(
                name=self._pool_names[pool],
                cores=self.topology[pool].count,
                speed=self._pool_speeds[pool],
                active_j=self._e_active[pool] / 1000.0,
                spin_j=self._e_spin[pool] / 1000.0,
                idle_j=self._e_idle[pool] / 1000.0,
            )
            for pool in range(self._npools)
        ]
        report = EnergyReport(pools, duration_ms=self.now_ms)
        if self.telemetry is not None:
            metrics = self.telemetry.metrics
            metrics.gauge("sim.energy.total_j").set(report.total_j)
            for entry in report.pools:
                prefix = f"sim.energy.pool.{entry.name}"
                metrics.gauge(f"{prefix}.active_j").set(entry.active_j)
                metrics.gauge(f"{prefix}.spin_j").set(entry.spin_j)
                metrics.gauge(f"{prefix}.idle_j").set(entry.idle_j)
        return report


def simulate(
    arrivals: Sequence[ArrivalSpec] | Iterable[ArrivalSpec],
    scheduler: Scheduler,
    cores: int,
    quantum_ms: float = 5.0,
    spin_fraction: float = 0.25,
    fault_plan: FaultPlan | None = None,
    telemetry: Telemetry | None = None,
    attribution: bool = True,
    topology: Topology | None = None,
    live: "LivePlane | None" = None,
    vectorized: bool = False,
) -> SimulationResult:
    """Convenience wrapper: build an :class:`Engine` and run it.

    ``vectorized=True`` selects the numpy batch engine
    (:class:`repro.sim.vector.VectorEngine`, DESIGN.md §14): same
    simulation, with the per-event commit/rate-recompute loops executed
    as array operations over the running set — the fast path when
    hundreds of requests run concurrently.
    """
    if vectorized:
        from repro.sim.vector import VectorEngine

        engine_cls: type[Engine] = VectorEngine
    else:
        engine_cls = Engine
    engine = engine_cls(
        cores=cores,
        scheduler=scheduler,
        quantum_ms=quantum_ms,
        spin_fraction=spin_fraction,
        fault_plan=fault_plan,
        telemetry=telemetry,
        attribution=attribution,
        topology=topology,
        live=live,
    )
    return engine.run(arrivals)
