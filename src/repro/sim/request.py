"""Request lifecycle state for the simulator.

A :class:`SimRequest` tracks one request from arrival to completion:
its remaining *sequential work* (milliseconds of single-core compute),
its current parallelism degree, boost status, and the accounting needed
for the paper's metrics (thread-time for average parallelism, Figure 9;
per-degree residency for the degree distributions, Figures 9(b)/12(b)).

It also carries the *flight recorder*: an additive decomposition of the
request's eventual latency into queue wait, full-speed-equivalent
service, processor-sharing contention inflation, boost wait (contention
suffered while a requested boost was denied), and injected-stall time.
Within each constant-rate interval the engine commits, the wall time
``dt`` splits exactly — stalled intervals are all stall, and running
intervals split into ``factor*dt`` service plus ``(1-factor)*dt``
slowdown — so the components telescope to the measured latency (see
DESIGN.md §9).
"""

from __future__ import annotations

import enum

from repro.core.speedup import SpeedupCurve
from repro.errors import SimulationError

__all__ = ["RequestState", "SimRequest"]

_EPS = 1e-9


class RequestState(enum.Enum):
    """Lifecycle phases of a request inside the server."""

    QUEUED = "queued"  # waiting for an exit (e1 admission)
    DELAYED = "delayed"  # waiting out a t0 > 0 admission delay
    RUNNING = "running"
    DONE = "done"
    SHED = "shed"  # rejected by overload load shedding (never ran)


class SimRequest:
    """One in-flight request."""

    __slots__ = (
        "rid",
        "arrival_ms",
        "seq_ms",
        "speedup",
        "state",
        "remaining_work",
        "degree",
        "boosted",
        "start_ms",
        "finish_ms",
        "thread_time_ms",
        "core_time_ms",
        "effective_ms",
        "degree_residency",
        "rate",
        "tag",
        "stalled_until_ms",
        "impaired",
        "shed_ms",
        "boost_pending",
        "attr_service_ms",
        "attr_contention_ms",
        "attr_boost_wait_ms",
        "attr_stall_ms",
        "share_factor",
        "share_cores",
        "degree_speedup",
        "degree_demand",
        "pool",
        "energy_mj",
        "migrations",
    )

    def __init__(
        self, rid: int, arrival_ms: float, seq_ms: float, speedup: SpeedupCurve,
        tag: object = None,
    ) -> None:
        if seq_ms <= 0:
            raise SimulationError(f"request {rid}: seq_ms must be positive, got {seq_ms}")
        self.rid = rid
        self.arrival_ms = arrival_ms
        self.seq_ms = seq_ms
        self.speedup = speedup
        self.state = RequestState.QUEUED
        self.remaining_work = seq_ms
        self.degree = 0
        self.boosted = False
        self.start_ms: float | None = None
        self.finish_ms: float | None = None
        #: Integral of software-thread count over execution time.
        self.thread_time_ms = 0.0
        #: Integral of physical-core usage (threads x share) over time.
        self.core_time_ms = 0.0
        #: Full-speed-equivalent execution time: wall time weighted by
        #: the contention factor.  Equals wall time when uncontended.
        self.effective_ms = 0.0
        #: Wall-time spent at each degree, ``{degree: ms}``.
        self.degree_residency: dict[int, float] = {}
        #: Current work-depletion rate (sequential-ms per wall-ms).
        self.rate = 0.0
        #: Opaque caller payload (e.g. the originating query).
        self.tag = tag
        #: While ``now < stalled_until_ms`` the request retires no work
        #: (an injected worker stall); its threads keep their cores.
        self.stalled_until_ms = 0.0
        #: Whether any fault touched this request (straggler inflation
        #: or a stall) — completions of impaired requests are counted
        #: as *degraded* in the fault stats.
        self.impaired = False
        #: When load shedding rejected this request (None = not shed).
        self.shed_ms: float | None = None
        #: True between a denied boost attempt and the eventual grant —
        #: contention suffered in this state is attributed to boost
        #: wait (the slowdown a granted boost would have eliminated).
        self.boost_pending = False
        #: Flight-recorder integrals (additive latency attribution):
        #: full-speed-equivalent execution time while not stalled.
        self.attr_service_ms = 0.0
        #: Processor-sharing slowdown while not stalled or boost-denied.
        self.attr_contention_ms = 0.0
        #: Processor-sharing slowdown while a requested boost was denied.
        self.attr_boost_wait_ms = 0.0
        #: Wall time frozen by injected worker stalls.
        self.attr_stall_ms = 0.0
        #: Engine-managed allocation state, refreshed by the fluid-rate
        #: machinery: the current contention factor and physical-core
        #: share (what :class:`~repro.sim.processor.ThreadAllocation`
        #: carries, stored inline to avoid per-event dict churn) ...
        self.share_factor = 0.0
        self.share_cores = 0.0
        #: ... and the per-degree caches — ``s(degree)`` and occupancy
        #: ``o(degree)`` are pure in the degree, so the engine
        #: recomputes them only when the degree changes instead of on
        #: every allocation round.
        self.degree_speedup = 0.0
        self.degree_demand = 0.0
        #: Heterogeneous-topology state (``repro.hetero``): the core
        #: pool this request's threads currently occupy, the energy its
        #: execution has drawn (accumulated in watt-ms = millijoules),
        #: and how many times a policy migrated it between pools.  All
        #: stay at their zeros on the legacy homogeneous path.
        self.pool = 0
        self.energy_mj = 0.0
        self.migrations = 0

    # ------------------------------------------------------------------
    def start(self, now_ms: float, degree: int) -> None:
        """Transition to RUNNING with ``degree`` worker threads."""
        if self.state is RequestState.RUNNING or self.state is RequestState.DONE:
            raise SimulationError(f"request {self.rid}: cannot start from {self.state}")
        if degree < 1:
            raise SimulationError(f"request {self.rid}: start degree must be >= 1")
        self.state = RequestState.RUNNING
        self.start_ms = now_ms
        self.degree = degree

    def raise_degree(self, degree: int) -> bool:
        """Increase parallelism; returns True when the degree changed.

        FM property: degrees never decrease — a lower request is a
        programming error in the policy, not a runtime condition.
        """
        if self.state is not RequestState.RUNNING:
            raise SimulationError(f"request {self.rid}: not running")
        if degree < self.degree:
            raise SimulationError(
                f"request {self.rid}: degree may not decrease "
                f"({self.degree} -> {degree})"
            )
        if degree == self.degree:
            return False
        self.degree = degree
        return True

    def progress_ms(self, now_ms: float) -> float:
        """Wall time spent executing.

        Requests run continuously once started, so this is simply
        ``now - start`` (the paper's implementation timestamps request
        start and compares elapsed time against interval thresholds).
        """
        if self.start_ms is None:
            return 0.0
        return now_ms - self.start_ms

    def effective_progress_ms(self) -> float:
        """Contention-normalized execution time: how long the request
        *would* have been running at full speed to reach its current
        work state.  Climbing the interval table on this index instead
        of wall time avoids over-parallelizing when the server is
        oversubscribed (wall time keeps passing while work stalls)."""
        return self.effective_ms

    def advance(
        self,
        dt_ms: float,
        core_alloc: float,
        progress_factor: float = 1.0,
        stalled: bool = False,
        attribution: bool = True,
    ) -> None:
        """Deplete work for ``dt_ms`` of wall time at the current rate
        and accumulate the metric integrals.

        ``core_alloc`` is the total physical-core share this request's
        threads are consuming and ``progress_factor`` the contention
        slowdown (both from the allocator).  ``stalled`` marks an
        interval frozen by an injected worker stall (the engine knows;
        stall boundaries always coincide with commit boundaries).  With
        ``attribution`` enabled the interval is also charged to the
        flight-recorder components, which stay exactly additive: every
        committed ``dt_ms`` lands in stall, service, contention, or
        boost wait.
        """
        if self.state is not RequestState.RUNNING or dt_ms <= 0:
            return
        if attribution:
            if stalled:
                self.attr_stall_ms += dt_ms
            else:
                useful = progress_factor * dt_ms
                self.attr_service_ms += useful
                slowdown = dt_ms - useful
                if self.boost_pending and not self.boosted:
                    self.attr_boost_wait_ms += slowdown
                else:
                    self.attr_contention_ms += slowdown
        self.effective_ms += progress_factor * dt_ms
        self.remaining_work -= self.rate * dt_ms
        if self.remaining_work < -1e-6:
            raise SimulationError(
                f"request {self.rid}: overshoot {self.remaining_work}"
            )
        self.remaining_work = max(self.remaining_work, 0.0)
        self.thread_time_ms += self.degree * dt_ms
        self.core_time_ms += core_alloc * dt_ms
        self.degree_residency[self.degree] = (
            self.degree_residency.get(self.degree, 0.0) + dt_ms
        )

    @property
    def is_finished(self) -> bool:
        """Whether all sequential work has been retired."""
        return self.remaining_work <= _EPS

    def finish(self, now_ms: float) -> None:
        """Transition to DONE."""
        if self.state is not RequestState.RUNNING:
            raise SimulationError(f"request {self.rid}: cannot finish from {self.state}")
        self.state = RequestState.DONE
        self.finish_ms = now_ms

    def shed(self, now_ms: float) -> None:
        """Transition to SHED (fail-fast rejection; the request never ran)."""
        if self.state is RequestState.RUNNING or self.state is RequestState.DONE:
            raise SimulationError(f"request {self.rid}: cannot shed from {self.state}")
        self.state = RequestState.SHED
        self.shed_ms = now_ms

    def is_stalled(self, now_ms: float) -> bool:
        """Whether an injected worker stall is freezing the request."""
        return now_ms < self.stalled_until_ms - _EPS

    # ------------------------------------------------------------------
    @property
    def latency_ms(self) -> float:
        """Arrival-to-completion response time (queueing included)."""
        if self.finish_ms is None:
            raise SimulationError(f"request {self.rid}: not finished")
        return self.finish_ms - self.arrival_ms

    @property
    def execution_ms(self) -> float:
        """Start-to-completion wall time."""
        if self.finish_ms is None or self.start_ms is None:
            raise SimulationError(f"request {self.rid}: not finished")
        return self.finish_ms - self.start_ms

    @property
    def average_parallelism(self) -> float:
        """Time-averaged software-thread count while executing."""
        exec_ms = self.execution_ms
        return self.thread_time_ms / exec_ms if exec_ms > 0 else float(self.degree)

    def __repr__(self) -> str:
        return (
            f"SimRequest(rid={self.rid}, state={self.state.value}, "
            f"seq={self.seq_ms:g}, degree={self.degree})"
        )
