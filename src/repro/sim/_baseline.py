"""Frozen reference engine — the pre-overhaul hot path, verbatim.

This module vendors the simulator core exactly as it stood before the
incremental-rate / O(1)-queue overhaul of :mod:`repro.sim.engine`:
per-event dict rebuilds in ``compute_shares``, ``list.pop(0)`` backlog
drains, ``sorted(set)`` delayed rescans, and a dataclass-item event
heap.  It exists for one purpose: **bit-for-bit equivalence checks**.
The optimized engine must produce byte-identical
:class:`~repro.sim.metrics.SimulationResult` metrics on fixed seeds,
and both the equivalence tests (``tests/sim/test_engine_equivalence``)
and the engine benchmark (``benchmarks/run_all.py`` →
``BENCH_engine.json``) diff against this implementation.

Do **not** optimize, extend, or "clean up" this file — its value is
that it never changes.  It shares :class:`~repro.sim.request.SimRequest`
and the metrics layer with the live engine, so behavioural drift in
those shared pieces is caught by the same equivalence tests.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.errors import SimulationError
from repro.faults.plan import CoreFault, FaultPlan, StallFault
from repro.sim.api import Admission, AdmissionAction, Scheduler, SchedulerContext
from repro.sim.engine import ArrivalSpec
from repro.sim.events import Event, EventKind
from repro.sim.metrics import MetricsCollector, SimulationResult
from repro.sim.processor import ThreadAllocation, occupancy
from repro.sim.request import RequestState, SimRequest

__all__ = ["BaselineEngine", "simulate_baseline"]

_CORE_LOSS = "core_loss"
_CORE_RESTORE = "core_restore"
_STALL = "stall"
_STALL_END = "stall_end"

_FINISH_EPS = 1e-6  # ms — one nanosecond of slack for float residue


@dataclass(order=True)
class _HeapItem:
    time_ms: float
    sequence: int
    event: Event = field(compare=False)


class _BaselineEventQueue:
    """The pre-overhaul event queue: a min-heap of dataclass items."""

    def __init__(self) -> None:
        self._heap: list[_HeapItem] = []
        self._counter = itertools.count()

    def push(self, time_ms: float, event: Event) -> None:
        if time_ms < 0:
            raise ValueError(f"event time must be >= 0, got {time_ms}")
        heapq.heappush(self._heap, _HeapItem(time_ms, next(self._counter), event))

    def pop(self) -> tuple[float, Event]:
        item = heapq.heappop(self._heap)
        return item.time_ms, item.event

    def __bool__(self) -> bool:
        return bool(self._heap)


def _baseline_compute_shares(
    running: Iterable[SimRequest], cores: int, spin_fraction: float = 0.25
) -> dict[int, ThreadAllocation]:
    """The pre-overhaul allocator: rebuilds every dict per call."""
    if not 0.0 <= spin_fraction <= 1.0:
        raise SimulationError(f"spin_fraction must be in [0, 1]: {spin_fraction}")
    requests = list(running)
    demands = {
        r.rid: occupancy(r.speedup.speedup(r.degree), r.degree, spin_fraction)
        for r in requests
    }
    boosted_demand = sum(demands[r.rid] for r in requests if r.boosted)
    unboosted_demand = sum(demands[r.rid] for r in requests if not r.boosted)

    boosted_factor = min(1.0, cores / boosted_demand) if boosted_demand > 0 else 1.0
    remaining = cores - boosted_demand * boosted_factor
    if unboosted_demand > 0:
        unboosted_factor = min(1.0, max(0.0, remaining) / unboosted_demand)
    else:
        unboosted_factor = 1.0

    out: dict[int, ThreadAllocation] = {}
    for request in requests:
        factor = boosted_factor if request.boosted else unboosted_factor
        out[request.rid] = ThreadAllocation(
            progress_factor=factor, core_alloc=demands[request.rid] * factor
        )
    return out


class BaselineEngine:
    """The pre-overhaul :class:`~repro.sim.engine.Engine`, kept verbatim.

    Telemetry hooks are omitted (the reference is only ever run bare —
    equivalence is checked on the returned metrics, and the pre-overhaul
    telemetry emission never influenced simulation state).
    """

    def __init__(
        self,
        cores: int,
        scheduler: Scheduler,
        quantum_ms: float = 5.0,
        spin_fraction: float = 0.25,
        fault_plan: FaultPlan | None = None,
        attribution: bool = True,
    ) -> None:
        from repro.sim.processor import BoostController

        if cores < 1:
            raise SimulationError(f"cores must be >= 1, got {cores}")
        if quantum_ms <= 0:
            raise SimulationError(f"quantum_ms must be positive, got {quantum_ms}")
        self.cores = cores
        self.scheduler = scheduler
        self.quantum_ms = quantum_ms
        self.spin_fraction = spin_fraction
        self.fault_plan = fault_plan
        self.boost = BoostController(cores)

        self.now_ms = 0.0
        self._cores_online = cores
        self._queue = _BaselineEventQueue()
        self._requests: dict[int, SimRequest] = {}
        self._running: dict[int, SimRequest] = {}
        self._waiting_fifo: list[int] = []  # e1-queued request ids, FIFO
        self._delayed: set[int] = set()
        self._candidate = 0
        self._shares: dict[int, ThreadAllocation] = {}
        self._generation = 0
        self._rates_dirty = False
        self._metrics = MetricsCollector(cores)
        self._ctx = SchedulerContext(self)
        self._completed = 0
        self._shed = 0
        self.attribution = attribution

    # ------------------------------------------------------------------
    @property
    def system_count(self) -> int:
        return len(self._running) + len(self._delayed) + self._candidate

    @property
    def running_count(self) -> int:
        return len(self._running)

    @property
    def total_threads(self) -> int:
        return sum(r.degree for r in self._running.values())

    @property
    def queued_count(self) -> int:
        return len(self._waiting_fifo)

    @property
    def cores_online(self) -> int:
        return self._cores_online

    # ------------------------------------------------------------------
    def run(self, arrivals: Sequence[ArrivalSpec]) -> SimulationResult:
        if not arrivals:
            raise SimulationError("no arrivals to simulate")
        self.scheduler.reset()
        self.boost.reset()
        for rid, spec in enumerate(sorted(arrivals, key=lambda s: s.time_ms)):
            request = SimRequest(rid, spec.time_ms, spec.seq_ms, spec.speedup, tag=spec.tag)
            self._requests[rid] = request
            self._queue.push(spec.time_ms, Event(EventKind.ARRIVAL, request_id=rid))
        if self.fault_plan is not None:
            for core_fault in self.fault_plan.core_faults:
                self._queue.push(
                    core_fault.time_ms,
                    Event(EventKind.FAULT, payload=(_CORE_LOSS, core_fault)),
                )
            for stall in self.fault_plan.stalls:
                self._queue.push(
                    stall.time_ms, Event(EventKind.FAULT, payload=(_STALL, stall))
                )

        while self._queue:
            time_ms, event = self._queue.pop()
            if event.kind is EventKind.COMPLETION and event.generation != self._generation:
                continue  # stale rate snapshot
            if time_ms < self.now_ms - _FINISH_EPS:
                raise SimulationError(
                    f"time went backwards: {time_ms} < {self.now_ms}"
                )
            self._commit(max(time_ms, self.now_ms))
            self._dispatch(event)
            if self._rates_dirty:
                self._recompute_rates()

        if self._completed + self._shed != len(self._requests):
            stuck = len(self._requests) - self._completed - self._shed
            raise SimulationError(
                f"{stuck} requests never completed (scheduler deadlock?)"
            )
        return self._metrics.finalize()

    # ------------------------------------------------------------------
    def _dispatch(self, event: Event) -> None:
        if event.kind is EventKind.ARRIVAL:
            self._handle_arrival(self._requests[event.request_id])
        elif event.kind is EventKind.DELAY_EXPIRED:
            self._handle_delay_expired(self._requests[event.request_id])
        elif event.kind is EventKind.QUANTUM:
            self._handle_quantum(self._requests[event.request_id])
        elif event.kind is EventKind.COMPLETION:
            self._handle_completion()
        elif event.kind is EventKind.FAULT:
            self._handle_fault(event.payload)
        else:  # pragma: no cover - enum is closed
            raise SimulationError(f"unknown event {event}")

    def _handle_arrival(self, request: SimRequest) -> None:
        if self.fault_plan is not None:
            inflation = self.fault_plan.straggler_inflation(request.rid)
            if inflation > 1.0:
                request.remaining_work *= inflation
                request.impaired = True
                self._metrics.fault_stats.stragglers_injected += 1
        self._candidate = 1
        decision = self.scheduler.on_arrival(self._ctx, request)
        self._candidate = 0
        self._apply_admission(request, decision)

    def _handle_delay_expired(self, request: SimRequest) -> None:
        if request.state is not RequestState.DELAYED:
            return
        self._delayed.discard(request.rid)
        self._candidate = 1
        decision = self.scheduler.on_wait_check(self._ctx, request)
        self._candidate = 0
        self._apply_admission(request, decision)

    def _handle_quantum(self, request: SimRequest) -> None:
        if request.state is not RequestState.RUNNING:
            return
        desired = self.scheduler.on_quantum(self._ctx, request)
        new_degree = max(desired, request.degree)
        if request.raise_degree(new_degree):
            self._rates_dirty = True
        self._queue.push(
            self.now_ms + self.quantum_ms,
            Event(EventKind.QUANTUM, request_id=request.rid),
        )

    def _handle_completion(self) -> None:
        finished = [r for r in self._running.values() if r.is_finished]
        if not finished:
            raise SimulationError("completion event with no finished request")
        for request in finished:
            request.finish(self.now_ms)
            del self._running[request.rid]
            self._metrics.record(request)
            self.boost.release(request)
            self._completed += 1
            self.scheduler.on_exit(self._ctx, request)
        self._rates_dirty = True
        self._wake_waiters(exits=len(finished))

    # ------------------------------------------------------------------
    def _handle_fault(self, payload: object) -> None:
        kind, detail = payload  # type: ignore[misc]
        stats = self._metrics.fault_stats
        if kind == _CORE_LOSS:
            fault: CoreFault = detail
            removed = self._cores_online - max(1, self._cores_online - fault.cores)
            self._cores_online -= removed
            stats.core_faults_applied += 1
            stats.faults_fired += 1
            self._queue.push(
                self.now_ms + fault.duration_ms,
                Event(EventKind.FAULT, payload=(_CORE_RESTORE, removed)),
            )
            self._rates_dirty = True
        elif kind == _CORE_RESTORE:
            self._cores_online = min(self.cores, self._cores_online + int(detail))
            self._rates_dirty = True
        elif kind == _STALL:
            stall: StallFault = detail
            victim = self._stall_victim()
            if victim is None:
                return
            victim.stalled_until_ms = self.now_ms + stall.duration_ms
            victim.impaired = True
            stats.stalls_injected += 1
            stats.faults_fired += 1
            self._queue.push(
                victim.stalled_until_ms,
                Event(EventKind.FAULT, payload=(_STALL_END, victim.rid)),
            )
            self._rates_dirty = True
        elif kind == _STALL_END:
            self._rates_dirty = True
        else:  # pragma: no cover - payload tags are closed
            raise SimulationError(f"unknown fault payload {payload!r}")

    def _stall_victim(self) -> SimRequest | None:
        candidates = [
            r
            for r in self._running.values()
            if not r.is_stalled(self.now_ms) and not r.is_finished
        ]
        if not candidates:
            return None
        return max(candidates, key=lambda r: (r.remaining_work, -r.rid))

    # ------------------------------------------------------------------
    def _apply_admission(self, request: SimRequest, decision: Admission) -> None:
        if decision.action is AdmissionAction.START or (
            decision.action is AdmissionAction.DELAY and decision.delay_ms <= 0
        ):
            self._start_request(request, decision.degree)
        elif decision.action is AdmissionAction.DELAY:
            request.state = RequestState.DELAYED
            self._delayed.add(request.rid)
            self._queue.push(
                self.now_ms + decision.delay_ms,
                Event(EventKind.DELAY_EXPIRED, request_id=request.rid),
            )
        elif decision.action is AdmissionAction.WAIT_FOR_EXIT:
            if not self._running and not self._delayed:
                self._start_request(request, 1)
            else:
                request.state = RequestState.QUEUED
                self._waiting_fifo.append(request.rid)
        elif decision.action is AdmissionAction.SHED:
            request.shed(self.now_ms)
            self._metrics.record_shed(request, decision.deadline)
            self._shed += 1
        else:  # pragma: no cover - enum is closed
            raise SimulationError(f"unknown admission {decision}")

    def _start_request(self, request: SimRequest, degree: int) -> None:
        request.start(self.now_ms, max(1, degree))
        self._running[request.rid] = request
        self._rates_dirty = True
        if self.scheduler.uses_quantum:
            self._queue.push(
                self.now_ms + self.quantum_ms,
                Event(EventKind.QUANTUM, request_id=request.rid),
            )

    def _wake_waiters(self, exits: int) -> None:
        forced = 0
        while self._waiting_fifo:
            request = self._requests[self._waiting_fifo[0]]
            self._candidate = 1
            decision = self.scheduler.on_wait_check(self._ctx, request)
            self._candidate = 0
            if decision.action is AdmissionAction.WAIT_FOR_EXIT:
                if forced >= exits:
                    break
                decision = Admission.start(1)
                forced += 1
            self._waiting_fifo.pop(0)
            self._apply_admission(request, decision)
        for rid in sorted(self._delayed):
            request = self._requests[rid]
            decision = self.scheduler.on_wait_check(self._ctx, request)
            if decision.action is AdmissionAction.START or (
                decision.action is AdmissionAction.DELAY and decision.delay_ms <= 0
            ):
                self._delayed.discard(rid)
                self._apply_admission(request, Admission.start(decision.degree))
            elif decision.action is AdmissionAction.SHED:
                self._delayed.discard(rid)
                self._apply_admission(request, decision)

    # ------------------------------------------------------------------
    def _commit(self, t: float) -> None:
        dt = t - self.now_ms
        if dt > 0:
            busy_cores = 0.0
            total_threads = 0
            for request in self._running.values():
                alloc = self._shares.get(request.rid)
                core_alloc = alloc.core_alloc if alloc is not None else 0.0
                factor = alloc.progress_factor if alloc is not None else 0.0
                request.advance(
                    dt,
                    core_alloc,
                    factor,
                    stalled=request.is_stalled(self.now_ms),
                    attribution=self.attribution,
                )
                busy_cores += core_alloc
                total_threads += request.degree
            in_system = (
                len(self._running) + len(self._delayed) + len(self._waiting_fifo)
            )
            self._metrics.observe_interval(dt, total_threads, busy_cores, in_system)
        self.now_ms = t

    def _recompute_rates(self) -> None:
        self._rates_dirty = False
        self._generation += 1
        self._shares = _baseline_compute_shares(
            self._running.values(), self._cores_online, self.spin_fraction
        )
        earliest: float | None = None
        for request in self._running.values():
            factor = self._shares[request.rid].progress_factor
            request.rate = request.speedup.speedup(request.degree) * factor
            if request.is_stalled(self.now_ms):
                request.rate = 0.0
            if request.rate > 0:
                eta = self.now_ms + request.remaining_work / request.rate
                if earliest is None or eta < earliest:
                    earliest = eta
        if earliest is not None:
            self._queue.push(
                max(earliest, self.now_ms),
                Event(EventKind.COMPLETION, generation=self._generation),
            )


def simulate_baseline(
    arrivals: Sequence[ArrivalSpec],
    scheduler: Scheduler,
    cores: int,
    quantum_ms: float = 5.0,
    spin_fraction: float = 0.25,
    fault_plan: FaultPlan | None = None,
    attribution: bool = True,
) -> SimulationResult:
    """Run the frozen reference engine (for equivalence checks only)."""
    engine = BaselineEngine(
        cores=cores,
        scheduler=scheduler,
        quantum_ms=quantum_ms,
        spin_fraction=spin_fraction,
        fault_plan=fault_plan,
        attribution=attribution,
    )
    return engine.run(arrivals)
