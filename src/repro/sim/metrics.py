"""Measurement: per-request records and time-weighted system integrals.

Provides everything the paper's evaluation plots need:

* response-time percentiles and means (all latency figures) — latency
  includes queueing delay, as in Section 6.1;
* time-averaged software-thread count and CPU utilization
  (Figures 9(c), 12(c));
* per-request average parallelism split by demand class (Figure 9(a));
* final-degree distributions (Figures 9(b), 12(b));
* the flight recorder's additive latency attribution (DESIGN.md §9):
  queue wait + service + contention + boost wait + stall == latency,
  per request and exactly (to float residue).

Empty-quantile contract (shared with :mod:`repro.telemetry.histogram`):
*streaming / monitoring* surfaces return ``nan`` on empty data — a
dashboard must render, not crash — while *completed-run analysis*
raises: a :class:`SimulationResult` with zero completions is rejected
at construction, so its quantile views never see an empty sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.core.formulas import weighted_order_statistic
from repro.errors import SimulationError
from repro.faults.plan import FaultStats
from repro.hetero.energy import EnergyReport
from repro.sim.request import SimRequest

__all__ = [
    "ATTRIBUTION_COMPONENTS",
    "RequestRecord",
    "ShedRecord",
    "MetricsCollector",
    "SimulationResult",
]

#: The additive latency components, in reporting order.  For every
#: completed request they sum to ``latency_ms`` (within float residue).
ATTRIBUTION_COMPONENTS = (
    "queue_ms",
    "service_ms",
    "contention_ms",
    "boost_wait_ms",
    "stall_ms",
)


@dataclass(frozen=True)
class RequestRecord:
    """Immutable completion record of one request."""

    rid: int
    arrival_ms: float
    start_ms: float
    finish_ms: float
    seq_ms: float
    final_degree: int
    average_parallelism: float
    thread_time_ms: float
    core_time_ms: float
    boosted: bool
    #: Flight-recorder components (0.0 when the engine ran with
    #: ``attribution=False``): full-speed-equivalent service time,
    #: processor-sharing contention inflation, contention suffered
    #: while a requested boost was denied, and injected-stall time.
    service_ms: float = 0.0
    contention_ms: float = 0.0
    boost_wait_ms: float = 0.0
    stall_ms: float = 0.0
    #: Heterogeneous-topology accounting (``repro.hetero``): the pool
    #: the request finished on, the joules its execution drew, and how
    #: many cross-pool migrations it took.  All zero on the legacy
    #: homogeneous path (no energy model is defined there).
    pool: int = 0
    energy_j: float = 0.0
    migrations: int = 0
    tag: Any = None

    @property
    def latency_ms(self) -> float:
        """Arrival-to-completion response time."""
        return self.finish_ms - self.arrival_ms

    @property
    def execution_ms(self) -> float:
        """Start-to-completion wall time (excludes admission waits)."""
        return self.finish_ms - self.start_ms

    @property
    def queueing_ms(self) -> float:
        """Time spent waiting for admission."""
        return self.start_ms - self.arrival_ms

    def attribution(self) -> dict[str, float]:
        """The additive latency decomposition, in component order.

        ``sum(attribution().values()) == latency_ms`` to within float
        residue when the engine's flight recorder was enabled.
        """
        return {
            "queue_ms": self.queueing_ms,
            "service_ms": self.service_ms,
            "contention_ms": self.contention_ms,
            "boost_wait_ms": self.boost_wait_ms,
            "stall_ms": self.stall_ms,
        }

    @property
    def attributed_ms(self) -> float:
        """Sum of the flight-recorder components (should equal
        :attr:`latency_ms`; the property test pins the residue)."""
        return (
            self.queueing_ms
            + self.service_ms
            + self.contention_ms
            + self.boost_wait_ms
            + self.stall_ms
        )


@dataclass(frozen=True)
class ShedRecord:
    """A request rejected by load shedding — recorded, never dropped."""

    rid: int
    arrival_ms: float
    shed_ms: float
    seq_ms: float
    #: True when the shed was deadline-caused (queueing delay exceeded
    #: the deadline budget) rather than a backlog-bound breach.
    deadline: bool
    tag: Any = None

    @property
    def waited_ms(self) -> float:
        """How long the request waited before being rejected."""
        return self.shed_ms - self.arrival_ms


class MetricsCollector:
    """Accumulates records and time-weighted integrals during a run."""

    def __init__(self, cores: int) -> None:
        self.cores = cores
        self.records: list[RequestRecord] = []
        self.shed_records: list[ShedRecord] = []
        self.fault_stats = FaultStats()
        self._thread_integral = 0.0
        self._core_busy_integral = 0.0
        self._system_count_integral = 0.0
        self._observed_ms = 0.0
        self._thread_residency: dict[int, float] = {}
        #: Set by the engine at end of run on a heterogeneous topology;
        #: stays ``None`` on the legacy homogeneous path.
        self.energy_report: EnergyReport | None = None

    def observe_interval(
        self, dt_ms: float, total_threads: int, busy_cores: float, system_count: int
    ) -> None:
        """Integrate system-level gauges over a constant-rate interval."""
        if dt_ms < 0:
            raise SimulationError(f"negative interval {dt_ms}")
        self._thread_integral += total_threads * dt_ms
        self._core_busy_integral += busy_cores * dt_ms
        self._system_count_integral += system_count * dt_ms
        self._observed_ms += dt_ms
        self._thread_residency[total_threads] = (
            self._thread_residency.get(total_threads, 0.0) + dt_ms
        )

    def record(self, request: SimRequest) -> None:
        """Snapshot a completed request."""
        if request.start_ms is None or request.finish_ms is None:
            raise SimulationError(f"request {request.rid} not finished")
        self.records.append(
            RequestRecord(
                rid=request.rid,
                arrival_ms=request.arrival_ms,
                start_ms=request.start_ms,
                finish_ms=request.finish_ms,
                seq_ms=request.seq_ms,
                final_degree=request.degree,
                average_parallelism=request.average_parallelism,
                thread_time_ms=request.thread_time_ms,
                core_time_ms=request.core_time_ms,
                boosted=request.boosted,
                service_ms=request.attr_service_ms,
                contention_ms=request.attr_contention_ms,
                boost_wait_ms=request.attr_boost_wait_ms,
                stall_ms=request.attr_stall_ms,
                pool=request.pool,
                energy_j=request.energy_mj / 1000.0,
                migrations=request.migrations,
                tag=request.tag,
            )
        )
        if request.impaired:
            self.fault_stats.degraded_completions += 1

    def record_shed(self, request: SimRequest, deadline: bool) -> None:
        """Account a load-shed (fail-fast rejected) request."""
        if request.shed_ms is None:
            raise SimulationError(f"request {request.rid} not shed")
        self.shed_records.append(
            ShedRecord(
                rid=request.rid,
                arrival_ms=request.arrival_ms,
                shed_ms=request.shed_ms,
                seq_ms=request.seq_ms,
                deadline=deadline,
                tag=request.tag,
            )
        )
        self.fault_stats.shed_requests += 1
        if deadline:
            self.fault_stats.deadline_sheds += 1

    def finalize(self) -> "SimulationResult":
        """Produce the immutable result object."""
        return SimulationResult(
            records=sorted(self.records, key=lambda r: r.arrival_ms),
            cores=self.cores,
            duration_ms=self._observed_ms,
            thread_integral=self._thread_integral,
            core_busy_integral=self._core_busy_integral,
            system_count_integral=self._system_count_integral,
            thread_residency=dict(self._thread_residency),
            shed_records=sorted(self.shed_records, key=lambda r: r.arrival_ms),
            fault_stats=self.fault_stats,
            energy=self.energy_report,
        )


class SimulationResult:
    """Completed-run measurements with the paper's metric views."""

    def __init__(
        self,
        records: list[RequestRecord],
        cores: int,
        duration_ms: float,
        thread_integral: float,
        core_busy_integral: float,
        system_count_integral: float,
        thread_residency: dict[int, float] | None = None,
        shed_records: list[ShedRecord] | None = None,
        fault_stats: FaultStats | None = None,
        energy: EnergyReport | None = None,
    ) -> None:
        if not records:
            raise SimulationError("simulation produced no completed requests")
        self.records = records
        self.cores = cores
        self.duration_ms = duration_ms
        self._thread_integral = thread_integral
        self._core_busy_integral = core_busy_integral
        self._system_count_integral = system_count_integral
        self._thread_residency = thread_residency or {}
        #: Fail-fast rejections (empty when shedding is off).
        self.shed_records = shed_records or []
        #: Fault-injection and shedding counters for the whole run.
        self.fault_stats = fault_stats or FaultStats()
        #: Per-pool energy totals (``None`` on the homogeneous path).
        self.energy = energy

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # Latency views
    # ------------------------------------------------------------------
    def latencies_ms(self) -> np.ndarray:
        """Response times in arrival order."""
        return np.array([r.latency_ms for r in self.records], dtype=float)

    def tail_latency_ms(self, phi: float = 0.99) -> float:
        """φ-percentile response time (Eq. 5 order statistic)."""
        lats = self.latencies_ms()
        return weighted_order_statistic(lats, np.ones_like(lats), phi)

    def mean_latency_ms(self) -> float:
        """Mean response time."""
        return float(self.latencies_ms().mean())

    # ------------------------------------------------------------------
    # Tail attribution views (DESIGN.md §9)
    # ------------------------------------------------------------------
    def tail_records(self, phi: float = 0.99) -> list[RequestRecord]:
        """The requests composing the φ-tail: every completion whose
        latency is at least the φ-percentile order statistic."""
        threshold = self.tail_latency_ms(phi)
        return [r for r in self.records if r.latency_ms >= threshold]

    def attribution_summary(self, phi: float = 0.99) -> dict[str, dict[str, float]]:
        """Mean additive latency components, overall and over the φ-tail.

        Returns ``{"overall": {...}, "tail": {...}}`` where each inner
        dict maps component name to its mean milliseconds plus
        ``latency_ms`` (the mean total) — the numbers behind the
        ``tail-attribution`` experiment's table.
        """

        def means(records: list[RequestRecord]) -> dict[str, float]:
            n = len(records)
            out = {
                name: float(np.sum([r.attribution()[name] for r in records]) / n)
                for name in ATTRIBUTION_COMPONENTS
            }
            out["latency_ms"] = float(np.mean([r.latency_ms for r in records]))
            return out

        return {"overall": means(self.records), "tail": means(self.tail_records(phi))}

    # ------------------------------------------------------------------
    # Energy views (repro.hetero)
    # ------------------------------------------------------------------
    def joules_per_query(self) -> float:
        """Total platform energy per completed request (NaN when the
        run had no energy model, i.e. the homogeneous path)."""
        if self.energy is None:
            return float("nan")
        return self.energy.joules_per_query(len(self.records))

    # ------------------------------------------------------------------
    # Robustness views (load shedding / fault injection)
    # ------------------------------------------------------------------
    @property
    def shed_count(self) -> int:
        """Requests rejected by load shedding during the run."""
        return len(self.shed_records)

    @property
    def admitted_fraction(self) -> float:
        """Fraction of offered requests that were admitted (completed
        over completed + shed) — the goodput denominator under shedding."""
        total = len(self.records) + len(self.shed_records)
        return len(self.records) / total if total else 0.0

    # ------------------------------------------------------------------
    # System gauges (Figures 9(c), 12(c))
    # ------------------------------------------------------------------
    def average_threads(self) -> float:
        """Time-averaged software-thread count."""
        return self._thread_integral / self.duration_ms if self.duration_ms else 0.0

    def cpu_utilization(self) -> float:
        """Fraction of core-time spent executing request threads."""
        capacity = self.cores * self.duration_ms
        return self._core_busy_integral / capacity if capacity else 0.0

    def average_system_count(self) -> float:
        """Time-averaged number of requests in the system."""
        return self._system_count_integral / self.duration_ms if self.duration_ms else 0.0

    def thread_count_distribution(self, bins: list[tuple[int, int]]) -> dict[str, float]:
        """Fraction of wall time spent with the total thread count in
        each inclusive ``(lo, hi)`` bin (Figure 12(c)'s <11 / 11-20 /
        21-23 breakdown)."""
        total = sum(self._thread_residency.values())
        out: dict[str, float] = {}
        for lo, hi in bins:
            label = f"{lo}-{hi}"
            mass = sum(
                ms for count, ms in self._thread_residency.items() if lo <= count <= hi
            )
            out[label] = mass / total if total else 0.0
        return out

    # ------------------------------------------------------------------
    # Parallelism views (Figures 9(a,b), 12(b))
    # ------------------------------------------------------------------
    def average_parallelism(self, lo: float = 0.0, hi: float = 1.0) -> float:
        """Mean per-request average parallelism over the demand-percentile
        band ``[lo, hi)`` — e.g. ``(0.95, 1.0)`` for the longest 5 %."""
        selected = self._demand_band(lo, hi)
        return float(np.mean([r.average_parallelism for r in selected]))

    def final_degree_histogram(self, lo: float = 0.0, hi: float = 1.0) -> dict[int, float]:
        """Fraction of requests finishing at each parallelism degree."""
        selected = self._demand_band(lo, hi)
        counts: dict[int, int] = {}
        for record in selected:
            counts[record.final_degree] = counts.get(record.final_degree, 0) + 1
        total = len(selected)
        return {degree: count / total for degree, count in sorted(counts.items())}

    def _demand_band(self, lo: float, hi: float) -> list[RequestRecord]:
        if not 0.0 <= lo < hi <= 1.0:
            raise ValueError(f"need 0 <= lo < hi <= 1, got [{lo}, {hi})")
        ordered = sorted(self.records, key=lambda r: r.seq_ms)
        n = len(ordered)
        start = int(np.floor(lo * n))
        stop = max(start + 1, int(np.ceil(hi * n)))
        return ordered[start:stop]

    # ------------------------------------------------------------------
    # Slicing (warmup discard; Figure 11's per-quantum windows)
    # ------------------------------------------------------------------
    def slice_by_arrival(self, start: int, stop: int | None = None) -> "SimulationResult":
        """Sub-result over records ``start:stop`` in arrival order.

        System-level integrals are scaled by the retained fraction —
        they remain whole-run averages, which is what the paper reports.
        Shed records are kept only for the slice's arrival window; fault
        counters remain whole-run (faults are not per-record).
        """
        subset = self.records[start:stop]
        if not subset:
            raise ValueError(f"empty slice [{start}:{stop}]")
        fraction = len(subset) / len(self.records)
        lo = subset[0].arrival_ms
        hi = subset[-1].arrival_ms
        return SimulationResult(
            records=subset,
            cores=self.cores,
            duration_ms=self.duration_ms * fraction,
            thread_integral=self._thread_integral * fraction,
            core_busy_integral=self._core_busy_integral * fraction,
            system_count_integral=self._system_count_integral * fraction,
            thread_residency={
                count: ms * fraction for count, ms in self._thread_residency.items()
            },
            shed_records=[r for r in self.shed_records if lo <= r.arrival_ms <= hi],
            fault_stats=self.fault_stats,
            energy=self.energy.scaled(fraction) if self.energy is not None else None,
        )
