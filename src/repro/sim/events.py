"""Typed events and the time-ordered event queue.

The engine is a discrete-event simulator: every state change is an
event drawn from a single min-heap ordered by ``(time, sequence)``.
The sequence number makes ordering of simultaneous events deterministic
(FIFO in insertion order), which keeps whole simulations reproducible.

Hot-path notes: heap entries are plain ``(time_ms, sequence, event)``
tuples — tuple comparison is C-level and the unique sequence number
guarantees the :class:`Event` payload itself is never compared — and
:class:`Event` is a ``__slots__`` class rather than a dataclass, since
the engine allocates one per quantum tick and completion.
"""

from __future__ import annotations

import enum
import heapq

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(enum.Enum):
    """All event types the engine understands."""

    ARRIVAL = "arrival"
    #: Expiry of an FM admission delay (``t0 > 0``).
    DELAY_EXPIRED = "delay_expired"
    #: Self-scheduling tick for one running request (Section 4.2).
    QUANTUM = "quantum"
    #: Tentative completion; ``generation`` stale-checks it.
    COMPLETION = "completion"
    #: An injected fault firing (core loss/restore, worker stall) —
    #: see :mod:`repro.faults`.
    FAULT = "fault"


class Event:
    """One scheduled occurrence.

    ``request_id`` identifies the subject for all kinds but COMPLETION,
    which instead carries the rate ``generation`` it was computed under:
    any later rate change invalidates it.  FAULT events carry their
    fault description in ``payload``.
    """

    __slots__ = ("kind", "request_id", "generation", "payload")

    def __init__(
        self,
        kind: EventKind,
        request_id: int = -1,
        generation: int = -1,
        payload: object = None,
    ) -> None:
        self.kind = kind
        self.request_id = request_id
        self.generation = generation
        self.payload = payload

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event({self.kind.name}, request_id={self.request_id}, "
            f"generation={self.generation})"
        )


class EventQueue:
    """Deterministic min-heap of :class:`Event` keyed by time.

    The backing heap (:attr:`heap`) holds raw ``(time_ms, sequence,
    event)`` tuples; the engine's run loop reads it directly to skip a
    method call per event.
    """

    __slots__ = ("heap", "_next_seq", "_arrival_seq")

    def __init__(self) -> None:
        self.heap: list[tuple[float, int, Event]] = []
        self._next_seq = 0
        self._arrival_seq = -(2**62)

    def push(self, time_ms: float, event: Event) -> None:
        """Schedule ``event`` at ``time_ms``."""
        if time_ms < 0:
            raise ValueError(f"event time must be >= 0, got {time_ms}")
        seq = self._next_seq
        self._next_seq = seq + 1
        heapq.heappush(self.heap, (time_ms, seq, event))

    def push_streamed_arrival(self, time_ms: float, event: Event) -> None:
        """Schedule a lazily generated ARRIVAL event.

        In batch mode every arrival is pushed at setup time, so at any
        time tie an arrival's sequence number is smaller than every
        runtime-generated event's.  Streamed arrivals are pushed mid-run
        — to preserve the exact same tie-break (and with it bit-identical
        traces), they draw from a dedicated negative sequence band that
        stays below every :meth:`push` sequence while remaining FIFO
        among arrivals (which the stream feeds in time order anyway).
        """
        if time_ms < 0:
            raise ValueError(f"event time must be >= 0, got {time_ms}")
        seq = self._arrival_seq
        self._arrival_seq = seq + 1
        heapq.heappush(self.heap, (time_ms, seq, event))

    def pop(self) -> tuple[float, Event]:
        """Remove and return the earliest ``(time, event)``."""
        time_ms, _, event = heapq.heappop(self.heap)
        return time_ms, event

    def peek_time(self) -> float | None:
        """Earliest scheduled time, or ``None`` when empty."""
        return self.heap[0][0] if self.heap else None

    def __len__(self) -> int:
        return len(self.heap)

    def __bool__(self) -> bool:
        return bool(self.heap)
