"""Typed events and the time-ordered event queue.

The engine is a discrete-event simulator: every state change is an
event drawn from a single min-heap ordered by ``(time, sequence)``.
The sequence number makes ordering of simultaneous events deterministic
(FIFO in insertion order), which keeps whole simulations reproducible.
"""

from __future__ import annotations

import enum
import heapq
import itertools
from dataclasses import dataclass, field

__all__ = ["EventKind", "Event", "EventQueue"]


class EventKind(enum.Enum):
    """All event types the engine understands."""

    ARRIVAL = "arrival"
    #: Expiry of an FM admission delay (``t0 > 0``).
    DELAY_EXPIRED = "delay_expired"
    #: Self-scheduling tick for one running request (Section 4.2).
    QUANTUM = "quantum"
    #: Tentative completion; ``generation`` stale-checks it.
    COMPLETION = "completion"
    #: An injected fault firing (core loss/restore, worker stall) —
    #: see :mod:`repro.faults`.
    FAULT = "fault"


@dataclass(frozen=True)
class Event:
    """One scheduled occurrence.

    ``request_id`` identifies the subject for all kinds but COMPLETION,
    which instead carries the rate ``generation`` it was computed under:
    any later rate change invalidates it.  FAULT events carry their
    fault description in ``payload``.
    """

    kind: EventKind
    request_id: int = -1
    generation: int = -1
    payload: object = None


@dataclass(order=True)
class _HeapItem:
    time_ms: float
    sequence: int
    event: Event = field(compare=False)


class EventQueue:
    """Deterministic min-heap of :class:`Event` keyed by time."""

    def __init__(self) -> None:
        self._heap: list[_HeapItem] = []
        self._counter = itertools.count()

    def push(self, time_ms: float, event: Event) -> None:
        """Schedule ``event`` at ``time_ms``."""
        if time_ms < 0:
            raise ValueError(f"event time must be >= 0, got {time_ms}")
        heapq.heappush(self._heap, _HeapItem(time_ms, next(self._counter), event))

    def pop(self) -> tuple[float, Event]:
        """Remove and return the earliest ``(time, event)``."""
        item = heapq.heappop(self._heap)
        return item.time_ms, item.event

    def peek_time(self) -> float | None:
        """Earliest scheduled time, or ``None`` when empty."""
        return self._heap[0].time_ms if self._heap else None

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
