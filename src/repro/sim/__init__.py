"""Virtual-time multicore server simulator.

The hardware substrate substitution for the paper's Xeon testbeds: a
fluid discrete-event model of cores, software threads, processor
sharing, and selective priority boosting (see DESIGN.md §4).
"""

from repro.sim.api import Admission, AdmissionAction, Scheduler, SchedulerContext
from repro.sim.engine import ArrivalSpec, Engine, simulate
from repro.sim.events import Event, EventKind, EventQueue
from repro.sim.metrics import MetricsCollector, RequestRecord, ShedRecord, SimulationResult
from repro.sim.processor import BoostController, compute_shares
from repro.sim.request import RequestState, SimRequest
from repro.sim.stream import StreamingCollector, StreamSummary, simulate_stream
from repro.sim.trace import TraceEvent, TraceEventKind, TraceRecorder
from repro.sim.vector import VectorEngine

__all__ = [
    "Admission",
    "AdmissionAction",
    "ArrivalSpec",
    "BoostController",
    "Engine",
    "Event",
    "EventKind",
    "EventQueue",
    "MetricsCollector",
    "RequestRecord",
    "RequestState",
    "Scheduler",
    "SchedulerContext",
    "ShedRecord",
    "SimRequest",
    "SimulationResult",
    "StreamSummary",
    "StreamingCollector",
    "TraceEvent",
    "TraceEventKind",
    "TraceRecorder",
    "VectorEngine",
    "compute_shares",
    "simulate",
    "simulate_stream",
]
