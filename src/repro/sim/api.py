"""The contract between the simulator engine and scheduling policies.

A :class:`Scheduler` decides, for each request, when it starts and with
how many worker threads — the engine owns time, cores, and bookkeeping.
The interface mirrors the hooks the paper's runtime exposes:

* ``on_arrival`` — called when a request enters; the policy admits it
  (with an initial degree), delays it (FM admission control, ``t0 > 0``),
  or queues it until an exit (``t0 = e1``).
* ``on_wait_check`` — re-evaluation hook for waiting requests, invoked
  when load drops (request exits) so policies can self-correct, and on
  expiry of a requested delay.
* ``on_quantum`` — the self-scheduling hook (Section 4.2): every
  scheduling quantum a running request re-reads the instantaneous load
  and may raise its parallelism.  Degrees never decrease (Theorem 1).
* ``on_exit`` — called when a request completes.

Policies that never change degree mid-flight (SEQ, FIX-N, Adaptive, RC)
set :attr:`Scheduler.uses_quantum` to ``False`` so the engine skips
quantum events entirely.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.request import SimRequest

__all__ = ["AdmissionAction", "Admission", "SchedulerContext", "Scheduler"]


class AdmissionAction(enum.Enum):
    """What to do with a request that is not yet running."""

    START = "start"
    DELAY = "delay"
    WAIT_FOR_EXIT = "wait_for_exit"
    #: Reject the request immediately — overload load shedding.  A shed
    #: request never runs; it is recorded (never silently dropped) and
    #: the client fails fast instead of queueing into a hopeless tail.
    SHED = "shed"


@dataclass(frozen=True)
class Admission:
    """A policy's decision for a waiting request."""

    action: AdmissionAction
    degree: int = 1
    delay_ms: float = 0.0
    #: For SHED decisions: whether the rejection was deadline-caused
    #: (as opposed to a backlog-bound breach).
    deadline: bool = False
    #: For START decisions on a heterogeneous topology: the core-pool
    #: index to place the request on.  ``None`` lets the engine pick
    #: (fastest pool with headroom).  Ignored on the homogeneous path.
    pool: int | None = None

    @classmethod
    def start(cls, degree: int, pool: int | None = None) -> "Admission":
        """Start executing now with ``degree`` worker threads.

        ``pool`` optionally pins the request to a core pool on a
        heterogeneous topology (default: engine placement).
        """
        return cls(AdmissionAction.START, degree=degree, pool=pool)

    @classmethod
    def delay(cls, delay_ms: float) -> "Admission":
        """Re-evaluate after ``delay_ms`` (FM's ``t0 > 0`` admission)."""
        return cls(AdmissionAction.DELAY, delay_ms=delay_ms)

    @classmethod
    def wait_for_exit(cls) -> "Admission":
        """Queue until another request exits (FM's ``e1`` marker)."""
        return cls(AdmissionAction.WAIT_FOR_EXIT)

    @classmethod
    def shed(cls, deadline: bool = False) -> "Admission":
        """Reject the request now (fail fast under overload).

        ``deadline=True`` marks the rejection as caused by a
        deadline-budget breach rather than a backlog bound — the
        metrics layer accounts the two separately.
        """
        return cls(AdmissionAction.SHED, deadline=deadline)


class SchedulerContext:
    """The system state a policy may observe, plus its one actuator
    besides degrees: selective thread-priority boosting.

    The engine implements this interface; policies receive it on every
    hook call.  ``system_count`` is the paper's load metric — "the
    number of requests in the system", waiting or running.
    """

    def __init__(self, engine) -> None:
        self._engine = engine

    @property
    def now_ms(self) -> float:
        """Current virtual time."""
        return self._engine.now_ms

    @property
    def cores(self) -> int:
        """Hardware parallelism of the simulated server."""
        return self._engine.cores

    @property
    def system_count(self) -> int:
        """Instantaneous number of requests in the system (running,
        delayed, or queued) — the interval-table index."""
        return self._engine.system_count

    @property
    def running_count(self) -> int:
        """Requests actively executing."""
        return self._engine.running_count

    @property
    def total_threads(self) -> int:
        """Total software threads of all running requests."""
        return self._engine.total_threads

    @property
    def queued_count(self) -> int:
        """Requests in the ``e1`` backlog (queued, not yet admitted) —
        the quantity overload shedding bounds."""
        return self._engine.queued_count

    @property
    def cores_online(self) -> int:
        """Cores currently serving requests (may be below ``cores``
        while an injected core fault is active)."""
        return self._engine.cores_online

    @property
    def boosted_threads(self) -> int:
        """Threads currently holding boosted priority."""
        return self._engine.boost.boosted_threads

    def try_boost(self, request: "SimRequest", degree: int) -> bool:
        """Request boosted priority for all of ``request``'s threads.

        Succeeds only while the boosted-thread total stays strictly
        below the core count (Section 4.2).  Idempotent for an
        already-boosted request.
        """
        return self._engine.boost.try_boost(request, degree)

    # -- heterogeneous-topology surface (repro.hetero) -----------------
    @property
    def topology(self):
        """The :class:`~repro.hetero.pools.Topology`, or ``None`` on
        the legacy homogeneous path."""
        return self._engine.topology

    @property
    def pool_count(self) -> int:
        """Number of core pools (1 on the homogeneous path)."""
        topology = self._engine.topology
        return len(topology) if topology is not None else 1

    @property
    def fastest_pool(self) -> int:
        """Index of the highest-speed pool (0 when homogeneous)."""
        topology = self._engine.topology
        return topology.fastest_pool if topology is not None else 0

    @property
    def slowest_pool(self) -> int:
        """Index of the lowest-speed pool (0 when homogeneous)."""
        topology = self._engine.topology
        return topology.slowest_pool if topology is not None else 0

    def pool_free_cores(self, pool: int) -> float:
        """Occupancy headroom of ``pool``: online cores minus the
        summed occupancy demand of requests currently placed there.
        May be negative when the pool is oversubscribed."""
        return self._engine.pool_free_cores(pool)

    def migrate(self, request: "SimRequest", pool: int) -> bool:
        """Move a *running* request's threads to another core pool.

        Returns True when the placement changed.  No-op (False) on the
        homogeneous path, for an invalid index, or when the request is
        already there.  This is the Hurry-up actuator: threads resume
        on the target pool at the next rate recomputation — migration
        cost is modeled as zero (the paper's queries are orders of
        magnitude longer than a cross-cluster migration).
        """
        return self._engine.migrate(request, pool)


class Scheduler(ABC):
    """Base class for all scheduling policies."""

    #: Whether the engine should deliver ``on_quantum`` ticks.
    uses_quantum: bool = True

    #: Display name used in experiment reports.
    name: str = "scheduler"

    @abstractmethod
    def on_arrival(self, ctx: SchedulerContext, request: "SimRequest") -> Admission:
        """Decide what happens to a newly arrived request."""

    def on_wait_check(self, ctx: SchedulerContext, request: "SimRequest") -> Admission:
        """Re-evaluate a waiting (delayed or queued) request.

        Default: start sequentially — policies with admission control
        override this.
        """
        return Admission.start(1)

    def on_quantum(self, ctx: SchedulerContext, request: "SimRequest") -> int:
        """Return the degree the running request should use from now on.

        The engine clamps the result to never decrease.  Default keeps
        the current degree.
        """
        return request.degree

    def on_exit(self, ctx: SchedulerContext, request: "SimRequest") -> None:
        """Notification that a request completed (optional hook)."""

    def reset(self) -> None:
        """Clear any per-run mutable state (optional hook)."""
