"""Numpy-vectorized engine batches (DESIGN.md §14).

:class:`VectorEngine` runs the exact simulation :class:`~repro.sim
.engine.Engine` runs — same events, same admission decisions, same
floats — but executes the two O(running set) per-event loops (the
commit that advances every running request and the rate recompute that
re-shares the cores) as numpy array operations.  When hundreds or
thousands of requests run concurrently (saturated FIX-N cells, the
mega-sweep workloads) this turns ~microseconds-per-request python loops
into a handful of array ops, which is where the ≥3x events/sec floor in
``check_engine_regression.py`` comes from.  With small running sets the
array-op overhead dominates and the scalar engine is faster — the
vectorized path is opt-in per run (``simulate(..., vectorized=True)``).

Equivalence design — the gate requires latencies within 1e-9 ms of the
scalar engine, and the implementation aims higher (bit identity) by
construction:

* **Slot order is running-set order.**  Requests append to the column
  arrays in start order and holes left by completions are never reused
  (compaction preserves relative order), so the active slots in index
  order always equal the scalar engine's ``dict`` iteration order.
* **Sums are sequential.**  The demand sums and the busy-core integral
  use ``np.cumsum(...)[-1]`` — numpy's ``add.accumulate`` is defined
  left-to-right, so with zeros on inactive lanes (``x + 0.0 == x``
  exactly for the positive addends here) the result is bit-identical
  to the scalar engine's accumulation loop.  ``np.add.reduce``'s
  pairwise summation would *not* be.
* **Elementwise ops mirror the scalar expressions** operation for
  operation (IEEE 754 makes ``a * b`` the same in numpy and python).
* The only accounting that deviates is per-request ``degree_residency``
  (tracked by anchor timestamps and flushed on degree change/finish
  rather than summed per commit — same value up to float re-association;
  it feeds no RequestRecord field and no latency).

Unsupported in vectorized mode: heterogeneous topologies and the live
observability plane (both raise at construction; use the scalar engine).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError
from repro.faults.plan import FaultPlan
from repro.sim.engine import _STALL, Engine
from repro.sim.events import Event, EventKind
from repro.sim.metrics import MetricsCollector
from repro.sim.request import RequestState, SimRequest
from repro.sim.api import Scheduler
from repro.telemetry import Telemetry

__all__ = ["VectorEngine"]

#: Column names holding float64 per-slot state (zeroed on free lanes).
_FLOAT_COLS = (
    "_rem",  # remaining_work
    "_rate",
    "_dspeed",  # degree_speedup
    "_ddemand",  # degree_demand (occupancy)
    "_sfactor",  # share_factor
    "_score",  # share_cores
    "_degf",  # float(degree) — for thread-time integrals
    "_eff",  # effective_ms
    "_tthread",  # thread_time_ms
    "_tcore",  # core_time_ms
    "_a_serv",
    "_a_cont",
    "_a_bwait",
    "_a_stall",
    "_stall_until",
    "_anchor",  # degree-residency anchor timestamp
)


class VectorEngine(Engine):
    """The scalar engine with its hot loops replaced by numpy batches.

    Drop-in: same constructor (minus heterogeneous topologies and the
    live plane), same :meth:`run` contract including streamed arrivals.
    """

    def __init__(
        self,
        cores: int,
        scheduler: Scheduler,
        quantum_ms: float = 5.0,
        spin_fraction: float = 0.25,
        fault_plan: FaultPlan | None = None,
        telemetry: Telemetry | None = None,
        attribution: bool = True,
        topology: object | None = None,
        live: object | None = None,
        collector: MetricsCollector | None = None,
    ) -> None:
        if topology is not None:
            raise SimulationError(
                "VectorEngine does not support heterogeneous topologies; "
                "use the scalar Engine for repro.hetero runs"
            )
        if live is not None:
            raise SimulationError(
                "VectorEngine does not support the live observability plane; "
                "use the scalar Engine with live=..."
            )
        super().__init__(
            cores=cores,
            scheduler=scheduler,
            quantum_ms=quantum_ms,
            spin_fraction=spin_fraction,
            fault_plan=fault_plan,
            telemetry=telemetry,
            attribution=attribution,
            collector=collector,
        )
        capacity = 256
        for name in _FLOAT_COLS:
            setattr(self, name, np.zeros(capacity, dtype=np.float64))
        self._degi = np.zeros(capacity, dtype=np.int64)
        self._rids = np.zeros(capacity, dtype=np.int64)
        self._act = np.zeros(capacity, dtype=bool)
        self._boosted_col = np.zeros(capacity, dtype=bool)
        self._bpending_col = np.zeros(capacity, dtype=bool)
        self._slot_req: list[SimRequest | None] = [None] * capacity
        self._slot_of: dict[int, int] = {}
        self._n_slots = 0  # append high-water mark (active slots + holes)
        self._n_active = 0

    # ------------------------------------------------------------------
    # Slot management
    # ------------------------------------------------------------------
    def _grow(self) -> None:
        capacity = len(self._act)
        new_capacity = capacity * 2
        for name in _FLOAT_COLS:
            old = getattr(self, name)
            new = np.zeros(new_capacity, dtype=np.float64)
            new[:capacity] = old
            setattr(self, name, new)
        for name in ("_degi", "_rids"):
            old = getattr(self, name)
            new = np.zeros(new_capacity, dtype=np.int64)
            new[:capacity] = old
            setattr(self, name, new)
        for name in ("_act", "_boosted_col", "_bpending_col"):
            old = getattr(self, name)
            new = np.zeros(new_capacity, dtype=bool)
            new[:capacity] = old
            setattr(self, name, new)
        self._slot_req.extend([None] * capacity)

    def _compact(self) -> None:
        """Squeeze out the holes, preserving slot order (and with it
        the equality with the scalar engine's dict iteration order)."""
        n = self._n_slots
        keep = np.nonzero(self._act[:n])[0]
        k = len(keep)
        for name in _FLOAT_COLS:
            col = getattr(self, name)
            col[:k] = col[keep]
            col[k:n] = 0.0
        for name in ("_degi", "_rids"):
            col = getattr(self, name)
            col[:k] = col[keep]
            col[k:n] = 0
        self._boosted_col[:k] = self._boosted_col[keep]
        self._boosted_col[k:n] = False
        self._bpending_col[:k] = self._bpending_col[keep]
        self._bpending_col[k:n] = False
        self._act[:k] = True
        self._act[k:n] = False
        kept_requests = [self._slot_req[i] for i in keep]
        for i, request in enumerate(kept_requests):
            self._slot_req[i] = request
        for i in range(k, n):
            self._slot_req[i] = None
        self._slot_of = {req.rid: i for i, req in enumerate(kept_requests)}
        self._n_slots = k

    def _add_slot(self, request: SimRequest) -> None:
        if self._n_slots == len(self._act):
            if self._n_slots >= 64 and self._n_active * 2 < self._n_slots:
                self._compact()
            else:
                self._grow()
        slot = self._n_slots
        self._n_slots = slot + 1
        self._n_active += 1
        self._slot_of[request.rid] = slot
        self._slot_req[slot] = request
        self._rids[slot] = request.rid
        self._act[slot] = True
        self._rem[slot] = request.remaining_work
        self._rate[slot] = request.rate
        self._dspeed[slot] = request.degree_speedup
        self._ddemand[slot] = request.degree_demand
        self._sfactor[slot] = request.share_factor
        self._score[slot] = request.share_cores
        self._degi[slot] = request.degree
        self._degf[slot] = float(request.degree)
        self._eff[slot] = request.effective_ms
        self._tthread[slot] = request.thread_time_ms
        self._tcore[slot] = request.core_time_ms
        self._a_serv[slot] = request.attr_service_ms
        self._a_cont[slot] = request.attr_contention_ms
        self._a_bwait[slot] = request.attr_boost_wait_ms
        self._a_stall[slot] = request.attr_stall_ms
        self._stall_until[slot] = request.stalled_until_ms
        self._boosted_col[slot] = request.boosted
        self._bpending_col[slot] = request.boost_pending
        self._anchor[slot] = self.now_ms

    def _remove_slot(self, rid: int) -> None:
        slot = self._slot_of.pop(rid)
        self._slot_req[slot] = None
        self._act[slot] = False
        self._boosted_col[slot] = False
        self._bpending_col[slot] = False
        self._degi[slot] = 0
        self._rids[slot] = 0
        for name in _FLOAT_COLS:
            getattr(self, name)[slot] = 0.0
        self._n_active -= 1
        if self._n_slots >= 64 and self._n_active * 2 < self._n_slots:
            self._compact()

    def _flush_residency(self, slot: int, request: SimRequest) -> None:
        """Charge the wall time since the anchor to the request's
        current degree (called before the degree changes and at
        finish — the lazy equivalent of the scalar per-commit sum)."""
        dt = self.now_ms - self._anchor[slot]
        if dt > 0:
            residency = request.degree_residency
            degree = request.degree
            residency[degree] = residency.get(degree, 0.0) + dt
        self._anchor[slot] = self.now_ms

    def _sync_request(self, slot: int, request: SimRequest) -> None:
        """Copy a slot's accumulated state back onto its object (at
        completion, and before scheduler hooks that read progress)."""
        request.remaining_work = float(self._rem[slot])
        request.effective_ms = float(self._eff[slot])
        request.thread_time_ms = float(self._tthread[slot])
        request.core_time_ms = float(self._tcore[slot])
        request.attr_service_ms = float(self._a_serv[slot])
        request.attr_contention_ms = float(self._a_cont[slot])
        request.attr_boost_wait_ms = float(self._a_bwait[slot])
        request.attr_stall_ms = float(self._a_stall[slot])
        request.share_factor = float(self._sfactor[slot])
        request.share_cores = float(self._score[slot])
        request.rate = float(self._rate[slot])

    # ------------------------------------------------------------------
    # Overridden engine entry points
    # ------------------------------------------------------------------
    def _start_request(
        self, request: SimRequest, degree: int, pool: int | None = None
    ) -> None:
        super()._start_request(request, degree, pool)
        self._add_slot(request)

    def _handle_quantum(self, request: SimRequest, event: Event) -> None:
        if request.state is not RequestState.RUNNING:
            super()._handle_quantum(request, event)  # early return, no re-arm
            return
        slot = self._slot_of[request.rid]
        # Scheduler hooks read progress off the object (FM climbs the
        # interval table on effective_progress_ms) — sync the hot
        # fields in before the hook, and the degree/boost state the
        # hook may have changed back out after.
        request.remaining_work = float(self._rem[slot])
        request.effective_ms = float(self._eff[slot])
        request.rate = float(self._rate[slot])
        old_degree = request.degree
        super()._handle_quantum(request, event)
        if request.degree != old_degree:
            self._flush_residency_at_degree(slot, request, old_degree)
            self._degi[slot] = request.degree
            self._degf[slot] = float(request.degree)
            self._dspeed[slot] = request.degree_speedup
            self._ddemand[slot] = request.degree_demand
        self._boosted_col[slot] = request.boosted
        self._bpending_col[slot] = request.boost_pending

    def _flush_residency_at_degree(
        self, slot: int, request: SimRequest, degree: int
    ) -> None:
        dt = self.now_ms - self._anchor[slot]
        if dt > 0:
            residency = request.degree_residency
            residency[degree] = residency.get(degree, 0.0) + dt
        self._anchor[slot] = self.now_ms

    def _handle_fault(self, payload: object) -> None:
        super()._handle_fault(payload)
        if payload[0] == _STALL:  # type: ignore[index]
            # The victim's stalled_until_ms changed on the object; the
            # column must agree before the next commit.  Cold path.
            n = self._n_slots
            stall_until = self._stall_until
            for slot in np.nonzero(self._act[:n])[0]:
                stall_until[slot] = self._slot_req[slot].stalled_until_ms

    def _stall_victim(self) -> SimRequest | None:
        n = self._n_slots
        if n == 0:
            return None
        now = self.now_ms
        rem = self._rem[:n]
        candidates = (
            self._act[:n]
            & (now >= self._stall_until[:n] - 1e-9)  # not is_stalled(now)
            & (rem > 1e-9)  # not is_finished
        )
        if not candidates.any():
            return None
        most = rem[candidates].max()
        tied = candidates & (rem == most)
        rids = self._rids[:n]
        slot = int(np.nonzero(tied)[0][np.argmin(rids[tied])])
        return self._slot_req[slot]

    def _handle_completion(self) -> None:
        n = self._n_slots
        finished_slots = np.nonzero(self._act[:n] & (self._rem[:n] <= 1e-9))[0]
        if finished_slots.size == 0:
            raise SimulationError("completion event with no finished request")
        finished: list[SimRequest] = []
        for slot in finished_slots:  # slot order == running-set order
            request = self._slot_req[slot]
            self._sync_request(slot, request)
            self._flush_residency(slot, request)
            finished.append(request)
        for request in finished:
            request.finish(self.now_ms)
            del self._running[request.rid]
            self._remove_slot(request.rid)
            self._metrics.record(request)  # snapshot before boost release
            if self.telemetry is not None:
                self._finish_telemetry(request)
            self.boost.release(request)
            self._completed += 1
            self.scheduler.on_exit(self._ctx, request)
        if self._discard_done:
            requests = self._requests
            for request in finished:
                del requests[request.rid]
        self._rates_dirty = True
        self._wake_waiters(exits=len(finished))

    # ------------------------------------------------------------------
    # The vectorized hot loops
    # ------------------------------------------------------------------
    def _commit(self, t: float) -> None:
        dt = t - self.now_ms
        if dt > 0:
            n = self._n_slots
            busy_cores = 0.0
            total_threads = 0
            if n:
                now = self.now_ms
                active = self._act[:n]
                sfactor = self._sfactor[:n]
                useful = sfactor * dt  # zero on free lanes (factor 0)
                if self.fault_plan is not None:
                    stalled = active & (now < self._stall_until[:n] - 1e-9)
                    not_stalled = active & ~stalled
                else:
                    stalled = None
                    not_stalled = active
                if self.attribution:
                    if stalled is not None:
                        self._a_stall[:n] += np.where(stalled, dt, 0.0)
                    self._a_serv[:n] += np.where(not_stalled, useful, 0.0)
                    slowdown = dt - useful
                    boost_wait = (
                        not_stalled & self._bpending_col[:n] & ~self._boosted_col[:n]
                    )
                    self._a_bwait[:n] += np.where(boost_wait, slowdown, 0.0)
                    self._a_cont[:n] += np.where(
                        not_stalled & ~boost_wait, slowdown, 0.0
                    )
                self._eff[:n] += useful  # accrues even while stalled, as scalar does
                rem = self._rem[:n]
                remaining = rem - self._rate[:n] * dt
                overshoot = active & (remaining < -1e-6)
                if overshoot.any():
                    slot = int(np.argmax(overshoot))
                    raise SimulationError(
                        f"request {self._slot_req[slot].rid}: "
                        f"overshoot {remaining[slot]}"
                    )
                remaining[remaining <= 0.0] = 0.0
                rem[:] = remaining
                self._tthread[:n] += self._degf[:n] * dt
                score = self._score[:n]
                self._tcore[:n] += score * dt
                # Sequential (cumsum) sum: bit-identical to the scalar
                # engine's running-set accumulation, zeros on free lanes.
                busy_cores = float(np.cumsum(score)[-1])
                total_threads = int(self._degi[:n].sum())
            in_system = (
                len(self._running) + len(self._delayed) + len(self._waiting_fifo)
            )
            self._metrics.observe_interval(dt, total_threads, busy_cores, in_system)
        self.now_ms = t

    def _recompute_rates(self) -> None:
        self._rates_dirty = False
        self._generation += 1
        if self._n_active == 0:
            return  # scalar path: zero sums, factors 1.0, no completion event
        n = self._n_slots
        active = self._act[:n]
        boosted = self._boosted_col[:n]
        demand = self._ddemand[:n]
        # cumsum, not sum(): sequential accumulation in slot order ==
        # the scalar engine's dict-order loop, bit for bit.
        boosted_demand = float(np.cumsum(np.where(boosted, demand, 0.0))[-1])
        unboosted_demand = float(np.cumsum(np.where(active & ~boosted, demand, 0.0))[-1])

        cores = self._cores_online
        boosted_factor = min(1.0, cores / boosted_demand) if boosted_demand > 0 else 1.0
        remaining_cores = cores - boosted_demand * boosted_factor
        if unboosted_demand > 0:
            unboosted_factor = min(1.0, max(0.0, remaining_cores) / unboosted_demand)
        else:
            unboosted_factor = 1.0

        factor = np.where(boosted, boosted_factor, unboosted_factor)
        factor[~active] = 0.0  # free-lane invariant: everything stays zero
        share_cores = demand * factor
        rate = self._dspeed[:n] * factor
        now = self.now_ms
        if self.fault_plan is not None:
            rate[active & (now < self._stall_until[:n] - 1e-9)] = 0.0
        self._sfactor[:n] = factor
        self._score[:n] = share_cores
        self._rate[:n] = rate

        positive = rate > 0.0
        if positive.any():
            etas = now + self._rem[:n][positive] / rate[positive]
            earliest = float(etas.min())
            self._queue.push(
                max(earliest, now),
                Event(EventKind.COMPLETION, generation=self._generation),
            )
