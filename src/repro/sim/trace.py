"""Structured event tracing for simulator runs.

A :class:`TraceRecorder` wraps any :class:`~repro.sim.api.Scheduler`
and records every decision the policy makes — admissions, delays,
queueing, degree changes, boosts, exits — with timestamps and the load
observed at each decision.  Traces make scheduler behaviour inspectable
("why did request 17 climb to degree 3 at t = 210 ms?") and power the
per-request timeline renderer used in debugging and the examples.

The recorder is transparent: it forwards every hook to the wrapped
policy and never changes decisions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.sim.api import Admission, AdmissionAction, Scheduler, SchedulerContext
from repro.sim.request import SimRequest

__all__ = ["TraceEventKind", "TraceEvent", "TraceRecorder"]


class TraceEventKind(enum.Enum):
    """Decision points captured by the recorder."""

    ADMIT = "admit"
    DELAY = "delay"
    QUEUE = "queue"
    DEGREE_UP = "degree_up"
    BOOST = "boost"
    EXIT = "exit"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded decision."""

    time_ms: float
    kind: TraceEventKind
    request_id: int
    load: int
    detail: Any = None

    def describe(self) -> str:
        """Human-readable one-liner."""
        base = f"t={self.time_ms:9.2f}ms  q={self.load:3d}  r{self.request_id:<5d} {self.kind.value}"
        if self.detail is not None:
            base += f" {self.detail}"
        return base


class TraceRecorder(Scheduler):
    """Transparent tracing wrapper around another scheduler."""

    def __init__(self, inner: Scheduler) -> None:
        self.inner = inner
        self.uses_quantum = inner.uses_quantum
        self.name = f"trace({inner.name})"
        self.events: list[TraceEvent] = []

    def reset(self) -> None:
        self.events = []
        self.inner.reset()

    # ------------------------------------------------------------------
    def _record_admission(
        self, ctx: SchedulerContext, request: SimRequest, decision: Admission
    ) -> Admission:
        if decision.action is AdmissionAction.START:
            kind, detail = TraceEventKind.ADMIT, f"d{decision.degree}"
        elif decision.action is AdmissionAction.DELAY:
            kind, detail = TraceEventKind.DELAY, f"{decision.delay_ms:g}ms"
        else:
            kind, detail = TraceEventKind.QUEUE, "e1"
        self.events.append(
            TraceEvent(ctx.now_ms, kind, request.rid, ctx.system_count, detail)
        )
        return decision

    def on_arrival(self, ctx: SchedulerContext, request: SimRequest) -> Admission:
        return self._record_admission(ctx, request, self.inner.on_arrival(ctx, request))

    def on_wait_check(self, ctx: SchedulerContext, request: SimRequest) -> Admission:
        return self._record_admission(
            ctx, request, self.inner.on_wait_check(ctx, request)
        )

    def on_quantum(self, ctx: SchedulerContext, request: SimRequest) -> int:
        was_boosted = request.boosted
        desired = self.inner.on_quantum(ctx, request)
        if desired > request.degree:
            self.events.append(
                TraceEvent(
                    ctx.now_ms,
                    TraceEventKind.DEGREE_UP,
                    request.rid,
                    ctx.system_count,
                    f"d{request.degree}->d{desired}",
                )
            )
        if request.boosted and not was_boosted:
            self.events.append(
                TraceEvent(
                    ctx.now_ms, TraceEventKind.BOOST, request.rid, ctx.system_count
                )
            )
        return desired

    def on_exit(self, ctx: SchedulerContext, request: SimRequest) -> None:
        self.events.append(
            TraceEvent(
                ctx.now_ms,
                TraceEventKind.EXIT,
                request.rid,
                ctx.system_count,
                f"latency={request.latency_ms:.1f}ms d{request.degree}",
            )
        )
        self.inner.on_exit(ctx, request)

    # ------------------------------------------------------------------
    def timeline(self, request_id: int) -> list[TraceEvent]:
        """All recorded events of one request, in time order."""
        return [e for e in self.events if e.request_id == request_id]

    def counts(self) -> dict[TraceEventKind, int]:
        """Event counts by kind — a quick behavioural fingerprint."""
        out: dict[TraceEventKind, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def render(self, limit: int | None = None) -> str:
        """Human-readable trace dump (optionally truncated)."""
        events = self.events if limit is None else self.events[:limit]
        lines = [event.describe() for event in events]
        if limit is not None and len(self.events) > limit:
            lines.append(f"... ({len(self.events) - limit} more events)")
        return "\n".join(lines)
