"""Structured event tracing for simulator runs.

A :class:`TraceRecorder` wraps any :class:`~repro.sim.api.Scheduler`
and records every decision the policy makes — admissions, delays,
queueing, degree changes, boosts, exits — with timestamps and the load
observed at each decision.  Traces make scheduler behaviour inspectable
("why did request 17 climb to degree 3 at t = 210 ms?") and power the
per-request timeline renderer used in debugging and the examples.

The recorder is transparent: it forwards every hook to the wrapped
policy and never changes decisions.

Decisions are recorded as *instant spans* on the ``"sim.sched"`` track
of a :class:`~repro.telemetry.Tracer` — the unified span model shared
with the engine's per-request spans, so a scheduler-decision trace
exports to Chrome/Perfetto and JSONL like everything else.  Pass a
:class:`~repro.telemetry.Telemetry` (or install one ambiently) to emit
into a shared pipeline; without one the recorder owns a private tracer.

.. deprecated::
    The bespoke :class:`TraceEvent` list (:attr:`TraceRecorder.events`,
    :meth:`timeline`, :meth:`counts`, :meth:`render`) is now a
    compatibility shim adapted from the recorded spans; new code should
    read ``recorder.tracer.spans`` or export through
    :mod:`repro.telemetry.export`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.sim.api import Admission, AdmissionAction, Scheduler, SchedulerContext
from repro.sim.request import SimRequest
from repro.telemetry import Telemetry, Tracer, resolve_telemetry
from repro.telemetry.clock import ManualClock

__all__ = ["TraceEventKind", "TraceEvent", "TraceRecorder"]

#: Track name the recorder's decision instants live on.
SCHED_TRACK = "sim.sched"


class TraceEventKind(enum.Enum):
    """Decision points captured by the recorder."""

    ADMIT = "admit"
    DELAY = "delay"
    QUEUE = "queue"
    DEGREE_UP = "degree_up"
    BOOST = "boost"
    EXIT = "exit"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded decision (compatibility view over an instant span)."""

    time_ms: float
    kind: TraceEventKind
    request_id: int
    load: int
    detail: Any = None

    def describe(self) -> str:
        """Human-readable one-liner."""
        base = f"t={self.time_ms:9.2f}ms  q={self.load:3d}  r{self.request_id:<5d} {self.kind.value}"
        if self.detail is not None:
            base += f" {self.detail}"
        return base


class TraceRecorder(Scheduler):
    """Transparent tracing wrapper around another scheduler."""

    def __init__(self, inner: Scheduler, telemetry: Telemetry | None = None) -> None:
        self.inner = inner
        self.uses_quantum = inner.uses_quantum
        self.name = f"trace({inner.name})"
        resolved = resolve_telemetry(telemetry)
        #: Whether the tracer is private (reset clears it wholesale) or
        #: shared with a wider pipeline (reset removes only our track).
        self._owns_tracer = resolved is None
        # Timestamps always come from the scheduler context, so a
        # private tracer needs no real clock.
        self.tracer: Tracer = (
            Tracer(clock=ManualClock()) if resolved is None else resolved.tracer
        )

    def reset(self) -> None:
        if self._owns_tracer:
            self.tracer.reset()
        else:
            self.tracer.spans[:] = [
                s for s in self.tracer.spans if s.track != SCHED_TRACK
            ]
        self.inner.reset()

    # ------------------------------------------------------------------
    def _emit(
        self,
        ctx: SchedulerContext,
        kind: TraceEventKind,
        request_id: int,
        detail: Any = None,
    ) -> None:
        self.tracer.instant(
            kind.value,
            track=SCHED_TRACK,
            lane=request_id,
            at_ms=ctx.now_ms,
            load=ctx.system_count,
            detail=detail,
        )

    def _record_admission(
        self, ctx: SchedulerContext, request: SimRequest, decision: Admission
    ) -> Admission:
        if decision.action is AdmissionAction.START:
            kind, detail = TraceEventKind.ADMIT, f"d{decision.degree}"
        elif decision.action is AdmissionAction.DELAY:
            kind, detail = TraceEventKind.DELAY, f"{decision.delay_ms:g}ms"
        else:
            kind, detail = TraceEventKind.QUEUE, "e1"
        self._emit(ctx, kind, request.rid, detail)
        return decision

    def on_arrival(self, ctx: SchedulerContext, request: SimRequest) -> Admission:
        return self._record_admission(ctx, request, self.inner.on_arrival(ctx, request))

    def on_wait_check(self, ctx: SchedulerContext, request: SimRequest) -> Admission:
        return self._record_admission(
            ctx, request, self.inner.on_wait_check(ctx, request)
        )

    def on_quantum(self, ctx: SchedulerContext, request: SimRequest) -> int:
        was_boosted = request.boosted
        desired = self.inner.on_quantum(ctx, request)
        if desired > request.degree:
            self._emit(
                ctx,
                TraceEventKind.DEGREE_UP,
                request.rid,
                f"d{request.degree}->d{desired}",
            )
        if request.boosted and not was_boosted:
            self._emit(ctx, TraceEventKind.BOOST, request.rid)
        return desired

    def on_exit(self, ctx: SchedulerContext, request: SimRequest) -> None:
        self._emit(
            ctx,
            TraceEventKind.EXIT,
            request.rid,
            f"latency={request.latency_ms:.1f}ms d{request.degree}",
        )
        self.inner.on_exit(ctx, request)

    # ------------------------------------------------------------------
    # Compatibility shim (deprecated: read ``tracer.spans`` instead)
    # ------------------------------------------------------------------
    @property
    def events(self) -> list[TraceEvent]:
        """The recorded decisions as :class:`TraceEvent` objects.

        .. deprecated:: adapted from the span model for callers of the
           original event-list API; prefer ``tracer.spans``.
        """
        return [
            TraceEvent(
                time_ms=span.start_ms,
                kind=TraceEventKind(span.name),
                request_id=span.lane,
                load=span.attrs["load"],
                detail=span.attrs.get("detail"),
            )
            for span in self.tracer.spans
            if span.track == SCHED_TRACK
        ]

    def timeline(self, request_id: int) -> list[TraceEvent]:
        """All recorded events of one request, in time order."""
        return [e for e in self.events if e.request_id == request_id]

    def counts(self) -> dict[TraceEventKind, int]:
        """Event counts by kind — a quick behavioural fingerprint."""
        out: dict[TraceEventKind, int] = {}
        for event in self.events:
            out[event.kind] = out.get(event.kind, 0) + 1
        return out

    def render(self, limit: int | None = None) -> str:
        """Human-readable trace dump (optionally truncated)."""
        events = self.events
        shown = events if limit is None else events[:limit]
        lines = [event.describe() for event in shown]
        if limit is not None and len(events) > limit:
            lines.append(f"... ({len(events) - limit} more events)")
        return "\n".join(lines)
