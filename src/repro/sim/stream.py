"""Streaming measurement for million-request runs (DESIGN.md §14).

The default :class:`~repro.sim.metrics.MetricsCollector` keeps one
:class:`~repro.sim.metrics.RequestRecord` per completion — perfect for
the paper figures at 2K requests, fatal at 10M.  This module provides
the O(1)-per-completion alternative: :class:`StreamingCollector` folds
each completion straight into a mergeable
:class:`~repro.telemetry.histogram.LogHistogram` (plus scalar counters
and the usual time-weighted integrals), and :func:`simulate_stream`
wires it to a lazily generated arrival stream so a whole run holds
O(running set) memory regardless of request count.

The resulting :class:`StreamSummary` is *mergeable*: summaries of
disjoint arrival shards combine exactly (histogram bucket counts and
scalar sums are order-insensitive integers/floats-of-sums), which is
what lets :mod:`repro.parallel.shards` split one huge sweep cell across
worker processes and reduce the pieces bit-identically regardless of
worker count.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable

from repro.errors import SimulationError
from repro.faults.plan import FaultPlan, FaultStats
from repro.sim.api import Scheduler
from repro.sim.engine import ArrivalSpec, Engine
from repro.sim.request import SimRequest
from repro.telemetry.histogram import LogHistogram

__all__ = ["StreamingCollector", "StreamSummary", "simulate_stream"]


@dataclass
class StreamSummary:
    """Constant-size result of a streamed run (or a merge of several).

    Latency statistics come from the log-bucketed histogram:
    :meth:`mean_latency_ms` is exact (the histogram tracks the true
    sum), percentiles are within the histogram's configured relative
    error (1 % by default).  ``duration_ms`` and the integrals sum
    across merges — for a sharded cell they total *simulated* virtual
    time over all shards, so the time-averaged gauges remain averages
    over everything simulated.
    """

    cores: int
    histogram: LogHistogram = field(default_factory=LogHistogram)
    count: int = 0
    shed_count: int = 0
    duration_ms: float = 0.0
    thread_integral: float = 0.0
    core_busy_integral: float = 0.0
    system_count_integral: float = 0.0
    fault_stats: FaultStats = field(default_factory=FaultStats)

    # -- latency views ------------------------------------------------
    def mean_latency_ms(self) -> float:
        return self.histogram.mean()

    def tail_latency_ms(self, phi: float = 0.99) -> float:
        return self.histogram.percentile(phi)

    # -- system gauges ------------------------------------------------
    def average_threads(self) -> float:
        return self.thread_integral / self.duration_ms if self.duration_ms else 0.0

    def cpu_utilization(self) -> float:
        capacity = self.cores * self.duration_ms
        return self.core_busy_integral / capacity if capacity else 0.0

    def average_system_count(self) -> float:
        return (
            self.system_count_integral / self.duration_ms if self.duration_ms else 0.0
        )

    @property
    def admitted_fraction(self) -> float:
        total = self.count + self.shed_count
        return self.count / total if total else 0.0

    # -- merging ------------------------------------------------------
    def update(self, other: "StreamSummary") -> None:
        """Fold ``other`` into this summary in place."""
        if other.cores != self.cores:
            raise SimulationError(
                f"cannot merge summaries from different machines: "
                f"{self.cores} vs {other.cores} cores"
            )
        self.histogram.update(other.histogram)
        self.count += other.count
        self.shed_count += other.shed_count
        self.duration_ms += other.duration_ms
        self.thread_integral += other.thread_integral
        self.core_busy_integral += other.core_busy_integral
        self.system_count_integral += other.system_count_integral
        stats, theirs = self.fault_stats, other.fault_stats
        stats.faults_fired += theirs.faults_fired
        stats.stragglers_injected += theirs.stragglers_injected
        stats.stalls_injected += theirs.stalls_injected
        stats.core_faults_applied += theirs.core_faults_applied
        stats.degraded_completions += theirs.degraded_completions
        stats.shed_requests += theirs.shed_requests
        stats.deadline_sheds += theirs.deadline_sheds

    def merge(self, other: "StreamSummary") -> "StreamSummary":
        """Non-destructive merge returning a new summary."""
        out = replace(
            self,
            histogram=self.histogram.copy(),
            fault_stats=replace(self.fault_stats),
        )
        out.update(other)
        return out

    def as_dict(self) -> dict:
        """Plain-dict view for JSON reports."""
        return {
            "cores": self.cores,
            "count": self.count,
            "shed_count": self.shed_count,
            "duration_ms": self.duration_ms,
            "mean_ms": self.mean_latency_ms(),
            "p50_ms": self.histogram.percentile(0.50),
            "p99_ms": self.histogram.percentile(0.99),
            "average_threads": self.average_threads(),
            "cpu_utilization": self.cpu_utilization(),
            "fault_stats": self.fault_stats.as_dict(),
        }


class StreamingCollector:
    """Duck-typed drop-in for :class:`MetricsCollector` that keeps no
    per-request records: each completion folds into the histogram and
    the counters, so collector memory is O(1) in request count."""

    def __init__(self, cores: int) -> None:
        self.cores = cores
        self.histogram = LogHistogram()
        self.completions = 0
        self.sheds = 0
        self.fault_stats = FaultStats()
        self._thread_integral = 0.0
        self._core_busy_integral = 0.0
        self._system_count_integral = 0.0
        self._observed_ms = 0.0
        #: Engine contract parity (set at end of heterogeneous runs;
        #: streamed runs are homogeneous so it stays ``None``).
        self.energy_report = None

    def observe_interval(
        self, dt_ms: float, total_threads: int, busy_cores: float, system_count: int
    ) -> None:
        if dt_ms < 0:
            raise SimulationError(f"negative interval {dt_ms}")
        self._thread_integral += total_threads * dt_ms
        self._core_busy_integral += busy_cores * dt_ms
        self._system_count_integral += system_count * dt_ms
        self._observed_ms += dt_ms

    def record(self, request: SimRequest) -> None:
        if request.finish_ms is None:
            raise SimulationError(f"request {request.rid} not finished")
        self.histogram.record(request.finish_ms - request.arrival_ms)
        self.completions += 1
        if request.impaired:
            self.fault_stats.degraded_completions += 1

    def record_shed(self, request: SimRequest, deadline: bool) -> None:
        self.sheds += 1
        self.fault_stats.shed_requests += 1
        if deadline:
            self.fault_stats.deadline_sheds += 1

    def finalize(self) -> StreamSummary:
        if self.completions == 0:
            raise SimulationError("simulation produced no completed requests")
        return StreamSummary(
            cores=self.cores,
            histogram=self.histogram,
            count=self.completions,
            shed_count=self.sheds,
            duration_ms=self._observed_ms,
            thread_integral=self._thread_integral,
            core_busy_integral=self._core_busy_integral,
            system_count_integral=self._system_count_integral,
            fault_stats=self.fault_stats,
        )


def simulate_stream(
    arrivals: Iterable[ArrivalSpec],
    scheduler: Scheduler,
    cores: int,
    quantum_ms: float = 5.0,
    spin_fraction: float = 0.25,
    fault_plan: FaultPlan | None = None,
    attribution: bool = False,
    vectorized: bool = False,
) -> StreamSummary:
    """Run one streamed simulation end to end in O(running set) memory.

    ``arrivals`` is consumed lazily (pair with
    :meth:`~repro.workloads.workload.Workload.arrival_stream`); every
    completion folds into the returned :class:`StreamSummary`.  The
    latency histogram holds the exact multiset of latencies a batch run
    of the same arrivals records — every bucket count, min, and max is
    bit-identical; only the histogram's true-sum accumulator can differ
    in the last ulp, because it adds samples in completion order while
    a batch result's records are re-sorted by arrival at finalize.

    ``attribution`` defaults off here (unlike :func:`simulate`): the
    flight recorder's per-request components are never read back in
    streamed runs, and skipping them trims the hot loop.
    ``vectorized=True`` swaps in :class:`repro.sim.vector.VectorEngine`.
    """
    if vectorized:
        from repro.sim.vector import VectorEngine

        engine_cls: type[Engine] = VectorEngine
    else:
        engine_cls = Engine
    engine = engine_cls(
        cores=cores,
        scheduler=scheduler,
        quantum_ms=quantum_ms,
        spin_fraction=spin_fraction,
        fault_plan=fault_plan,
        attribution=attribution,
        collector=StreamingCollector(cores),
    )
    return engine.run(iter(arrivals))
