"""Named counters, gauges, and histograms behind one registry.

A :class:`MetricsRegistry` is the single place a subsystem reports
numbers to: monotonically increasing :class:`Counter`\\ s (arrivals,
sheds, hedges), point-in-time :class:`Gauge`\\ s with a high-water mark
(queue depth), and streaming
:class:`~repro.telemetry.histogram.LogHistogram`\\ s (latency
distributions).  Instruments are get-or-create by dotted name
(``"sim.latency_ms"``), so call sites never coordinate registration.

All operations are O(1) and allocation-free after the first call with a
given name; under CPython's GIL the single-attribute updates used here
are safe from the live runtime's worker threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.telemetry.histogram import LogHistogram

__all__ = ["Counter", "Gauge", "MetricsRegistry", "RegistrySnapshot"]


@dataclass(frozen=True)
class RegistrySnapshot:
    """A point-in-time copy of a :class:`MetricsRegistry`'s instruments.

    Produced by :meth:`MetricsRegistry.snapshot`.  Two snapshots of the
    same registry subtract into a *window delta* — counter increments,
    gauge last-values, and histogram slices covering exactly the
    interval between them — which is how the live observability plane
    turns cumulative instruments into a time series without the
    instruments themselves ever windowing.
    """

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    gauge_max: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, LogHistogram] = field(default_factory=dict)

    def delta_since(self, previous: "RegistrySnapshot") -> "RegistrySnapshot":
        """The window between ``previous`` (an earlier snapshot of the
        same registry) and this snapshot.

        Counters subtract exactly (integers); instruments that did not
        exist in ``previous`` delta from zero/empty.  Gauges keep this
        snapshot's value (a gauge is already point-in-time; its window
        "delta" is its latest reading) and ``gauge_max`` the cumulative
        high-water mark.  Histograms slice via
        :meth:`LogHistogram.slice_since`.
        """
        counters: dict[str, int] = {}
        for name, value in self.counters.items():
            delta = value - previous.counters.get(name, 0)
            if delta < 0:
                raise ConfigurationError(
                    f"counter {name} decreased across snapshots: not "
                    "snapshots of the same registry"
                )
            counters[name] = delta
        histograms: dict[str, LogHistogram] = {}
        for name, histogram in self.histograms.items():
            earlier = previous.histograms.get(name)
            if earlier is None:
                histograms[name] = histogram.copy()
            else:
                histograms[name] = histogram.slice_since(earlier)
        return RegistrySnapshot(
            counters=counters,
            gauges=dict(self.gauges),
            gauge_max=dict(self.gauge_max),
            histograms=histograms,
        )


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0; counters never decrease)."""
        if amount < 0:
            raise ConfigurationError(f"counter {self.name} cannot decrease: {amount}")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value with a high-water mark."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the current value (and the high-water mark)."""
        self.value = float(value)
        if self.value > self.max_value:
            self.max_value = self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value}, max={self.max_value})"


class MetricsRegistry:
    """Get-or-create home for every named instrument."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, LogHistogram] = {}

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str, relative_error: float = 0.01) -> LogHistogram:
        """The histogram named ``name`` (created on first use).

        ``relative_error`` only applies at creation; later callers get
        the existing instrument whatever their argument.
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = LogHistogram(relative_error)
        return histogram

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    @property
    def counters(self) -> dict[str, Counter]:
        return dict(self._counters)

    @property
    def gauges(self) -> dict[str, Gauge]:
        return dict(self._gauges)

    @property
    def histograms(self) -> dict[str, LogHistogram]:
        return dict(self._histograms)

    def snapshot(self) -> "RegistrySnapshot":
        """A point-in-time deep snapshot of every instrument.

        Counters and gauges copy by value; histograms deep-copy their
        bucket state (:meth:`LogHistogram.copy`), so a later
        :meth:`RegistrySnapshot.delta_since` can cut exact per-window
        counter deltas and histogram slices without the registry ever
        pausing — the live observability plane's ingestion primitive
        (DESIGN.md §13).  Cost is proportional to the number of
        instruments and live histogram buckets, not to the sample
        count.
        """
        return RegistrySnapshot(
            counters={name: c.value for name, c in self._counters.items()},
            gauges={name: g.value for name, g in self._gauges.items()},
            gauge_max={name: g.max_value for name, g in self._gauges.items()},
            histograms={name: h.copy() for name, h in self._histograms.items()},
        )

    def as_dict(self) -> dict:
        """JSON-ready snapshot of every instrument."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {
                name: {"value": g.value, "max": g.max_value}
                for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.as_dict() for name, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every instrument (a fresh run starts from zero)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
