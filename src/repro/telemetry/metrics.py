"""Named counters, gauges, and histograms behind one registry.

A :class:`MetricsRegistry` is the single place a subsystem reports
numbers to: monotonically increasing :class:`Counter`\\ s (arrivals,
sheds, hedges), point-in-time :class:`Gauge`\\ s with a high-water mark
(queue depth), and streaming
:class:`~repro.telemetry.histogram.LogHistogram`\\ s (latency
distributions).  Instruments are get-or-create by dotted name
(``"sim.latency_ms"``), so call sites never coordinate registration.

All operations are O(1) and allocation-free after the first call with a
given name; under CPython's GIL the single-attribute updates used here
are safe from the live runtime's worker threads.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.telemetry.histogram import LogHistogram

__all__ = ["Counter", "Gauge", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be >= 0; counters never decrease)."""
        if amount < 0:
            raise ConfigurationError(f"counter {self.name} cannot decrease: {amount}")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value with a high-water mark."""

    __slots__ = ("name", "value", "max_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.max_value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the current value (and the high-water mark)."""
        self.value = float(value)
        if self.value > self.max_value:
            self.max_value = self.value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.name}={self.value}, max={self.max_value})"


class MetricsRegistry:
    """Get-or-create home for every named instrument."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, LogHistogram] = {}

    # ------------------------------------------------------------------
    # Instrument access
    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str, relative_error: float = 0.01) -> LogHistogram:
        """The histogram named ``name`` (created on first use).

        ``relative_error`` only applies at creation; later callers get
        the existing instrument whatever their argument.
        """
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = LogHistogram(relative_error)
        return histogram

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    @property
    def counters(self) -> dict[str, Counter]:
        return dict(self._counters)

    @property
    def gauges(self) -> dict[str, Gauge]:
        return dict(self._gauges)

    @property
    def histograms(self) -> dict[str, LogHistogram]:
        return dict(self._histograms)

    def as_dict(self) -> dict:
        """JSON-ready snapshot of every instrument."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {
                name: {"value": g.value, "max": g.max_value}
                for name, g in sorted(self._gauges.items())
            },
            "histograms": {
                name: h.as_dict() for name, h in sorted(self._histograms.items())
            },
        }

    def reset(self) -> None:
        """Drop every instrument (a fresh run starts from zero)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
