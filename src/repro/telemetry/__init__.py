"""repro.telemetry — unified metrics, spans, and trace export.

One observability pipeline for every execution layer of the
reproduction: the virtual-time simulator, the segmented search
executor, the live thread runtime, and the cluster simulation all
report into the same three primitives —

* a :class:`MetricsRegistry` of counters, gauges, and mergeable
  log-bucketed :class:`LogHistogram`\\ s with bounded relative error;
* a :class:`Tracer` producing parent-linked :class:`Span`\\ s over
  either virtual or wall clocks, propagated with ``contextvars``;
* exporters for Chrome ``trace_event`` JSON (``chrome://tracing`` /
  Perfetto), JSONL, and plain-text dashboards.

Usage — explicit wiring::

    tel = Telemetry()
    result = simulate(arrivals, scheduler, cores=8, telemetry=tel)
    write_chrome_trace("trace.json", tel)

or ambient installation (the CLI's ``--trace`` flag does this), which
every instrumented component picks up automatically::

    with install(Telemetry()) as tel:
        run_policy(...)
    print(render_summary(tel))

Instrumentation is **zero-cost when disabled**: components resolve
their pipeline once at construction (``resolve_telemetry``) and guard
hot paths on ``telemetry is None`` — a disabled run executes not a
single telemetry call.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from typing import Iterator

from repro.telemetry.clock import Clock, ManualClock, VirtualClock, WallClock
from repro.telemetry.export import (
    read_spans_jsonl,
    render_summary,
    span_from_dict,
    span_to_dict,
    to_chrome_trace,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.telemetry.histogram import LogHistogram
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    RegistrySnapshot,
)
from repro.telemetry.spans import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "Clock",
    "Counter",
    "Gauge",
    "LogHistogram",
    "ManualClock",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "RegistrySnapshot",
    "Span",
    "Telemetry",
    "Tracer",
    "VirtualClock",
    "WallClock",
    "current_telemetry",
    "install",
    "read_spans_jsonl",
    "render_summary",
    "resolve_telemetry",
    "span_from_dict",
    "span_to_dict",
    "to_chrome_trace",
    "write_chrome_trace",
    "write_spans_jsonl",
]


class Telemetry:
    """One observability pipeline: a metrics registry plus a tracer.

    ``enabled=False`` builds a pipeline whose tracer is a no-op and
    which every instrumented component treats as absent — handy for
    explicitly suppressing an ambient (installed) pipeline in A/B
    overhead measurements.
    """

    def __init__(self, clock: Clock | None = None, enabled: bool = True) -> None:
        self.enabled = enabled
        self.metrics = MetricsRegistry()
        self.tracer: Tracer = Tracer(clock=clock) if enabled else NULL_TRACER

    def reset(self) -> None:
        """Clear all metrics and spans (instruments are re-created lazily)."""
        self.metrics.reset()
        self.tracer.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return f"Telemetry({state}, spans={len(self.tracer.spans)})"


#: The ambiently installed pipeline (None = telemetry off everywhere).
_CURRENT: ContextVar[Telemetry | None] = ContextVar(
    "repro_telemetry", default=None
)


def current_telemetry() -> Telemetry | None:
    """The pipeline installed in this execution context, if any."""
    return _CURRENT.get()


def resolve_telemetry(explicit: Telemetry | None = None) -> Telemetry | None:
    """The pipeline an instrumented component should use.

    An explicit argument always wins — including an explicitly
    *disabled* pipeline, which resolves to None without falling back to
    the ambient one (that is what makes off-vs-on A/B runs honest under
    an installed ``--trace`` pipeline).  With no explicit argument the
    ambient installed pipeline is used.
    """
    if explicit is not None:
        return explicit if explicit.enabled else None
    ambient = _CURRENT.get()
    if ambient is not None and ambient.enabled:
        return ambient
    return None


@contextlib.contextmanager
def install(telemetry: Telemetry | None) -> Iterator[Telemetry | None]:
    """Make ``telemetry`` the ambient pipeline for the enclosed block
    (``None`` uninstalls any pipeline for the block's duration)."""
    token = _CURRENT.set(telemetry)
    try:
        yield telemetry
    finally:
        _CURRENT.reset(token)
