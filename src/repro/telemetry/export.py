"""Exporters: Chrome ``trace_event`` JSON, JSONL, and text dashboards.

Three consumers, three formats:

* :func:`to_chrome_trace` — the Trace Event Format understood by
  ``chrome://tracing`` and Perfetto.  Tracks become processes, lanes
  become threads, spans become complete (``"X"``) events and instants
  become ``"i"`` events; timestamps are microseconds.  Within one
  (process, thread) lane events are emitted sorted by start time with
  longer spans first on ties, which is exactly the nesting order the
  viewers expect.
* :func:`write_spans_jsonl` / :func:`read_spans_jsonl` — one span per
  line, loss-free round-trip, for offline analysis (pandas, jq).
* :func:`render_summary` — the plain-text dashboard: counters, gauges,
  histogram percentiles, and per-track span counts, in the same aligned
  style as the experiment tables.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.telemetry.spans import INSTANT, Span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import Telemetry

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "span_to_dict",
    "span_from_dict",
    "write_spans_jsonl",
    "read_spans_jsonl",
    "render_summary",
]


def _jsonable(value: object) -> object:
    """Coerce attr values to something JSON can hold."""
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else repr(value)
    return str(value)


# ----------------------------------------------------------------------
# Chrome trace_event format
# ----------------------------------------------------------------------
def to_chrome_trace(
    spans: Sequence[Span], metrics: dict | None = None
) -> dict:
    """Build a Trace-Event-Format document from finished spans.

    ``metrics`` (a :meth:`MetricsRegistry.as_dict` snapshot) rides along
    under ``otherData`` so one file carries the whole story.

    The document is fully deterministic: all metadata ("M") events come
    first — ``process_name`` per track in sorted-track order, then
    ``thread_name`` per (track, lane) in (track, lane) order — followed
    by the span events in (pid, tid, start, -duration) order.  Stable
    output diffs cleanly across runs and lets the analyzer rely on
    metadata preceding the events it describes.
    """
    pids = {track: pid for pid, track in enumerate(sorted({s.track for s in spans}), 1)}
    events: list[dict] = []
    for track, pid in pids.items():
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": track},
            }
        )
    lanes = sorted({(pids[s.track], s.lane) for s in spans})
    for pid, lane in lanes:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": lane,
                "args": {"name": f"lane {lane}"},
            }
        )
    # Viewer-friendly order: per lane, by start time, longest first on
    # ties — equal-start spans then nest outermost-first.
    ordered = sorted(
        (s for s in spans if not s.is_open),
        key=lambda s: (pids[s.track], s.lane, s.start_ms, -s.duration_ms),
    )
    for span in ordered:
        event = {
            "name": span.name,
            "ph": "i" if span.kind == INSTANT else "X",
            "pid": pids[span.track],
            "tid": span.lane,
            "ts": span.start_ms * 1000.0,  # trace_event wants microseconds
            "args": {k: _jsonable(v) for k, v in span.attrs.items()},
        }
        if span.kind == INSTANT:
            event["s"] = "t"  # instant scoped to its thread lane
        else:
            event["dur"] = span.duration_ms * 1000.0
        events.append(event)
    document = {"traceEvents": events, "displayTimeUnit": "ms"}
    if metrics is not None:
        document["otherData"] = {"metrics": metrics}
    return document


def write_chrome_trace(
    path: str | Path, telemetry: "Telemetry"
) -> Path:
    """Write one telemetry pipeline's spans + metrics as a Chrome trace."""
    path = Path(path)
    document = to_chrome_trace(telemetry.tracer.spans, telemetry.metrics.as_dict())
    path.write_text(json.dumps(document, indent=1))
    return path


# ----------------------------------------------------------------------
# JSONL round-trip
# ----------------------------------------------------------------------
def span_to_dict(span: Span) -> dict:
    """Loss-free dict form of a finished span."""
    return {
        "name": span.name,
        "track": span.track,
        "lane": span.lane,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "start_ms": span.start_ms,
        "end_ms": span.end_ms,
        "kind": span.kind,
        "attrs": {k: _jsonable(v) for k, v in span.attrs.items()},
    }


def span_from_dict(data: dict) -> Span:
    """Inverse of :func:`span_to_dict`."""
    return Span(
        name=data["name"],
        track=data["track"],
        lane=data["lane"],
        span_id=data["span_id"],
        parent_id=data["parent_id"],
        start_ms=data["start_ms"],
        end_ms=data["end_ms"],
        kind=data["kind"],
        attrs=dict(data.get("attrs", {})),
    )


def write_spans_jsonl(path: str | Path, spans: Iterable[Span]) -> Path:
    """One span per line; streams without building the document."""
    path = Path(path)
    with path.open("w") as handle:
        for span in spans:
            handle.write(json.dumps(span_to_dict(span)))
            handle.write("\n")
    return path


def read_spans_jsonl(path: str | Path) -> list[Span]:
    """Load spans written by :func:`write_spans_jsonl`."""
    spans: list[Span] = []
    with Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                spans.append(span_from_dict(json.loads(line)))
    return spans


# ----------------------------------------------------------------------
# Text dashboard
# ----------------------------------------------------------------------
def _format(value: float) -> str:
    if value != value:  # NaN
        return "nan"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def _aligned(columns: Sequence[str], rows: Sequence[Sequence[str]]) -> list[str]:
    widths = [
        max(len(col), *(len(row[i]) for row in rows)) if rows else len(col)
        for i, col in enumerate(columns)
    ]
    lines = ["  ".join(col.ljust(w) for col, w in zip(columns, widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(
                cell.ljust(w) if i == 0 else cell.rjust(w)
                for i, (cell, w) in enumerate(zip(row, widths))
            )
        )
    return lines


def render_summary(telemetry: "Telemetry") -> str:
    """The plain-text dashboard for one telemetry pipeline."""
    metrics = telemetry.metrics
    parts: list[str] = ["=== telemetry summary ==="]

    counters = sorted(metrics.counters.items())
    if counters:
        parts.append("")
        parts.extend(
            _aligned(
                ["counter", "value"],
                [[name, str(c.value)] for name, c in counters],
            )
        )

    gauges = sorted(metrics.gauges.items())
    if gauges:
        parts.append("")
        parts.extend(
            _aligned(
                ["gauge", "value", "max"],
                [[name, _format(g.value), _format(g.max_value)] for name, g in gauges],
            )
        )

    histograms = sorted(metrics.histograms.items())
    if histograms:
        parts.append("")
        rows = []
        for name, hist in histograms:
            rows.append(
                [
                    name,
                    str(hist.count),
                    _format(hist.mean()),
                    _format(hist.percentile(0.50)),
                    _format(hist.percentile(0.90)),
                    _format(hist.percentile(0.99)),
                    _format(hist.max),
                ]
            )
        parts.extend(
            _aligned(["histogram", "count", "mean", "p50", "p90", "p99", "max"], rows)
        )

    spans = telemetry.tracer.spans
    if spans:
        per_track: dict[str, int] = {}
        for span in spans:
            per_track[span.track] = per_track.get(span.track, 0) + 1
        parts.append("")
        parts.extend(
            _aligned(
                ["track", "spans"],
                [[track, str(n)] for track, n in sorted(per_track.items())],
            )
        )
    return "\n".join(parts)
