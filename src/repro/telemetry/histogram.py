"""Streaming log-bucketed latency histograms (HDR/DDSketch-style).

A :class:`LogHistogram` records non-negative samples into geometrically
spaced buckets: bucket ``i`` covers ``[gamma**i, gamma**(i+1))`` with
``gamma = (1 + eps) / (1 - eps)``.  Reporting the relative-error-optimal
representative ``gamma**i * 2*gamma / (1 + gamma)`` makes every quantile
answer accurate to a *relative* error of at most ``eps`` — the guarantee
that matters for latency tails, where p99 may be 1000x the median and a
fixed absolute bin width would be either useless or enormous.

Properties the rest of the system relies on:

* **Streaming** — O(1) per sample, memory proportional to the *dynamic
  range* of the data (buckets actually hit), not the sample count.
* **Mergeable** — histograms with the same ``eps`` merge by adding
  bucket counts; merging is associative and commutative, so per-shard
  histograms roll up to cluster totals exactly (the Dapper/Monarch
  aggregation model).
* **Bounded error** — ``percentile(q)`` agrees with
  ``numpy.percentile(data, 100*q, method="inverted_cdf")`` to within
  the documented relative error ``eps`` (plus float rounding at bucket
  boundaries), for every ``q``.

Percentiles use the order-statistic rank ``ceil(q * n)`` — the same
convention as :func:`repro.core.formulas.weighted_order_statistic` and
the paper's tail-latency definition.

**Empty-quantile contract.** Monitoring surfaces — this class,
:class:`repro.runtime.server.LiveServerStats`, and
:class:`repro.observe.slo.SLOMonitor` — return ``math.nan`` from
quantile/mean queries over zero samples: dashboards poll them mid-run
(possibly before the first completion, or after an all-shed drain) and
must render "no data" rather than crash.  *Completed-run analysis*
surfaces — :meth:`repro.sim.metrics.SimulationResult.tail_latency_ms`
and :func:`repro.core.formulas.weighted_order_statistic` — raise
instead: a finished experiment with zero completions is a broken
experiment, and a silent ``nan`` would propagate into tables and
benchmark JSON as a mysterious blank.  When adding a quantile surface,
pick the side that matches how it is read, and say so in its docstring.
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.errors import ConfigurationError

__all__ = ["LogHistogram"]


class LogHistogram:
    """A mergeable log-bucketed histogram with bounded relative error.

    Parameters
    ----------
    relative_error:
        Maximum relative error of :meth:`percentile` answers (default
        1%).  Smaller values mean more, narrower buckets.
    min_trackable:
        Values in ``[0, min_trackable)`` collapse into a dedicated zero
        bucket whose representative is 0.0 — they are counted, not
        resolved (a latency below a nanosecond is noise, not signal).
    """

    __slots__ = (
        "relative_error",
        "min_trackable",
        "_gamma",
        "_log_gamma",
        "_rep_factor",
        "_buckets",
        "_zero_count",
        "_count",
        "_sum",
        "_min",
        "_max",
    )

    def __init__(
        self, relative_error: float = 0.01, min_trackable: float = 1e-9
    ) -> None:
        if not 0.0 < relative_error < 1.0:
            raise ConfigurationError(
                f"relative_error must be in (0, 1): {relative_error}"
            )
        if min_trackable <= 0.0:
            raise ConfigurationError(
                f"min_trackable must be positive: {min_trackable}"
            )
        self.relative_error = relative_error
        self.min_trackable = min_trackable
        self._gamma = (1.0 + relative_error) / (1.0 - relative_error)
        self._log_gamma = math.log(self._gamma)
        # Midpoint (in relative terms) of a bucket: the representative
        # minimizing the worst-case relative error over [g^i, g^(i+1)).
        self._rep_factor = 2.0 * self._gamma / (1.0 + self._gamma)
        self._buckets: dict[int, int] = {}
        self._zero_count = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record(self, value: float, count: int = 1) -> None:
        """Add ``count`` observations of ``value`` (must be >= 0)."""
        if value < 0:
            raise ConfigurationError(f"histogram values must be >= 0: {value}")
        if count < 1:
            raise ConfigurationError(f"count must be >= 1: {count}")
        if value < self.min_trackable:
            self._zero_count += count
        else:
            index = math.floor(math.log(value) / self._log_gamma)
            self._buckets[index] = self._buckets.get(index, 0) + count
        self._count += count
        self._sum += value * count
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def record_many(self, values: Iterable[float]) -> None:
        """Record every value in an iterable."""
        for value in values:
            self.record(value)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Total observations recorded."""
        return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values (exact, not bucketed)."""
        return self._sum

    @property
    def min(self) -> float:
        """Smallest observed value (exact); ``nan`` when empty."""
        return self._min if self._count else math.nan

    @property
    def max(self) -> float:
        """Largest observed value (exact); ``nan`` when empty."""
        return self._max if self._count else math.nan

    def mean(self) -> float:
        """Exact mean of observations; ``nan`` when empty."""
        return self._sum / self._count if self._count else math.nan

    def percentile(self, q: float) -> float:
        """The ``q``-quantile (``q`` in [0, 1]) to within the configured
        relative error; ``nan`` when the histogram is empty.

        Uses the order-statistic rank ``ceil(q * count)`` (clamped to at
        least 1), matching ``numpy.percentile(..., method="inverted_cdf")``.
        The answer is clamped to the exact observed ``[min, max]`` so
        extreme quantiles never overshoot the data.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1]: {q}")
        if self._count == 0:
            return math.nan
        rank = max(1, math.ceil(q * self._count))
        cumulative = self._zero_count
        if rank <= cumulative:
            return 0.0
        for index in sorted(self._buckets):
            cumulative += self._buckets[index]
            if rank <= cumulative:
                representative = self._gamma**index * self._rep_factor
                return min(max(representative, self._min), self._max)
        return self._max  # pragma: no cover - counts always sum to _count

    def percentiles(self, qs: Iterable[float]) -> list[float]:
        """Vectorized :meth:`percentile`."""
        return [self.percentile(q) for q in qs]

    # ------------------------------------------------------------------
    # Snapshots and window slices (the live-plane surface, DESIGN.md §13)
    # ------------------------------------------------------------------
    def copy(self) -> "LogHistogram":
        """An independent deep copy (same grid, same contents).

        Snapshot-and-subtract is how the live observability plane cuts
        a cumulative histogram into per-window slices without touching
        the recording hot path: :meth:`copy` at each window boundary,
        :meth:`slice_since` the previous snapshot.
        """
        out = LogHistogram(self.relative_error, self.min_trackable)
        out._buckets = dict(self._buckets)
        out._zero_count = self._zero_count
        out._count = self._count
        out._sum = self._sum
        out._min = self._min
        out._max = self._max
        return out

    def state(self) -> tuple:
        """The full internal state as a hashable tuple.

        Two histograms compare equal under :meth:`state` iff every
        bucket count, the exact sum, and the min/max bounds are
        bit-identical — the comparison the cross-shard merge contract
        (windows merged in shard-index order reproduce the same state
        regardless of worker count) is audited against.
        """
        return (
            self.relative_error,
            self.min_trackable,
            tuple(sorted(self._buckets.items())),
            self._zero_count,
            self._count,
            self._sum,
            self._min,
            self._max,
        )

    def slice_since(self, previous: "LogHistogram") -> "LogHistogram":
        """The window slice: observations recorded in ``self`` but not
        in ``previous`` (an earlier :meth:`copy` of the *same* stream).

        Bucket counts subtract exactly (they are integers), so slices
        merge back to the cumulative histogram bucket-for-bucket and
        every quantile keeps the ``relative_error`` guarantee: a
        slice's min/max are *bucket bounds* (``gamma**i`` edges) rather
        than exact observed values — the bounds of the smallest and
        largest non-empty delta buckets — which never clamp a
        representative outside its own bucket.  The slice ``sum`` is
        the float difference of the cumulative sums: deterministic,
        but carrying the usual accumulated-rounding residue relative
        to summing the window's values directly (bounded by a few ULPs
        of the cumulative sum).
        """
        if previous.relative_error != self.relative_error:
            raise ConfigurationError(
                "cannot slice histograms with different relative errors: "
                f"{self.relative_error} vs {previous.relative_error}"
            )
        if previous._count > self._count:
            raise ConfigurationError(
                "slice_since requires an earlier snapshot of the same "
                f"stream: previous count {previous._count} > {self._count}"
            )
        out = LogHistogram(self.relative_error, self.min_trackable)
        for index, count in self._buckets.items():
            delta = count - previous._buckets.get(index, 0)
            if delta < 0:
                raise ConfigurationError(
                    f"bucket {index} shrank from {previous._buckets[index]} "
                    f"to {count}: not a snapshot of the same stream"
                )
            if delta:
                out._buckets[index] = delta
        for index, count in previous._buckets.items():
            if count and index not in self._buckets:
                raise ConfigurationError(
                    f"bucket {index} shrank from {count} to 0: not a "
                    "snapshot of the same stream"
                )
        out._zero_count = self._zero_count - previous._zero_count
        if out._zero_count < 0:
            raise ConfigurationError(
                "zero bucket shrank: not a snapshot of the same stream"
            )
        out._count = self._count - previous._count
        out._sum = self._sum - previous._sum
        if out._count:
            if out._buckets:
                indexes = out._buckets.keys()
                out._min = 0.0 if out._zero_count else self._gamma ** min(indexes)
                out._max = self._gamma ** (max(indexes) + 1)
            else:  # only zero-bucket observations in the window
                out._min = 0.0
                out._max = 0.0
        return out

    def bucket_points(self) -> list[tuple[float, int]]:
        """The discrete distribution :meth:`percentile` answers from:
        sorted ``(representative, count)`` pairs, zero bucket first,
        representatives clamped to the observed ``[min, max]`` exactly
        as :meth:`percentile` clamps them.

        Read-only export for resampling consumers (the bootstrap CIs in
        :mod:`repro.observe.diff`): drawing ranks against these points
        with the total :attr:`count` reproduces every quantile answer
        bit for bit, so a bootstrap built on them is consistent with
        the point estimates it brackets.
        """
        points: list[tuple[float, int]] = []
        if self._zero_count:
            points.append((0.0, self._zero_count))
        for index in sorted(self._buckets):
            representative = self._gamma**index * self._rep_factor
            points.append(
                (min(max(representative, self._min), self._max), self._buckets[index])
            )
        return points

    def dump_state(self) -> dict:
        """Full-fidelity JSON-ready state (every bucket, not a summary).

        Unlike :meth:`as_dict` this round-trips: :meth:`from_state`
        rebuilds a histogram whose :meth:`state` matches, so window
        slices can ship across processes (the JSONL time-series
        exporter) and still merge bit-identically.  Non-finite min/max
        (the empty histogram) serialize as ``None``.
        """
        return {
            "relative_error": self.relative_error,
            "min_trackable": self.min_trackable,
            "buckets": {str(index): count for index, count in sorted(self._buckets.items())},
            "zero_count": self._zero_count,
            "count": self._count,
            "sum": self._sum,
            "min": self._min if math.isfinite(self._min) else None,
            "max": self._max if math.isfinite(self._max) else None,
        }

    @classmethod
    def from_state(cls, data: dict) -> "LogHistogram":
        """Rebuild a histogram from :meth:`dump_state` output."""
        out = cls(data["relative_error"], data["min_trackable"])
        out._buckets = {int(index): count for index, count in data["buckets"].items()}
        out._zero_count = data["zero_count"]
        out._count = data["count"]
        out._sum = data["sum"]
        out._min = math.inf if data["min"] is None else data["min"]
        out._max = -math.inf if data["max"] is None else data["max"]
        return out

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------
    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Return a new histogram holding both inputs' observations.

        Associative and commutative; both inputs are left untouched.
        Requires identical ``relative_error`` (bucket grids must line
        up for counts to add).
        """
        merged = LogHistogram(self.relative_error, self.min_trackable)
        merged.update(self)
        merged.update(other)
        return merged

    def update(self, other: "LogHistogram") -> None:
        """In-place merge of ``other`` into ``self``."""
        if other.relative_error != self.relative_error:
            raise ConfigurationError(
                "cannot merge histograms with different relative errors: "
                f"{self.relative_error} vs {other.relative_error}"
            )
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self._zero_count += other._zero_count
        self._count += other._count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def bucket_count(self) -> int:
        """Distinct buckets in use (memory footprint proxy)."""
        return len(self._buckets) + (1 if self._zero_count else 0)

    def as_dict(self) -> dict:
        """Summary snapshot used by exporters and dashboards."""
        return {
            "count": self._count,
            "sum": self._sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean(),
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "relative_error": self.relative_error,
            "buckets": self.bucket_count,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LogHistogram(count={self._count}, mean={self.mean():.4g}, "
            f"p99={self.percentile(0.99):.4g}, eps={self.relative_error})"
        )
