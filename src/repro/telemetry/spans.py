"""Span-based request tracing with parent/child links.

A :class:`Span` is one timed operation on a named *track* (the layer
that emitted it: ``"sim"``, ``"search"``, ``"runtime"``, ``"cluster"``)
and an integer *lane* within the track (request id, server id) — the
two axes Chrome's trace viewer renders as process and thread.  Spans
link to parents either explicitly (event-driven code like the simulator
passes timestamps and parents by hand) or implicitly through
``contextvars`` (lexically nested code like the search executor uses
:meth:`Tracer.span` and gets parentage for free, across threads and
asyncio tasks).

The :class:`Tracer` collects finished spans in memory; exporters in
:mod:`repro.telemetry.export` turn them into Chrome ``trace_event``
JSON, JSONL, or text.  :class:`NullTracer` implements the same surface
as no-ops so instrumented code needs no conditionals — though hot loops
(the simulator engine) guard on ``telemetry is None`` instead, which is
the truly zero-cost path.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.errors import ConfigurationError
from repro.telemetry.clock import Clock, WallClock

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER"]

#: Kind tags: a ``span`` has duration; an ``instant`` is a point event.
SPAN = "span"
INSTANT = "instant"

#: The innermost open span of the current execution context, shared by
#: every tracer (only one telemetry pipeline is active at a time).
_CURRENT_SPAN: ContextVar["Span | None"] = ContextVar(
    "repro_current_span", default=None
)


@dataclass
class Span:
    """One traced operation (or point event, when ``kind == "instant"``)."""

    name: str
    track: str
    lane: int
    span_id: int
    parent_id: int | None
    start_ms: float
    end_ms: float | None = None
    kind: str = SPAN
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ms(self) -> float:
        """Span length; 0.0 while still open and for instants."""
        return (self.end_ms - self.start_ms) if self.end_ms is not None else 0.0

    @property
    def is_open(self) -> bool:
        return self.end_ms is None


class Tracer:
    """Creates, finishes, and stores spans.

    Appending finished spans to a list is atomic under the GIL, so the
    live runtime's worker threads may share one tracer without locks.
    """

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock or WallClock()
        self.spans: list[Span] = []
        self._next_id = 1

    # ------------------------------------------------------------------
    # Core span lifecycle (event-driven callers: explicit timestamps)
    # ------------------------------------------------------------------
    def begin(
        self,
        name: str,
        track: str = "default",
        lane: int = 0,
        parent: Span | None = None,
        at_ms: float | None = None,
        **attrs: Any,
    ) -> Span:
        """Open a span.  Without an explicit ``parent`` the innermost
        context-propagated span (if any) is used."""
        if parent is None:
            parent = _CURRENT_SPAN.get()
        span = Span(
            name=name,
            track=track,
            lane=lane,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            start_ms=self.clock.now_ms() if at_ms is None else float(at_ms),
            attrs=attrs,
        )
        self._next_id += 1
        return span

    def end(self, span: Span, at_ms: float | None = None, **attrs: Any) -> Span:
        """Close a span and record it."""
        if not span.is_open:
            raise ConfigurationError(f"span {span.span_id} already ended")
        span.end_ms = self.clock.now_ms() if at_ms is None else float(at_ms)
        if span.end_ms < span.start_ms:
            raise ConfigurationError(
                f"span {span.name!r} ends before it starts: "
                f"{span.end_ms} < {span.start_ms}"
            )
        if attrs:
            span.attrs.update(attrs)
        self.spans.append(span)
        return span

    def complete(
        self,
        name: str,
        start_ms: float,
        end_ms: float,
        track: str = "default",
        lane: int = 0,
        parent: Span | None = None,
        **attrs: Any,
    ) -> Span:
        """Record an already-finished span in one call (retroactive
        spans, e.g. "this request queued from t1 to t2")."""
        span = self.begin(
            name, track=track, lane=lane, parent=parent, at_ms=start_ms, **attrs
        )
        return self.end(span, at_ms=end_ms)

    def instant(
        self,
        name: str,
        track: str = "default",
        lane: int = 0,
        at_ms: float | None = None,
        **attrs: Any,
    ) -> Span:
        """Record a point event (a decision, a boost, a shed)."""
        at = self.clock.now_ms() if at_ms is None else float(at_ms)
        parent = _CURRENT_SPAN.get()
        span = Span(
            name=name,
            track=track,
            lane=lane,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            start_ms=at,
            end_ms=at,
            kind=INSTANT,
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    # ------------------------------------------------------------------
    # Context-propagated nesting (lexical callers)
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def span(
        self,
        name: str,
        track: str = "default",
        lane: int = 0,
        **attrs: Any,
    ) -> Iterator[Span]:
        """``with tracer.span("execute"):`` — opens a span, makes it the
        context parent for anything opened inside, closes it on exit."""
        opened = self.begin(name, track=track, lane=lane, **attrs)
        token = _CURRENT_SPAN.set(opened)
        try:
            yield opened
        finally:
            _CURRENT_SPAN.reset(token)
            self.end(opened)

    # ------------------------------------------------------------------
    # Introspection / lifecycle
    # ------------------------------------------------------------------
    def by_track(self, track: str) -> list[Span]:
        """Finished spans of one track, in completion order."""
        return [s for s in self.spans if s.track == track]

    def tracks(self) -> list[str]:
        """Every track that has at least one finished span."""
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.track, None)
        return list(seen)

    def reset(self) -> None:
        """Drop every recorded span."""
        self.spans.clear()


class NullTracer(Tracer):
    """A tracer that records nothing (the disabled pipeline).

    Returned spans are real objects (callers may set attrs on them) but
    never stored; ``spans`` stays empty.
    """

    def __init__(self) -> None:
        super().__init__(clock=_FROZEN_CLOCK)

    def end(self, span: Span, at_ms: float | None = None, **attrs: Any) -> Span:
        span.end_ms = span.start_ms if at_ms is None else float(at_ms)
        return span

    def instant(
        self,
        name: str,
        track: str = "default",
        lane: int = 0,
        at_ms: float | None = None,
        **attrs: Any,
    ) -> Span:
        return Span(
            name=name,
            track=track,
            lane=lane,
            span_id=0,
            parent_id=None,
            start_ms=0.0,
            end_ms=0.0,
            kind=INSTANT,
        )


class _ZeroClock(Clock):
    """Clock of the null tracer: no syscalls, always zero."""

    def now_ms(self) -> float:
        return 0.0


_FROZEN_CLOCK = _ZeroClock()

#: Shared no-op tracer for disabled telemetry.
NULL_TRACER = NullTracer()
