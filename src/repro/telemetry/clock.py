"""Clock abstraction: one span model, two notions of time.

The simulator runs in *virtual* milliseconds (the engine owns ``now_ms``
and time only advances at events); the live runtime and the search
executor run on the *wall* clock.  Spans and metrics must work over
both, so every :class:`~repro.telemetry.spans.Tracer` carries a
:class:`Clock` and all timestamps are "milliseconds since the clock's
origin" — virtual time already is that, and :class:`WallClock`
normalizes ``perf_counter`` to it.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.errors import ConfigurationError

__all__ = ["Clock", "WallClock", "VirtualClock", "ManualClock"]


class Clock:
    """Source of "current time in milliseconds since origin"."""

    def now_ms(self) -> float:
        raise NotImplementedError


class WallClock(Clock):
    """Monotonic wall time, zeroed at construction."""

    __slots__ = ("_origin_s",)

    def __init__(self) -> None:
        self._origin_s = time.perf_counter()

    def now_ms(self) -> float:
        return (time.perf_counter() - self._origin_s) * 1000.0


class VirtualClock(Clock):
    """Reads virtual time from its owner (e.g. the simulator engine).

    ``source`` is a zero-argument callable returning the current virtual
    time in milliseconds — typically ``lambda: engine.now_ms``.
    """

    __slots__ = ("_source",)

    def __init__(self, source: Callable[[], float]) -> None:
        self._source = source

    def now_ms(self) -> float:
        return float(self._source())


class ManualClock(Clock):
    """An explicitly advanced clock, for tests."""

    __slots__ = ("_now_ms",)

    def __init__(self, start_ms: float = 0.0) -> None:
        self._now_ms = float(start_ms)

    def now_ms(self) -> float:
        return self._now_ms

    def advance(self, delta_ms: float) -> None:
        if delta_ms < 0:
            raise ConfigurationError(f"clock cannot run backwards: {delta_ms}")
        self._now_ms += delta_ms

    def set(self, now_ms: float) -> None:
        if now_ms < self._now_ms:
            raise ConfigurationError(
                f"clock cannot run backwards: {now_ms} < {self._now_ms}"
            )
        self._now_ms = float(now_ms)
