"""Live FM runtime: incremental parallelism on real Python threads.

The simulator (:mod:`repro.sim`) answers "what would FM do on this
hardware"; this package answers "what does FM look like as running
code".  Work units sleep rather than compute (sleeping releases the
GIL), so adding worker threads to a request genuinely shortens it —
the FM control loop, load tracking, admission queue, and self-
scheduling quantum all run on actual threads with wall-clock time.
"""

from repro.runtime.server import LiveFMServer, LiveServerStats
from repro.runtime.work import LiveRequest, SleepSlice, make_slices

__all__ = [
    "LiveFMServer",
    "LiveRequest",
    "LiveServerStats",
    "SleepSlice",
    "make_slices",
]
