"""The live FM server: real threads, real timers, real queues.

Mirrors the paper's Lucene implementation (Section 6.1):

* a fixed worker pool executes request slices ("we use the
  ThreadPoolExecutor class ... that configures the number of threads");
* the number of requests in the system lives in a lock-protected
  counter ("FM tracks the load by computing the number of requests in
  the system in a synchronized variable");
* a scheduler thread wakes every ``quantum_ms`` and, for every running
  request, re-reads the load, indexes the interval table, and raises
  the request's allowed degree ("the main thread self-schedules
  periodically (every 5 ms) and checks the system load");
* admission control queues or delays arrivals per the table row.

Because work units sleep (GIL released), adding workers genuinely
shortens long requests — the live runtime demonstrates FM end to end
on actual threads, with wall-clock latencies.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from dataclasses import dataclass

from repro.cluster.adaptive import AdaptiveReplicationController
from repro.core.table import IntervalTable
from repro.errors import ConfigurationError, RequestShedError
from repro.observe.slo import SLOMonitor
from repro.runtime.work import LiveRequest
from repro.telemetry import Telemetry, resolve_telemetry
from repro.telemetry.spans import Span
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.observe.live import LivePlane

__all__ = ["LiveServerStats", "LiveFMServer"]


@dataclass(frozen=True)
class LiveServerStats:
    """Summary of a drained server.

    A server that completed nothing (everything shed, or nothing
    submitted) has no latency sample, so the latency statistics return
    ``math.nan`` rather than raising — callers can ``math.isnan`` the
    result instead of guarding every drain.
    """

    completed: int
    latencies_ms: tuple[float, ...]
    max_degrees: tuple[int, ...]
    #: Requests rejected by load shedding (queue bound or deadline).
    shed: int = 0
    #: Of those, rejections caused by a deadline-budget breach.
    deadline_sheds: int = 0

    def tail_latency_ms(self, phi: float = 0.99) -> float:
        """φ-percentile latency (order-statistic definition); ``nan``
        when no request completed."""
        if not self.latencies_ms:
            return math.nan
        ordered = sorted(self.latencies_ms)
        index = max(0, math.ceil(phi * len(ordered)) - 1)
        return ordered[index]

    def mean_latency_ms(self) -> float:
        """Mean latency; ``nan`` when no request completed."""
        if not self.latencies_ms:
            return math.nan
        return sum(self.latencies_ms) / len(self.latencies_ms)


class LiveFMServer:
    """An FM-scheduled request server on real threads.

    Parameters
    ----------
    table:
        The offline phase's interval table.
    workers:
        Pool size (the "cores" of the live runtime).
    quantum_ms:
        Scheduler-thread period.
    max_queue:
        Overload load shedding: an arrival that would queue behind
        ``max_queue`` already-waiting requests is rejected immediately
        — :meth:`submit` raises :class:`RequestShedError` so the client
        fails fast instead of joining a hopeless backlog.  ``None``
        disables the bound.
    deadline_ms:
        Deadline budget: a queued request whose waiting time exceeds
        this budget is shed by the scheduler thread (the client has
        given up; running it would only burn workers).  ``None``
        disables deadline shedding.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` pipeline.  When
        resolved, the server emits wall-clock per-request spans on the
        ``"runtime"`` track (``queue``/``run``/``shed``), a queue-depth
        gauge, shed and completion counters, and a latency histogram.
        All updates happen under the server lock, and span appends are
        GIL-atomic, so worker threads share the pipeline safely.
    slo:
        Optional :class:`~repro.observe.slo.SLOMonitor`.  Every
        completion feeds it (timestamped by the tracer clock); the
        server counts breach onsets, exposes :attr:`degraded`, and —
        when telemetry is resolved — exports ``slo.*`` gauges
        (windowed percentile, burn rates, breached flag) plus a
        ``runtime.slo_breaches`` counter.
    replication:
        Optional
        :class:`~repro.cluster.adaptive.AdaptiveReplicationController`.
        Every completion feeds it (latency, tracer-clock timestamp,
        ``busy_ms`` = the request's genuine core-milliseconds of work,
        and the instantaneous queue depth), so a server fronting a
        replicated shard can dial its hedging/retry knobs off the same
        stream.  **One SLO signal**: when ``slo`` is omitted the server
        adopts ``replication.slo``; passing a *different* monitor is a
        :class:`ConfigurationError` — degraded mode and redundancy
        shedding must fire off one view of the error budget, not two
        drifting ones.  :attr:`degraded` also reports True while the
        controller is in ``brownout``.
    """

    def __init__(
        self,
        table: IntervalTable,
        workers: int,
        quantum_ms: float = 5.0,
        max_queue: int | None = None,
        deadline_ms: float | None = None,
        telemetry: Telemetry | None = None,
        slo: SLOMonitor | None = None,
        replication: AdaptiveReplicationController | None = None,
        live: "LivePlane | None" = None,
    ) -> None:
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1: {workers}")
        if quantum_ms <= 0:
            raise ConfigurationError(f"quantum_ms must be positive: {quantum_ms}")
        if max_queue is not None and max_queue < 0:
            raise ConfigurationError(f"max_queue must be >= 0: {max_queue}")
        if deadline_ms is not None and deadline_ms <= 0:
            raise ConfigurationError(f"deadline_ms must be positive: {deadline_ms}")
        if replication is not None:
            if slo is not None and slo is not replication.slo:
                raise ConfigurationError(
                    "slo and replication.slo must be the same monitor: "
                    "the server and the replication controller share one "
                    "SLO signal (omit slo to adopt the controller's)"
                )
            slo = replication.slo
        self.table = table
        self.quantum_ms = quantum_ms
        self.max_queue = max_queue
        self.deadline_ms = deadline_ms
        self.telemetry = resolve_telemetry(telemetry)
        self.slo = slo
        self.replication = replication
        #: Optional live observability plane: completions and SLO
        #: breach onset/clear transitions feed its window stream.  The
        #: plane must NOT own the SLO feed (``feed_slo=False``) — the
        #: server (or its replication controller) already feeds the
        #: shared monitor, and double-feeding would double-count the
        #: error budget.
        self._live = live
        if live is not None and live.slo is not None and live.feed_slo:
            raise ConfigurationError(
                "live plane must not feed the SLO monitor itself "
                "(feed_slo=False): the server already feeds it"
            )
        self._breached = False  # last SLO verdict, for onset counting
        self._slo_breaches = 0
        self._arrival_ms: dict[int, float] = {}  # rid -> tracer-clock arrival
        self._run_spans: dict[int, Span] = {}
        self._shed: list[LiveRequest] = []
        self._deadline_sheds = 0
        self._lock = threading.Lock()
        self._running: dict[int, LiveRequest] = {}
        self._delayed: dict[int, float] = {}  # rid -> earliest start (perf s)
        self._delayed_requests: dict[int, LiveRequest] = {}
        self._queued: deque[LiveRequest] = deque()
        self._completed: list[LiveRequest] = []
        self._work_available = threading.Condition(self._lock)
        self._shutdown = False
        self._workers = [
            threading.Thread(target=self._worker_loop, name=f"fm-worker-{i}", daemon=True)
            for i in range(workers)
        ]
        self._scheduler = threading.Thread(
            target=self._scheduler_loop, name="fm-scheduler", daemon=True
        )
        for thread in self._workers:
            thread.start()
        self._scheduler.start()

    # ------------------------------------------------------------------
    # Client API
    # ------------------------------------------------------------------
    def submit(self, request: LiveRequest) -> None:
        """Admit, delay, or queue an arriving request per the table.

        Raises :class:`RequestShedError` when overload shedding rejects
        the request (``max_queue`` bound exceeded) — the fail-fast
        contract: the client learns immediately instead of timing out.
        """
        with self._lock:
            telemetry = self.telemetry
            if telemetry is not None:
                telemetry.metrics.counter("runtime.arrivals").inc()
                self._arrival_ms[request.rid] = telemetry.tracer.clock.now_ms()
            load = self._system_count_locked() + 1
            row = self.table.lookup(load)
            if row.wait_for_exit:
                if (
                    self.max_queue is not None
                    and len(self._queued) >= self.max_queue
                ):
                    self._shed.append(request)
                    if telemetry is not None:
                        self._shed_telemetry_locked(request, deadline=False)
                    raise RequestShedError(
                        f"request {request.rid} shed: backlog "
                        f"{len(self._queued)} >= max_queue {self.max_queue}"
                    )
                self._queued.append(request)
                if telemetry is not None:
                    telemetry.metrics.gauge("runtime.queue_depth").set(
                        len(self._queued)
                    )
                return
            if row.admission_delay_ms > 0:
                self._delayed[request.rid] = (
                    time.perf_counter() + row.admission_delay_ms / 1000.0
                )
                self._delayed_requests[request.rid] = request
                return
            self._start_locked(request, row.initial_degree)

    def drain(self, timeout_s: float = 60.0) -> LiveServerStats:
        """Wait for every submitted request to finish, then stop."""
        deadline = time.perf_counter() + timeout_s
        while time.perf_counter() < deadline:
            with self._lock:
                if not (self._running or self._delayed or self._queued):
                    break
            time.sleep(0.005)
        else:
            raise TimeoutError("live server did not drain in time")
        self.shutdown()
        with self._lock:
            if self.replication is not None:
                # Fold the final partial control window so the last mode
                # decision and telemetry export reflect the whole run.
                if self.telemetry is not None:
                    at_ms = self.telemetry.tracer.clock.now_ms()
                else:
                    at_ms = time.perf_counter() * 1000.0
                self.replication.flush(at_ms)
            done = list(self._completed)
            shed = len(self._shed)
            deadline_sheds = self._deadline_sheds
        return LiveServerStats(
            completed=len(done),
            latencies_ms=tuple(r.latency_ms for r in done),
            max_degrees=tuple(r.max_observed_degree for r in done),
            shed=shed,
            deadline_sheds=deadline_sheds,
        )

    def shutdown(self) -> None:
        """Stop the scheduler and workers (idempotent)."""
        with self._lock:
            self._shutdown = True
            self._work_available.notify_all()
        for thread in self._workers:
            thread.join(timeout=2.0)
        self._scheduler.join(timeout=2.0)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _system_count_locked(self) -> int:
        return len(self._running) + len(self._delayed) + len(self._queued)

    def _start_locked(self, request: LiveRequest, degree: int) -> None:
        request.degree = max(1, degree)
        request.mark_started()
        self._running[request.rid] = request
        telemetry = self.telemetry
        if telemetry is not None:
            now_ms = telemetry.tracer.clock.now_ms()
            arrived_ms = self._arrival_ms.get(request.rid, now_ms)
            if now_ms > arrived_ms:
                telemetry.tracer.complete(
                    "queue", arrived_ms, now_ms, track="runtime",
                    lane=request.rid,
                )
            self._run_spans[request.rid] = telemetry.tracer.begin(
                "run", track="runtime", lane=request.rid, at_ms=now_ms,
                degree=request.degree,
            )
        self._work_available.notify_all()

    def _shed_telemetry_locked(self, request: LiveRequest, deadline: bool) -> None:
        """Record one shed rejection (caller already checked telemetry)."""
        telemetry = self.telemetry
        metrics = telemetry.metrics
        metrics.counter("runtime.sheds").inc()
        if deadline:
            metrics.counter("runtime.deadline_sheds").inc()
        now_ms = telemetry.tracer.clock.now_ms()
        arrived_ms = self._arrival_ms.pop(request.rid, now_ms)
        telemetry.tracer.complete(
            "shed", arrived_ms, now_ms, track="runtime", lane=request.rid,
            deadline=deadline,
        )

    def _worker_loop(self) -> None:
        """Pull one slice at a time from any running request."""
        while True:
            slice_ = None
            owner = None
            with self._lock:
                while not self._shutdown:
                    for request in self._running.values():
                        candidate = request.take_slice()
                        if candidate is not None:
                            slice_, owner = candidate, request
                            break
                    if slice_ is not None:
                        break
                    self._work_available.wait(timeout=0.05)
                if self._shutdown:
                    return
            slice_.run()
            if owner.complete_slice():
                self._on_exit(owner)
            else:
                with self._lock:
                    self._work_available.notify_all()

    @property
    def degraded(self) -> bool:
        """The SLO monitor's current breach verdict (False without one),
        or the replication controller sitting in ``brownout``.

        Callers use this as a degradation signal — e.g. tighten
        ``deadline_ms`` or shrink ``max_queue`` while the error budget
        burns.
        """
        if self._breached:
            return True
        return self.replication is not None and self.replication.mode == "brownout"

    @property
    def replication_mode(self) -> str | None:
        """The replication controller's current mode (None without one)."""
        return None if self.replication is None else self.replication.mode

    @property
    def slo_breaches(self) -> int:
        """Breach *onsets* observed (ok -> breached transitions)."""
        return self._slo_breaches

    def _observe_slo_locked(self, request: LiveRequest) -> None:
        """Feed one completion to the SLO monitor and export its state."""
        telemetry = self.telemetry
        if telemetry is not None:
            at_ms = telemetry.tracer.clock.now_ms()
        else:
            at_ms = time.perf_counter() * 1000.0
        if self.replication is not None:
            # The controller feeds the shared monitor itself (one SLO
            # signal); busy_ms is the request's genuine work, so the
            # utilization windows normalize against the worker pool.
            self.replication.observe(
                request.latency_ms,
                at_ms=at_ms,
                busy_ms=request.total_ms,
                queue_depth=float(len(self._queued)),
            )
        else:
            self.slo.observe(request.latency_ms, at_ms=at_ms)
        status = self.slo.status()
        onset = status.breached and not self._breached
        cleared = self._breached and not status.breached
        self._breached = status.breached
        if onset:
            self._slo_breaches += 1
        if telemetry is not None:
            gauge = telemetry.metrics.gauge
            gauge("slo.percentile_ms").set(status.short_percentile_ms)
            gauge("slo.short_burn_rate").set(status.short_burn_rate)
            gauge("slo.long_burn_rate").set(status.long_burn_rate)
            gauge("slo.breached").set(1.0 if status.breached else 0.0)
            if onset:
                telemetry.metrics.counter("runtime.slo_breaches").inc()
        if onset or cleared:
            # Degraded-mode transitions are first-class observability
            # events: the flag flip and the event stream must agree
            # (a tested contract — see tests/runtime).
            kind = "slo_breach" if onset else "slo_clear"
            if telemetry is not None:
                telemetry.tracer.instant(
                    "observe.event",
                    track="observe",
                    at_ms=at_ms,
                    kind=kind,
                    burn_rate=status.long_burn_rate,
                    percentile_ms=status.short_percentile_ms,
                )
            if self._live is not None:
                self._live.annotate(
                    at_ms, kind, burn_rate=status.long_burn_rate
                )

    def _on_exit(self, request: LiveRequest) -> None:
        with self._lock:
            self._running.pop(request.rid, None)
            self._completed.append(request)
            telemetry = self.telemetry
            if self.slo is not None:
                self._observe_slo_locked(request)
            if self._live is not None:
                self._feed_live_locked(request)
            if telemetry is not None:
                telemetry.metrics.counter("runtime.completions").inc()
                telemetry.metrics.histogram("runtime.latency_ms").record(
                    request.latency_ms
                )
                self._arrival_ms.pop(request.rid, None)
                span = self._run_spans.pop(request.rid, None)
                if span is not None:
                    telemetry.tracer.end(
                        span,
                        latency_ms=request.latency_ms,
                        degree=request.max_observed_degree,
                    )
            # e1 contract: one admission per exit, FIFO.
            if self._queued:
                waiter = self._queued.popleft()
                load = self._system_count_locked() + 1
                row = self.table.lookup(load)
                degree = 1 if row.wait_for_exit else row.initial_degree
                self._start_locked(waiter, degree)
            if telemetry is not None:
                telemetry.metrics.gauge("runtime.queue_depth").set(
                    len(self._queued)
                )
            self._work_available.notify_all()

    def _feed_live_locked(self, request: LiveRequest) -> None:
        """Feed one completion into the live plane's window stream,
        decomposed the same way offline analysis reconstructs the
        runtime track (queue wait + execution)."""
        telemetry = self.telemetry
        if telemetry is not None:
            at_ms = telemetry.tracer.clock.now_ms()
        else:
            at_ms = time.perf_counter() * 1000.0
        start_s = request.start_s if request.start_s is not None else request.finish_s
        queue_ms = 1000.0 * (start_s - request.arrival_s)
        execute_ms = 1000.0 * (request.finish_s - start_s)
        self._live.observe(
            at_ms=at_ms,
            latency_ms=request.latency_ms,
            components={"queue_ms": queue_ms, "execute_ms": execute_ms},
            rid=request.rid,
        )

    def _scheduler_loop(self) -> None:
        """The self-scheduling quantum: climb degrees, release delays."""
        while True:
            time.sleep(self.quantum_ms / 1000.0)
            with self._lock:
                if self._shutdown:
                    return
                if self.deadline_ms is not None and self._queued:
                    # Deadline shedding: a queued request that has
                    # waited past its budget is rejected — by now the
                    # client has given up, so running it only burns
                    # workers that admitted requests need.
                    now_s = time.perf_counter()
                    budget_s = self.deadline_ms / 1000.0
                    kept: deque[LiveRequest] = deque()
                    for waiting in self._queued:
                        if now_s - waiting.arrival_s > budget_s:
                            self._shed.append(waiting)
                            self._deadline_sheds += 1
                            if self.telemetry is not None:
                                self._shed_telemetry_locked(waiting, deadline=True)
                        else:
                            kept.append(waiting)
                    self._queued = kept
                    if self.telemetry is not None:
                        self.telemetry.metrics.gauge("runtime.queue_depth").set(
                            len(self._queued)
                        )
                load = max(1, self._system_count_locked())
                row = self.table.lookup(load)
                for request in self._running.values():
                    desired = row.degree_at_progress(request.progress_ms())
                    if desired > request.degree:
                        request.degree = desired
                now = time.perf_counter()
                ready = [rid for rid, t in self._delayed.items() if now >= t]
                for rid in ready:
                    del self._delayed[rid]
                    request = self._delayed_requests.pop(rid)
                    fresh = self.table.lookup(self._system_count_locked() + 1)
                    if fresh.wait_for_exit:
                        self._queued.append(request)
                    else:
                        self._start_locked(request, fresh.initial_degree)
                self._work_available.notify_all()
