"""Work units for the live (real-thread) FM runtime.

The simulator measures FM in virtual time; this package runs it on real
``threading`` threads.  CPython's GIL would serialize *computational*
work, so live requests are built from :class:`SleepSlice` units — each
slice sleeps its cost, which releases the GIL, making intra-request
parallelism physically real (the same trick network- or IO-bound
services play).  Wall-clock speedups from adding workers are therefore
genuine, while per-slice granularity bounds them exactly like segment
granularity bounds Lucene's.

A :class:`LiveRequest` is a bag of slices plus the runtime state FM
needs: the currently *allowed* degree (the knob FM turns — compare the
paper's "FM adds a thread by simply changing a field of
ThreadPoolExecutor"), in-flight slice count, and completion latching.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Sequence

from repro.errors import ConfigurationError

__all__ = ["SleepSlice", "LiveRequest"]


class SleepSlice:
    """One unit of request work: sleeps ``duration_ms`` when executed."""

    __slots__ = ("duration_ms",)

    def __init__(self, duration_ms: float) -> None:
        if duration_ms <= 0:
            raise ConfigurationError(f"slice duration must be positive: {duration_ms}")
        self.duration_ms = duration_ms

    def run(self) -> None:
        """Execute the slice (sleeping releases the GIL)."""
        time.sleep(self.duration_ms / 1000.0)


def make_slices(total_ms: float, slice_ms: float) -> list[SleepSlice]:
    """Split ``total_ms`` of work into slices of at most ``slice_ms``."""
    if total_ms <= 0 or slice_ms <= 0:
        raise ConfigurationError("total_ms and slice_ms must be positive")
    slices: list[SleepSlice] = []
    remaining = total_ms
    while remaining > 1e-9:
        chunk = min(slice_ms, remaining)
        slices.append(SleepSlice(chunk))
        remaining -= chunk
    return slices


class LiveRequest:
    """One in-flight request in the live runtime.

    Thread-safety: slice handout and completion accounting are guarded
    by an internal lock; the *degree* field is a plain int written by
    the scheduler thread and read by the dispatcher (a benign race —
    exactly how the paper's implementation treats the thread-count
    field).
    """

    def __init__(self, rid: int, slices: Sequence[SleepSlice]) -> None:
        if not slices:
            raise ConfigurationError("request needs at least one slice")
        self.rid = rid
        self.total_ms = sum(s.duration_ms for s in slices)
        self._slices = list(slices)
        self._next_slice = 0
        self._in_flight = 0
        self._lock = threading.Lock()
        self.done = threading.Event()
        #: Worker threads currently allowed (FM raises this, never lowers).
        self.degree = 1
        self.arrival_s = time.perf_counter()
        self.start_s: float | None = None
        self.finish_s: float | None = None
        self.max_observed_degree = 1

    # ------------------------------------------------------------------
    def mark_started(self) -> None:
        """Timestamp the start of execution (admission granted)."""
        if self.start_s is None:
            self.start_s = time.perf_counter()

    def take_slice(self) -> SleepSlice | None:
        """Claim the next slice if the degree budget allows; None when
        nothing can be handed out right now."""
        with self._lock:
            if self._next_slice >= len(self._slices):
                return None
            if self._in_flight >= self.degree:
                return None
            slice_ = self._slices[self._next_slice]
            self._next_slice += 1
            self._in_flight += 1
            if self._in_flight > self.max_observed_degree:
                self.max_observed_degree = self._in_flight
            return slice_

    def complete_slice(self) -> bool:
        """Account a finished slice; returns True when the request is done."""
        with self._lock:
            self._in_flight -= 1
            finished = (
                self._next_slice >= len(self._slices) and self._in_flight == 0
            )
        if finished and not self.done.is_set():
            self.finish_s = time.perf_counter()
            self.done.set()
        return finished

    @property
    def wants_workers(self) -> bool:
        """Whether the request could use another worker right now."""
        with self._lock:
            return (
                self._next_slice < len(self._slices)
                and self._in_flight < self.degree
            )

    # ------------------------------------------------------------------
    @property
    def latency_ms(self) -> float:
        """Arrival-to-completion wall time."""
        if self.finish_s is None:
            raise ConfigurationError(f"request {self.rid} not finished")
        return 1000.0 * (self.finish_s - self.arrival_s)

    def progress_ms(self) -> float:
        """Wall time since execution started (the FM schedule index)."""
        if self.start_s is None:
            return 0.0
        return 1000.0 * (time.perf_counter() - self.start_s)
