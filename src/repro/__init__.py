"""repro — Few-to-Many (FM) incremental parallelism, reproduced.

A production-quality reproduction of *"Few-to-Many: Incremental
Parallelism for Reducing Tail Latency in Interactive Services"*
(ASPLOS 2015): the FM offline interval-table search, the online
self-scheduling policy with selective thread-priority boosting, every
baseline scheduler from the paper's evaluation (SEQ, FIX-N, simple
fixed-interval addition, Adaptive, Request-Clairvoyant), a virtual-time
multicore server simulator, calibrated Lucene-like and Bing-like
workloads, a miniature segmented search engine, and the full benchmark
harness regenerating every table and figure of the evaluation.

Quickstart::

    import repro

    workload = repro.workloads.lucene_workload(profile_size=4000)
    table = repro.build_interval_table(
        workload.profile,
        repro.SearchConfig(max_degree=4, target_parallelism=24,
                           step_ms=25, num_bins=60),
    )
    result = repro.experiments.run_policy(
        repro.schedulers.FMScheduler(table), workload, rps=43, cores=15,
        spin_fraction=repro.workloads.lucene.SPIN_FRACTION,
    )
    print(result.tail_latency_ms(0.99))
"""

from repro import cluster, core, experiments, runtime, schedulers, search, sim, workloads
from repro.core import (
    DemandProfile,
    IntervalSchedule,
    IntervalTable,
    RequestProfile,
    Schedule,
    SearchConfig,
    build_interval_table,
    choose_max_degree,
)

__version__ = "1.0.0"

__all__ = [
    "DemandProfile",
    "IntervalSchedule",
    "IntervalTable",
    "RequestProfile",
    "Schedule",
    "SearchConfig",
    "build_interval_table",
    "choose_max_degree",
    "cluster",
    "core",
    "experiments",
    "runtime",
    "schedulers",
    "search",
    "sim",
    "workloads",
]
