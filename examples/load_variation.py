"""Load bursts: how fast does each policy adapt?  (Figure 11.)

The client alternates 45 -> 30 -> 45 -> 30 RPS in 500-request quanta.
Fixed policies are tuned for exactly one operating point: FIX-4 matches
FM during the calm quanta and falls apart during the bursts; SEQ never
benefits from the calm.  FM re-reads the instantaneous load every
quantum and adapts within milliseconds.

Run:  python examples/load_variation.py
"""

from __future__ import annotations

from repro.core import SearchConfig, build_interval_table
from repro.experiments import render_table, run_policy
from repro.schedulers import FixedScheduler, FMScheduler, SequentialScheduler
from repro.workloads import lucene
from repro.workloads.arrivals import PiecewiseRateProcess

QUANTUM_REQUESTS = 500
WINDOW = 100  # the paper plots the last 100 requests of each quantum


def main() -> None:
    workload = lucene.lucene_workload(profile_size=5000)
    table = build_interval_table(
        workload.profile,
        SearchConfig(
            max_degree=lucene.MAX_DEGREE,
            target_parallelism=lucene.TARGET_PARALLELISM,
            step_ms=25.0,
            num_bins=60,
        ),
    )

    process = PiecewiseRateProcess(
        [(45.0, QUANTUM_REQUESTS), (30.0, QUANTUM_REQUESTS)] * 2
    )
    total = 4 * QUANTUM_REQUESTS
    labels = ["burst 45 RPS", "calm 30 RPS", "burst 45 RPS", "calm 30 RPS"]

    print(f"replaying {total} requests across four load quanta ...")
    per_policy: dict[str, list[float]] = {}
    for scheduler in [
        SequentialScheduler(),
        FixedScheduler(2),
        FixedScheduler(4),
        FMScheduler(table),
    ]:
        run = run_policy(
            scheduler, workload, rps=45.0, cores=lucene.CORES,
            num_requests=total, quantum_ms=lucene.QUANTUM_MS, seed=1311,
            process=process, spin_fraction=lucene.SPIN_FRACTION,
        )
        tails = []
        for start, stop in process.quantum_boundaries(total):
            window = run.slice_by_arrival(max(start, stop - WINDOW), stop)
            tails.append(window.tail_latency_ms(0.99))
        per_policy[scheduler.name] = tails

    rows = [
        [label] + [per_policy[name][i] for name in per_policy]
        for i, label in enumerate(labels)
    ]
    print(
        render_table(
            ["quantum (p99 of last 100, ms)"] + list(per_policy), rows
        )
    )
    print(
        "\nFM is best or tied in every quantum: aggressive like FIX-4 when "
        "calm, conservative like SEQ-with-selective-parallelism in bursts."
    )


if __name__ == "__main__":
    main()
