"""Watch FM make its decisions: a traced request timeline.

Wraps the FM scheduler in a :class:`~repro.sim.trace.TraceRecorder` and
replays a short bursty trace, then prints (a) the full decision log of
the slowest request — when it was admitted, at what loads it climbed
each degree, whether it got boosted — and (b) a behavioural fingerprint
of the whole run (how many admissions were immediate vs delayed vs
queued, how many degree climbs and boosts happened).

Run:  python examples/request_timeline.py
"""

from __future__ import annotations

from repro.core import SearchConfig, build_interval_table
from repro.experiments import run_policy
from repro.schedulers import FMScheduler
from repro.sim.trace import TraceRecorder
from repro.workloads import lucene
from repro.workloads.arrivals import PiecewiseRateProcess


def main() -> None:
    workload = lucene.lucene_workload(profile_size=3000)
    table = build_interval_table(
        workload.profile,
        SearchConfig(
            max_degree=lucene.MAX_DEGREE,
            target_parallelism=lucene.TARGET_PARALLELISM,
            step_ms=25.0,
            num_bins=40,
        ),
    )

    recorder = TraceRecorder(FMScheduler(table))
    # A burst (60 RPS) then calm (25 RPS): admissions and climbs under
    # pressure, aggressive parallelism once it clears.
    process = PiecewiseRateProcess([(60.0, 150), (25.0, 150)])
    result = run_policy(
        recorder, workload, rps=60.0, cores=lucene.CORES,
        num_requests=300, quantum_ms=lucene.QUANTUM_MS, seed=5,
        process=process, spin_fraction=lucene.SPIN_FRACTION,
    )

    slowest = max(result.records, key=lambda r: r.latency_ms)
    print(f"slowest request: r{slowest.rid}  "
          f"seq demand {slowest.seq_ms:.0f} ms, latency {slowest.latency_ms:.0f} ms, "
          f"final degree {slowest.final_degree}, boosted={slowest.boosted}")
    print("\nits decision timeline:")
    for event in recorder.timeline(slowest.rid):
        print("  " + event.describe())

    print("\nrun fingerprint (event counts):")
    for kind, count in sorted(recorder.counts().items(), key=lambda kv: kv[0].value):
        print(f"  {kind.value:10s} {count}")

    print(f"\np99 latency {result.tail_latency_ms():.0f} ms, "
          f"avg threads {result.average_threads():.1f}, "
          f"CPU {100 * result.cpu_utilization():.0f}%")


if __name__ == "__main__":
    main()
