"""Enterprise search, end to end, on the miniature engine.

The full loop the paper's Lucene deployment runs (Section 6), against
this repository's own search substrate instead of Lucene itself:

1. generate a synthetic Zipfian corpus and build a segmented inverted
   index (the segment is FM's unit of intra-request parallelism);
2. execute a query log once to *profile* it: deterministic per-query
   cost units become sequential times, per-segment makespans become
   speedup curves (sublinearity is emergent from segment imbalance);
3. run the offline FM search on the derived profile;
4. serve a fresh query stream under FM vs SEQ vs FIX and compare.

Run:  python examples/lucene_enterprise_search.py
"""

from __future__ import annotations

import numpy as np

from repro.core import SearchConfig, build_interval_table, choose_max_degree
from repro.core.speedup import TabulatedSpeedup, UniformSpeedupModel
from repro.experiments import render_table, run_policy
from repro.schedulers import FixedScheduler, FMScheduler, SequentialScheduler
from repro.search import (
    InvertedIndex,
    SearchEngine,
    generate_corpus,
    parse_query,
    profile_queries,
)
from repro.search.corpus import generate_query_log
from repro.workloads.workload import Workload

CORES = 8
NUM_SEGMENTS = 12


def main() -> None:
    # 1. Corpus and segmented index.
    print("building corpus and index ...")
    documents = generate_corpus(3000, vocab_size=4000, mean_doc_len=90, seed=101)
    index = InvertedIndex.build(documents, num_segments=NUM_SEGMENTS)
    engine = SearchEngine(index)
    print(f"  {index.num_docs} docs in {index.num_segments} segments, "
          f"avg length {index.average_doc_length:.0f} tokens")

    demo = engine.execute(parse_query("t1 t2"))
    print(f"  demo query 't1 t2': top doc {demo.hits[0].doc_id} "
          f"(score {demo.hits[0].score:.2f}), "
          f"{demo.total_cost_units:.0f} work units")

    # 2. Profile the query log (the paper's 10K isolated executions).
    print("\nprofiling query log ...")
    log = generate_query_log(1500, vocab_size=4000, seed=102)
    profile = profile_queries(engine, log, max_degree=6, unit_ms=0.05)
    n = choose_max_degree(profile)
    print(f"  median {profile.median():.1f} ms, p99 {profile.percentile(0.99):.1f} ms; "
          f"scalability analysis selects max degree {n}")

    # 3. Offline FM search on the derived profile.
    table = build_interval_table(
        profile,
        SearchConfig(
            max_degree=n,
            target_parallelism=1.5 * CORES,
            step_ms=10.0,
            num_bins=40,
        ),
    )
    print(f"  interval table: {len(table)} rows, "
          f"capacity {table.admission_capacity()}")

    # 4. Serve a fresh stream drawn from the same query population.
    average_curve = TabulatedSpeedup(
        [profile.average_speedup(d) for d in range(1, n + 1)]
    )

    def sampler(rng: np.random.Generator, size: int) -> np.ndarray:
        return rng.choice(profile.seq, size=size, replace=True)

    workload = Workload(
        name="mini-lucene",
        sampler=sampler,
        speedup_model=UniformSpeedupModel(average_curve),
        max_degree=n,
    )
    rps = 0.6 * CORES / (profile.mean() / 1000.0)  # ~60 % utilization
    print(f"\nserving at {rps:.0f} RPS on {CORES} cores:")
    rows = []
    for scheduler in [SequentialScheduler(), FixedScheduler(n), FMScheduler(table)]:
        result = run_policy(
            scheduler, workload, rps=rps, cores=CORES,
            num_requests=2000, seed=103, spin_fraction=0.25,
        )
        rows.append([
            scheduler.name,
            result.tail_latency_ms(0.99),
            result.mean_latency_ms(),
            result.average_threads(),
        ])
    print(render_table(["policy", "p99 (ms)", "mean (ms)", "avg threads"], rows))


if __name__ == "__main__":
    main()
