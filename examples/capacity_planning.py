"""Capacity planning: turn tail latencies into server counts.

The paper's TCO argument (Sections 1 and 7): at a fixed tail-latency
target, a policy that sustains more RPS per server needs fewer servers
for the same user load — Bing's numbers implied 42 % fewer with FM vs
Adaptive at a 120 ms target.  This example sweeps the Bing ISN
workload, finds each policy's max sustainable load at the target, and
sizes a fleet for one million requests per second.

Run:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro.core import SearchConfig, build_interval_table
from repro.core.capacity import max_sustainable_rps, server_reduction, servers_needed
from repro.experiments import render_table, run_sweep
from repro.schedulers import AdaptiveScheduler, FMScheduler, SequentialScheduler
from repro.workloads import bing

TARGET_MS = 120.0
FLEET_LOAD_RPS = 1_000_000.0
RPS_GRID = [100, 150, 200, 250, 280, 310, 340, 370]


def main() -> None:
    workload = bing.bing_workload(profile_size=10_000)
    table = build_interval_table(
        workload.profile,
        SearchConfig(
            max_degree=bing.MAX_DEGREE,
            target_parallelism=bing.TARGET_PARALLELISM,
            step_ms=5.0,
            num_bins=40,
        ),
    )
    policies = {
        "SEQ": SequentialScheduler(),
        "Adaptive": AdaptiveScheduler(bing.MAX_DEGREE, bing.TARGET_PARALLELISM),
        "FM": FMScheduler(table, boosting=False),
    }

    print(f"sweeping {RPS_GRID} RPS per policy ...")
    sweep = run_sweep(
        policies, workload, RPS_GRID, cores=bing.CORES,
        num_requests=6000, quantum_ms=bing.QUANTUM_MS,
        spin_fraction=bing.SPIN_FRACTION,
    )

    print("\n99th percentile latency (ms) vs RPS:")
    names = sweep.policies()
    print(render_table(
        ["RPS"] + names,
        [[rps] + [sweep[n].tail_ms[i] for n in names]
         for i, rps in enumerate(sweep[names[0]].rps_values)],
    ))

    print(f"\nfleet sizing at a {TARGET_MS:.0f} ms p99 target, "
          f"{FLEET_LOAD_RPS:,.0f} RPS total:")
    rows = []
    per_server = {}
    for name in names:
        rps = max_sustainable_rps(sweep[name].tail_points(), TARGET_MS)
        per_server[name] = rps
        servers = servers_needed(FLEET_LOAD_RPS, rps) if rps > 0 else float("inf")
        rows.append([name, rps, servers])
    print(render_table(["policy", "max RPS/server", "servers needed"], rows))

    if per_server["Adaptive"] > 0 and per_server["FM"] > 0:
        saving = server_reduction(
            sweep["Adaptive"].tail_points(), sweep["FM"].tail_points(), TARGET_MS
        )
        print(f"\nFM vs Adaptive server reduction: {saving:.0%} "
              f"(the paper reports 42% on production hardware)")


if __name__ == "__main__":
    main()
