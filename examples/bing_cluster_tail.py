"""Bing-style index serving: per-ISN tails drive the cluster tail.

Section 7's motivation, reproduced: a query fans out to every
index-serving node (ISN); the aggregator waits for the slowest shard,
so the cluster's 90th percentile is governed by each ISN's 99th.  This
example simulates one ISN under SEQ / Adaptive / FM, then propagates
the measured per-ISN latency distributions through 10-way and 40-way
fan-out.

Run:  python examples/bing_cluster_tail.py
"""

from __future__ import annotations

import numpy as np

from repro.cluster import cluster_tail, required_per_server_percentile
from repro.core import SearchConfig, build_interval_table
from repro.experiments import render_table, run_policy
from repro.schedulers import AdaptiveScheduler, FMScheduler, SequentialScheduler
from repro.workloads import bing

RPS = 260
NUM_REQUESTS = 8000


def main() -> None:
    workload = bing.bing_workload(profile_size=10_000)
    table = build_interval_table(
        workload.profile,
        SearchConfig(
            max_degree=bing.MAX_DEGREE,
            target_parallelism=bing.TARGET_PARALLELISM,
            step_ms=5.0,
            num_bins=40,
        ),
    )

    print(f"simulating one ISN at {RPS} RPS ({NUM_REQUESTS} requests) ...")
    policies = {
        "SEQ": SequentialScheduler(),
        "Adaptive": AdaptiveScheduler(bing.MAX_DEGREE, bing.TARGET_PARALLELISM),
        "FM": FMScheduler(table, boosting=False),  # the Bing deployment
    }
    latencies: dict[str, np.ndarray] = {}
    isn_rows = []
    for name, scheduler in policies.items():
        result = run_policy(
            scheduler, workload, rps=RPS, cores=bing.CORES,
            num_requests=NUM_REQUESTS, quantum_ms=bing.QUANTUM_MS,
            seed=77, spin_fraction=bing.SPIN_FRACTION,
        )
        latencies[name] = result.latencies_ms()
        isn_rows.append([name, result.tail_latency_ms(0.99), result.mean_latency_ms()])
    print(render_table(["policy", "ISN p99 (ms)", "ISN mean (ms)"], isn_rows))

    print("\nrequired per-ISN percentile for a 90% cluster target:")
    fanout_rows = [
        [n, required_per_server_percentile(0.9, n)] for n in (1, 10, 40, 100)
    ]
    print(render_table(["ISNs", "per-ISN percentile"], fanout_rows))

    print("\ncluster p90 latency under fan-out (Monte Carlo):")
    rng = np.random.default_rng(9)
    rows = []
    for n in (10, 40):
        rows.extend(
            [f"{name} x{n}", cluster_tail(latencies[name], n, 0.9, rng)]
            for name in policies
        )
    print(render_table(["configuration", "cluster p90 (ms)"], rows))
    print(
        "\nFM's per-ISN p99 advantage compounds at the aggregator: the same "
        "fleet answers fan-out queries faster, or the same deadline is met "
        "with more shards."
    )


if __name__ == "__main__":
    main()
