"""Quickstart: the FM pipeline in ~40 lines.

1. Build a calibrated workload (the paper's Lucene enterprise search).
2. Run the offline phase: search for the load-indexed interval table.
3. Simulate an open-loop client at a fixed load under four policies.
4. Compare 99th-percentile latency — FM should win.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.core import SearchConfig, build_interval_table
from repro.experiments import render_table, run_policy
from repro.schedulers import FixedScheduler, FMScheduler, SequentialScheduler
from repro.workloads import lucene


def main() -> None:
    # 1. The workload: demand distribution + per-request speedup curves,
    #    calibrated to the paper's Figure 2.
    workload = lucene.lucene_workload(profile_size=4000)
    profile = workload.profile
    print(
        f"workload: median {profile.median():.0f} ms, "
        f"mean {profile.mean():.0f} ms, p99 {profile.percentile(0.99):.0f} ms"
    )

    # 2. Offline phase: one schedule per load level, targeting 24 total
    #    software threads on the 15-core server (Section 6.1).
    table = build_interval_table(
        profile,
        SearchConfig(
            max_degree=lucene.MAX_DEGREE,
            target_parallelism=lucene.TARGET_PARALLELISM,
            step_ms=50.0,
            num_bins=40,
        ),
    )
    print(f"\ninterval table ({len(table)} rows, "
          f"admission capacity {table.admission_capacity()}):")
    print(table.format())

    # 3. Online phase: simulate 1000 requests at 43 RPS per policy.
    policies = [
        SequentialScheduler(),
        FixedScheduler(2),
        FixedScheduler(4),
        FMScheduler(table),
    ]
    rows = []
    for scheduler in policies:
        result = run_policy(
            scheduler,
            workload,
            rps=43.0,
            cores=lucene.CORES,
            num_requests=1000,
            quantum_ms=lucene.QUANTUM_MS,
            seed=7,
            spin_fraction=lucene.SPIN_FRACTION,
        )
        rows.append(
            [
                scheduler.name,
                result.tail_latency_ms(0.99),
                result.mean_latency_ms(),
                result.average_threads(),
                100.0 * result.cpu_utilization(),
            ]
        )

    # 4. The comparison (FM should have the lowest tail).
    print("\npolicy comparison at 43 RPS:")
    print(render_table(
        ["policy", "p99 (ms)", "mean (ms)", "avg threads", "CPU %"], rows
    ))


if __name__ == "__main__":
    main()
