"""FM on real threads: incremental parallelism you can wall-clock.

Everything else in this repository measures FM in simulated virtual
time; this example runs the actual control loop on actual
``threading`` threads.  Work units sleep (releasing the GIL), so a
request's threads genuinely overlap — like an IO/network-bound service.

Two runs over the same 60-request bimodal workload (mostly 40 ms
requests, a few 400 ms ones):

* a *sequential* server (table that never adds parallelism);
* an *FM* server whose table starts everything sequential and climbs
  long requests to degree 4.

The long requests dominate the p99, and FM's climbing visibly cuts it.

Run:  python examples/live_runtime.py        (~10 seconds, sleeps mostly)
"""

from __future__ import annotations

import random
import time

from repro.core.schedule import Schedule, ScheduleStep
from repro.core.table import IntervalTable
from repro.runtime import LiveFMServer, LiveRequest, make_slices

WORKERS = 6
NUM_REQUESTS = 60
SHORT_MS, LONG_MS = 40.0, 400.0
LONG_FRACTION = 0.15
ARRIVAL_GAP_MS = 25.0


def _sequential_table() -> IntervalTable:
    return IntervalTable([Schedule([ScheduleStep(0.0, 1)])])


def _fm_table() -> IntervalTable:
    climb = Schedule(
        [ScheduleStep(0.0, 1), ScheduleStep(60.0, 2), ScheduleStep(120.0, 4)]
    )
    return IntervalTable([climb] * 8 + [Schedule([ScheduleStep(0.0, 1)],
                                                 wait_for_exit=True)])


def _run(name: str, table: IntervalTable, seed: int = 7) -> None:
    rng = random.Random(seed)
    server = LiveFMServer(table, workers=WORKERS, quantum_ms=5.0)
    print(f"{name}: submitting {NUM_REQUESTS} requests "
          f"({LONG_FRACTION:.0%} long) ...")
    for rid in range(NUM_REQUESTS):
        total = LONG_MS if rng.random() < LONG_FRACTION else SHORT_MS
        server.submit(LiveRequest(rid, make_slices(total, slice_ms=10.0)))
        time.sleep(ARRIVAL_GAP_MS / 1000.0)
    stats = server.drain(timeout_s=60.0)
    print(f"  completed {stats.completed}  "
          f"mean {stats.mean_latency_ms():6.1f} ms  "
          f"p99 {stats.tail_latency_ms(0.99):6.1f} ms  "
          f"max degree reached {max(stats.max_degrees)}")


def main() -> None:
    _run("sequential", _sequential_table())
    _run("few-to-many", _fm_table())
    print("\nthe FM server climbs its long requests to degree 4 on real "
          "threads, cutting the wall-clock p99.")


if __name__ == "__main__":
    main()
