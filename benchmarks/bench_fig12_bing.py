"""Figure 12: Bing ISN comparisons and parallelism distributions.

SEQ / FIX-3+load-protection / Adaptive / FM tail latency over
100-350 RPS, plus degree and thread-count distributions at low/high load.
"""

from __future__ import annotations

from repro.experiments.figures import fig12_bing

from conftest import run_figure


def test_fig12_bing(benchmark, scale, save_figure):
    """Regenerate Figure 12(a,b,c)."""
    result = run_figure(benchmark, fig12_bing, scale, save_figure)
    assert result.tables
