"""Perf trajectory benches -> BENCH_telemetry / BENCH_observe / BENCH_engine.

Runs the simulator, search-executor, and cluster benches twice each —
telemetry explicitly disabled vs enabled — plus microbenchmarks of the
telemetry primitives themselves, and writes the headline numbers
(events/sec, p50/p99, overhead %) to ``BENCH_telemetry.json`` at the
repo root so future PRs have a baseline to regress against.

Also writes ``BENCH_observe.json`` for the observability layer (trace
analyzer throughput, attribution flight-recorder overhead) and
``BENCH_engine.json`` for the engine hot path: single-process
events/sec on a saturated run, an A/B against the frozen reference
engine in ``repro.sim._baseline`` (which must be *bit-identical*, not
just close), and serial-vs-parallel sweep wall clock at 4 workers.

``--only replication`` (also in ``--only all``) delegates to
``bench_replication.py`` and writes ``BENCH_replication.json``: the
adaptive-controller observe-path throughput, controller-vs-static
overhead, the seeded adaptive-vs-best-static phase-diagram ratios, and
the deterministic flip-replay attestation (gated by
``check_replication_regression.py``).

``--only hetero`` (also in ``--only all``) delegates to
``bench_hetero.py`` and writes ``BENCH_hetero.json``: the single-pool
bit-identity attestation against ``repro.sim._baseline``, the EA-FM
vs FIX-3 latency-energy frontier on big/little cores, the
worker-count determinism attestation, and the hetero engine's
events/sec (gated by ``check_hetero_regression.py``).

``--only diff`` (also in ``--only all``) delegates to
``bench_diff.py`` and writes ``BENCH_diff.json``: the self-diff exact
null, the FM-vs-FIX-3 significance + explanation-ranking attestation,
diff determinism across repeats and ``--workers``, and diff/ledger
throughput (gated by ``check_diff_regression.py``).

Usage::

    PYTHONPATH=src python benchmarks/run_all.py [--scale quick] [--output PATH]
    PYTHONPATH=src python benchmarks/run_all.py --quick --only engine,diff
    PYTHONPATH=src python benchmarks/run_all.py --list
    PYTHONPATH=src python benchmarks/run_all.py --quick --ledger runs

``--only`` takes a comma-separated subset of the sections shown by
``--list``.  Every section report embeds a ``"ledger"`` entry — a
``repro.observe.ledger.RunEntry`` whose metrics are the report's
numeric scalars — so committed ``BENCH_*`` baselines are diffable run
over run (``gatelib.compare_to_baseline``, DESIGN.md §15); ``--ledger
DIR`` additionally appends each section's entry to that run ledger.

The acceptance bound for the telemetry trajectory is a <3% simulator
slowdown with telemetry disabled; for the engine trajectory, >= 25%
events/sec regressions vs the committed ``BENCH_engine.json`` fail CI
(see ``benchmarks/check_engine_regression.py``).
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.cluster.hedging import HedgePolicy
from repro.cluster.simulation import simulate_cluster_robust
from repro.experiments.config import Scale, default_scale
from repro.experiments.tables import bing_table
from repro.experiments.runner import run_policy
from repro.schedulers import FMScheduler
from repro.search.corpus import generate_corpus, generate_query_log
from repro.search.executor import SearchEngine
from repro.search.index import InvertedIndex
from repro.search.query import parse_query
from repro.telemetry import LogHistogram, MetricsRegistry, Telemetry, Tracer
from repro.telemetry.clock import ManualClock
from repro.workloads import bing as bing_mod
from repro.workloads.arrivals import PoissonProcess

REPO_ROOT = Path(__file__).resolve().parent.parent
TIMING_REPEATS = 3


def best_of(fn, repeats: int = TIMING_REPEATS) -> float:
    """Best wall time over ``repeats`` calls (sheds scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def off_on_cell(make_run, units: int) -> dict:
    """Time ``make_run(telemetry)`` with telemetry off vs on.

    ``make_run`` returns a zero-arg runner bound to the given pipeline;
    ``units`` is the work count (requests/queries) per run.
    """
    off_tel = Telemetry(enabled=False)
    on_tel = Telemetry()
    off_s = best_of(make_run(off_tel))
    on_s = best_of(make_run(on_tel))
    spans = len(on_tel.tracer.spans)
    cell = {
        "off_wall_s": round(off_s, 6),
        "on_wall_s": round(on_s, 6),
        "off_units_per_s": round(units / off_s, 1),
        "on_units_per_s": round(units / on_s, 1),
        "overhead_enabled_pct": round(100.0 * (on_s / off_s - 1.0), 2),
        "spans": spans,
        "span_events_per_s": round(spans / on_s, 1),
    }
    for name, histogram in on_tel.metrics.histograms.items():
        if name.endswith("latency_ms"):
            cell["p50_ms"] = round(histogram.percentile(0.50), 3)
            cell["p99_ms"] = round(histogram.percentile(0.99), 3)
    return cell


def bench_sim(scale: Scale) -> dict:
    table = bing_table(scale)
    workload = bing_mod.bing_workload(profile_size=scale.profile_size)
    num_requests = scale.num_requests * 2

    def make_run(telemetry: Telemetry):
        def run():
            telemetry.reset()
            run_policy(
                FMScheduler(table),
                workload,
                rps=180.0,
                cores=bing_mod.CORES,
                num_requests=num_requests,
                quantum_ms=bing_mod.QUANTUM_MS,
                spin_fraction=bing_mod.SPIN_FRACTION,
                telemetry=telemetry,
            )

        return run

    return {"num_requests": num_requests, **off_on_cell(make_run, num_requests)}


def bench_search(scale: Scale) -> dict:
    documents = generate_corpus(max(200, scale.num_requests), seed=7)
    index = InvertedIndex.build(documents, num_segments=8)
    queries = [
        parse_query(text)
        for text in generate_query_log(max(100, scale.num_requests // 2), seed=11)
    ]

    def make_run(telemetry: Telemetry):
        engine = SearchEngine(index, telemetry=telemetry)

        def run():
            telemetry.reset()
            for query in queries:
                engine.execute(query)

        return run

    return {"num_queries": len(queries), **off_on_cell(make_run, len(queries))}


def bench_cluster(scale: Scale) -> dict:
    table = bing_table(scale)
    workload = bing_mod.bing_workload(profile_size=scale.profile_size)
    num_queries = scale.num_requests

    def make_run(telemetry: Telemetry):
        def run():
            telemetry.reset()
            simulate_cluster_robust(
                scheduler_factory=lambda: FMScheduler(table, boosting=False),
                workload=workload,
                num_servers=4,
                num_queries=num_queries,
                process=PoissonProcess(180.0),
                cores=bing_mod.CORES,
                quantum_ms=bing_mod.QUANTUM_MS,
                spin_fraction=bing_mod.SPIN_FRACTION,
                seed=71,
                hedge=HedgePolicy(delay_percentile=0.9),
                deadline_ms=bing_mod.TERMINATION_MS,
                telemetry=telemetry,
            )

        return run

    return {"num_queries": num_queries, **off_on_cell(make_run, num_queries)}


def bench_primitives() -> dict:
    """Raw telemetry-primitive throughput (events/sec)."""
    n = 200_000
    values = [1.0 + (i % 997) for i in range(n)]

    histogram = LogHistogram()
    hist_s = best_of(lambda: [histogram.record(v) for v in values])

    registry = MetricsRegistry()
    counter = registry.counter("bench.counter")
    counter_s = best_of(lambda: [counter.inc() for _ in range(n)])

    def spans():
        tracer = Tracer(clock=ManualClock())
        for i in range(n // 10):
            tracer.complete("bench", float(i), float(i + 1), track="bench", lane=i)

    span_s = best_of(spans)
    return {
        "histogram_record_per_s": round(n / hist_s, 0),
        "counter_inc_per_s": round(n / counter_s, 0),
        "span_complete_per_s": round((n // 10) / span_s, 0),
    }


def bench_analyzer(num_spans: int = 100_000) -> dict:
    """Trace-analyzer throughput on a synthetic ``num_spans``-span trace.

    The trace mimics the sim track's shape (queue + attributed run span
    per request) so the analyzer exercises its full reconstruction path,
    and is written to disk first so the measurement includes parsing.
    """
    import tempfile

    from repro.observe import analyze_trace
    from repro.telemetry.export import write_spans_jsonl

    num_requests = num_spans // 2  # one queue + one run span each
    tracer = Tracer(clock=ManualClock())
    for i in range(num_requests):
        arrival = float(i)
        queue = 0.5 + (i % 13) * 0.25
        service = 20.0 + (i % 997) * 0.1
        contention = (i % 29) * 0.5
        start = arrival + queue
        finish = start + service + contention
        tracer.complete("queue", arrival, start, track="sim", lane=i % 64)
        tracer.complete(
            "run", start, finish, track="sim", lane=i % 64,
            queue_ms=queue, service_ms=service, contention_ms=contention,
            boost_wait_ms=0.0, stall_ms=0.0, latency_ms=finish - arrival,
            degree=1 + i % 4, boosted=i % 17 == 0,
        )
    with tempfile.TemporaryDirectory() as tmp:
        path = write_spans_jsonl(Path(tmp) / "bench.jsonl", tracer.spans)
        trace_bytes = path.stat().st_size
        analyze_s = best_of(lambda: analyze_trace(path, phi=0.99))
    return {
        "num_spans": len(tracer.spans),
        "trace_bytes": trace_bytes,
        "analyze_wall_s": round(analyze_s, 6),
        "spans_per_s": round(len(tracer.spans) / analyze_s, 0),
        "requests_per_s": round(num_requests / analyze_s, 0),
    }


def bench_attribution(scale: Scale) -> dict:
    """Simulator cost of the attribution flight recorder (on vs. off).

    No telemetry pipeline in either run — this isolates the per-quantum
    interval accounting itself, the cost paid by every instrumented run.
    """
    import numpy as np

    from repro.sim.engine import simulate

    table = bing_table(scale)
    workload = bing_mod.bing_workload(profile_size=scale.profile_size)
    num_requests = scale.num_requests * 2
    arrivals = workload.arrivals(
        num_requests, PoissonProcess(180.0), np.random.default_rng(23)
    )

    def make_run(attribution: bool):
        def run():
            simulate(
                arrivals,
                FMScheduler(table),
                cores=bing_mod.CORES,
                quantum_ms=bing_mod.QUANTUM_MS,
                spin_fraction=bing_mod.SPIN_FRACTION,
                attribution=attribution,
            )

        return run

    off_s = best_of(make_run(False))
    on_s = best_of(make_run(True))
    return {
        "num_requests": num_requests,
        "off_wall_s": round(off_s, 6),
        "on_wall_s": round(on_s, 6),
        "off_requests_per_s": round(num_requests / off_s, 1),
        "on_requests_per_s": round(num_requests / on_s, 1),
        "overhead_enabled_pct": round(100.0 * (on_s / off_s - 1.0), 2),
    }


def bench_live_plane(scale: Scale) -> dict:
    """Engine cost of the live observability plane (attached vs. not),
    plus the raw window-snapshot primitive.

    The off run is the exact seed-path engine (``live=None`` leaves one
    pointer check per completion); the acceptance bound is that the
    off cell's events/sec stays inside the committed band — i.e. the
    hook is free when the plane is absent.  The on cell prices a fully
    armed plane (windows, exemplars, detector, SLO) per completion.
    """
    import numpy as np

    from repro.observe.anomaly import ChangepointDetector
    from repro.observe.live import LivePlane
    from repro.observe.slo import SLOMonitor, SLOTarget
    from repro.observe.timeseries import TimeseriesRecorder
    from repro.sim.engine import Engine

    table = bing_table(scale)
    workload = bing_mod.bing_workload(profile_size=scale.profile_size)
    num_requests = scale.num_requests * 2
    arrivals = workload.arrivals(
        num_requests, PoissonProcess(180.0), np.random.default_rng(23)
    )

    state: dict = {}

    def make_run(with_plane: bool):
        def run():
            plane = None
            if with_plane:
                plane = LivePlane(
                    window_ms=100.0,
                    capacity=4096,
                    slo=SLOMonitor(
                        SLOTarget(percentile=0.99, threshold_ms=120.0),
                        short_window_ms=200.0,
                        long_window_ms=800.0,
                        min_samples=20,
                    ),
                    detector=ChangepointDetector(warmup=4, threshold=3.5),
                )
            engine = Engine(
                cores=bing_mod.CORES,
                scheduler=FMScheduler(table),
                quantum_ms=bing_mod.QUANTUM_MS,
                spin_fraction=bing_mod.SPIN_FRACTION,
                live=plane,
            )
            engine.run(arrivals)
            state["events"] = engine.events_processed
            if plane is not None:
                state["windows"] = len(plane.windows())

        return run

    off_s = best_of(make_run(False))
    on_s = best_of(make_run(True))

    def snapshots():
        registry = MetricsRegistry()
        recorder = TimeseriesRecorder(registry, window_ms=1.0, capacity=512)
        counter = registry.counter("bench.completions")
        histogram = registry.histogram("bench.latency_ms")
        for i in range(2000):
            counter.inc()
            histogram.record(1.0 + i % 50)
            recorder.snapshot(i + 0.5)

    snap_s = best_of(snapshots)

    return {
        "num_requests": num_requests,
        "events_processed": state["events"],
        "off_wall_s": round(off_s, 6),
        "on_wall_s": round(on_s, 6),
        "off_events_per_s": round(state["events"] / off_s, 1),
        "on_events_per_s": round(state["events"] / on_s, 1),
        "overhead_enabled_pct": round(100.0 * (on_s / off_s - 1.0), 2),
        "windows_closed": state["windows"],
        "snapshots_per_s": round(2000 / snap_s, 0),
    }


def bench_live_tail() -> dict:
    """Seeded live-tail attestations (hardware-independent).

    Two facts the observe gate pins: the overload-flip onset signature
    (the detector must flag at a stable window before the SLO breach
    floor), and replay equivalence (a plane replayed from a trace
    reproduces the live plane's attribution totals to analyze's
    numbers within 1e-6 ms).
    """
    import numpy as np

    from repro.experiments.config import TINY
    from repro.experiments.live_tail import onset_signature, run_live_tail
    from repro.observe.analyze import analyze_spans
    from repro.observe.live import LivePlane, replay_spans
    from repro.sim.engine import simulate

    plane, _ = run_live_tail(TINY)
    fault_window, flagged, breach_floor = onset_signature(plane)

    telemetry = Telemetry()
    table = bing_table(TINY)
    workload = bing_mod.bing_workload(profile_size=TINY.profile_size)
    arrivals = workload.arrivals(
        TINY.num_requests, PoissonProcess(250.0), np.random.default_rng(23)
    )
    live = LivePlane(window_ms=100.0, capacity=4096)
    simulate(
        arrivals,
        FMScheduler(table),
        cores=bing_mod.CORES,
        quantum_ms=bing_mod.QUANTUM_MS,
        spin_fraction=bing_mod.SPIN_FRACTION,
        telemetry=telemetry,
        live=live,
    )
    spans = telemetry.tracer.spans
    replayed = replay_spans(spans)
    track = analyze_spans(spans, phi=0.99).tracks["sim"]
    totals = replayed.attribution_totals()
    max_diff = max(
        abs(totals[component] - entry["overall_mean_ms"] * track.count)
        for component, entry in track.components.items()
    )
    return {
        "scale": "tiny",
        "fault_window": fault_window,
        "flagged_window": flagged,
        "breach_floor_window": breach_floor,
        "flag_leads_breach": (
            fault_window is not None
            and flagged is not None
            and breach_floor is not None
            and fault_window <= flagged < breach_floor
        ),
        "replay_max_abs_diff_ms": max_diff,
        "replay_matches_analyze": max_diff < 1e-6,
    }


def bench_engine(scale: Scale) -> dict:
    """Engine hot-path trajectory: events/sec, reference A/B, sweep scaling.

    The A/B against :mod:`repro.sim._baseline` asserts bit-identical
    results before reporting any speedup — a fast engine that drifts is
    a broken engine.  The sweep cell fans a small policy x load grid
    across 4 worker processes; ``cpu_count`` is recorded because the
    achievable speedup is bounded by the host (a single-core CI runner
    will — correctly — report ~1x).
    """
    import os

    import numpy as np

    from repro.experiments.runner import run_sweep
    from repro.parallel import run_sweep_parallel
    from repro.schedulers import FixedScheduler
    from repro.sim._baseline import simulate_baseline
    from repro.sim.engine import Engine

    table = bing_table(scale)
    workload = bing_mod.bing_workload(profile_size=scale.profile_size)
    num_requests = scale.num_requests * 2
    # Saturating load: deep backlogs and large running sets are where
    # the hot path earns (or loses) its keep.
    rps = 600.0
    arrivals = workload.arrivals(
        num_requests, PoissonProcess(rps), np.random.default_rng(42)
    )

    state: dict = {}

    def run_optimized():
        engine = Engine(
            cores=bing_mod.CORES,
            scheduler=FMScheduler(table),
            quantum_ms=bing_mod.QUANTUM_MS,
            spin_fraction=bing_mod.SPIN_FRACTION,
        )
        state["result"] = engine.run(arrivals)
        state["events"] = engine.events_processed

    def run_reference():
        state["reference"] = simulate_baseline(
            arrivals,
            FMScheduler(table),
            cores=bing_mod.CORES,
            quantum_ms=bing_mod.QUANTUM_MS,
            spin_fraction=bing_mod.SPIN_FRACTION,
        )

    new_s = best_of(run_optimized)
    old_s = best_of(run_reference)
    result, reference = state["result"], state["reference"]
    bit_identical = (
        len(result.records) == len(reference.records)
        and all(
            a.finish_ms == b.finish_ms and a.core_time_ms == b.core_time_ms
            for a, b in zip(result.records, reference.records)
        )
        and result.tail_latency_ms(0.99) == reference.tail_latency_ms(0.99)
        and result.mean_latency_ms() == reference.mean_latency_ms()
    )
    if not bit_identical:
        raise AssertionError(
            "optimized engine diverged from repro.sim._baseline — "
            "speedups are meaningless until results match bit for bit"
        )

    sweep_schedulers = {"FIX-4": FixedScheduler(4), "FM": FMScheduler(table)}
    sweep_rps = [120.0, 240.0, 420.0, 600.0]
    sweep_workers = 4
    sweep_kwargs = dict(
        cores=bing_mod.CORES,
        num_requests=scale.num_requests,
        quantum_ms=bing_mod.QUANTUM_MS,
        spin_fraction=bing_mod.SPIN_FRACTION,
        seed=42,
        repeats=2,
    )
    started = time.perf_counter()
    serial = run_sweep(sweep_schedulers, workload, sweep_rps, **sweep_kwargs)
    serial_s = time.perf_counter() - started
    started = time.perf_counter()
    parallel = run_sweep_parallel(
        sweep_schedulers, workload, sweep_rps, workers=sweep_workers, **sweep_kwargs
    )
    parallel_s = time.perf_counter() - started
    sweep_identical = all(
        serial[name].tail_ms == parallel[name].tail_ms
        and serial[name].mean_ms == parallel[name].mean_ms
        and [h._buckets for h in serial[name].histograms]
        == [h._buckets for h in parallel[name].histograms]
        for name in serial.policies()
    )
    if not sweep_identical:
        raise AssertionError("parallel sweep diverged from the serial runner")

    # --- mega-sweep machinery (DESIGN.md §14) -------------------------
    # (a) Vectorized engine A/B on an overloaded FIX-4 cell: the large
    # running set is where numpy batching pays; the gate demands >= 3x
    # and a max per-record latency divergence <= 1e-9 ms (it is 0.0).
    import tracemalloc

    from repro.experiments.runner import stream_policy
    from repro.parallel import run_sharded_sweep
    from repro.sim.vector import VectorEngine

    # Fixed-size cell (not scale-dependent): the speedup is a function
    # of running-set size, and this configuration drives it deep into
    # the hundreds where the numpy batches dominate; scaling it with
    # --scale would just move the measured ratio around.
    cell_requests, cell_rps, cell_cores = 3000, 900.0, 8
    cell_arrivals = workload.arrivals(
        cell_requests, PoissonProcess(cell_rps), np.random.default_rng(7)
    )

    def run_cell(engine_cls, key):
        engine = engine_cls(
            cores=cell_cores,
            scheduler=FixedScheduler(4),
            quantum_ms=bing_mod.QUANTUM_MS,
            spin_fraction=bing_mod.SPIN_FRACTION,
        )
        state[key] = engine.run(cell_arrivals)
        state[key + "_events"] = engine.events_processed

    cell_scalar_s = best_of(lambda: run_cell(Engine, "cell_scalar"), repeats=2)
    cell_vector_s = best_of(lambda: run_cell(VectorEngine, "cell_vector"), repeats=2)
    cell_diff = max(
        abs(a.latency_ms - b.latency_ms)
        for a, b in zip(state["cell_scalar"].records, state["cell_vector"].records)
    )
    if cell_diff > 1e-9:
        raise AssertionError(
            f"vectorized engine diverged from scalar by {cell_diff} ms "
            "(> 1e-9) — speedups are meaningless until results match"
        )

    # (b) Streamed mega-run memory: arrivals generated lazily and
    # completions folded into a StreamSummary, so traced peak memory
    # must stay O(running set) — megabytes, not the O(n) hundreds a
    # materialized trace plus records would need.  Traced at two sizes:
    # a flat peak across a 5x request-count jump is the O(1)-in-n
    # attestation (tracemalloc costs ~6x wall, so the peaks come from
    # bounded runs rather than one giant one).
    def traced_stream(n):
        tracemalloc.start()
        started = time.perf_counter()
        summary = stream_policy(
            FixedScheduler(4),
            workload,
            rps=120.0,
            cores=bing_mod.CORES,
            num_requests=n,
            quantum_ms=bing_mod.QUANTUM_MS,
            seed=42,
            spin_fraction=bing_mod.SPIN_FRACTION,
        )
        wall = time.perf_counter() - started
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert summary.count == n
        return wall, peak

    stream_small = scale.num_requests * 20
    stream_requests = scale.num_requests * 100
    _, stream_small_peak = traced_stream(stream_small)
    stream_s, stream_peak = traced_stream(stream_requests)
    peak_growth = stream_peak / stream_small_peak
    if peak_growth > 2.0:
        raise AssertionError(
            f"streamed peak memory grew {peak_growth:.1f}x over a 5x "
            "request-count jump — no longer O(running set)"
        )

    # (c) Sharded orchestration: the merged per-cell summaries must be
    # bit-identical for any worker count (workers is a wall-clock knob;
    # shards is the results knob).
    shard_kwargs = dict(
        cores=bing_mod.CORES,
        num_requests=scale.num_requests,
        shards=4,
        quantum_ms=bing_mod.QUANTUM_MS,
        seed=42,
        spin_fraction=bing_mod.SPIN_FRACTION,
    )
    started = time.perf_counter()
    sharded_serial = run_sharded_sweep(
        sweep_schedulers, workload, [240.0, 600.0], workers=1, **shard_kwargs
    )
    sharded_serial_s = time.perf_counter() - started
    started = time.perf_counter()
    sharded_pooled = run_sharded_sweep(
        sweep_schedulers, workload, [240.0, 600.0], workers=4, **shard_kwargs
    )
    sharded_pooled_s = time.perf_counter() - started
    shards_identical = all(
        a.histogram.state() == b.histogram.state() and a.as_dict() == b.as_dict()
        for name in sharded_serial.policies()
        for a, b in zip(sharded_serial[name], sharded_pooled[name])
    )
    if not shards_identical:
        raise AssertionError("sharded sweep results depend on worker count")

    return {
        "num_requests": num_requests,
        "rps": rps,
        "cores": bing_mod.CORES,
        "cpu_count": os.cpu_count(),
        "single_process": {
            "events_processed": state["events"],
            "wall_s": round(new_s, 6),
            "events_per_s": round(state["events"] / new_s, 1),
            "requests_per_s": round(num_requests / new_s, 1),
            "reference_wall_s": round(old_s, 6),
            "reference_events_per_s": round(state["events"] / old_s, 1),
            "speedup_vs_reference": round(old_s / new_s, 3),
            "bit_identical_to_reference": bit_identical,
        },
        "sweep": {
            "policies": sorted(sweep_schedulers),
            "rps_values": sweep_rps,
            "repeats": sweep_kwargs["repeats"],
            "cells": len(sweep_schedulers) * len(sweep_rps) * sweep_kwargs["repeats"],
            "workers": sweep_workers,
            "serial_wall_s": round(serial_s, 6),
            "parallel_wall_s": round(parallel_s, 6),
            "parallel_speedup": round(serial_s / parallel_s, 3),
            "results_identical": sweep_identical,
        },
        "mega": {
            "cell": {
                "num_requests": cell_requests,
                "rps": cell_rps,
                "cores": cell_cores,
                "scheduler": "FIX-4",
                "scalar_wall_s": round(cell_scalar_s, 6),
                "scalar_events_per_s": round(
                    state["cell_scalar_events"] / cell_scalar_s, 1
                ),
                "vector_wall_s": round(cell_vector_s, 6),
                "vector_events_per_s": round(
                    state["cell_vector_events"] / cell_vector_s, 1
                ),
                "vector_speedup": round(cell_scalar_s / cell_vector_s, 3),
                "max_abs_latency_diff_ms": cell_diff,
                "vector_identical": cell_diff == 0.0,
            },
            "stream": {
                "num_requests": stream_requests,
                "rps": 120.0,
                "wall_s": round(stream_s, 6),
                "requests_per_s": round(stream_requests / stream_s, 1),
                "peak_traced_mb": round(stream_peak / 2**20, 3),
                "small_run_requests": stream_small,
                "small_run_peak_traced_mb": round(stream_small_peak / 2**20, 3),
                "peak_growth_over_5x_requests": round(peak_growth, 3),
            },
            "sharded": {
                "policies": sorted(sweep_schedulers),
                "rps_values": [240.0, 600.0],
                "num_requests": shard_kwargs["num_requests"],
                "shards": shard_kwargs["shards"],
                "serial_wall_s": round(sharded_serial_s, 6),
                "pooled_wall_s": round(sharded_pooled_s, 6),
                "pooled_speedup": round(sharded_serial_s / sharded_pooled_s, 3),
                "workers_identical": shards_identical,
            },
        },
    }


def build_engine_report(scale: Scale) -> dict:
    return {
        "benchmark": "engine",
        "scale": scale.name,
        "python": platform.python_version(),
        "timing_repeats": TIMING_REPEATS,
        **bench_engine(scale),
        "notes": (
            "single_process is a saturated FM/Bing run; events_per_s "
            "counts events drained from the queue (incl. stale "
            "tentative completions). reference is the frozen pre-"
            "optimization engine (repro.sim._baseline) run on the "
            "same trace — results are asserted bit-identical before "
            "any speedup is reported. sweep compares run_sweep vs "
            "run_sweep_parallel on the same grid; achievable "
            "parallel_speedup is capped by cpu_count. mega is the "
            "DESIGN.md §14 machinery: mega.cell A/Bs the "
            "vectorized engine against the scalar one on an "
            "overloaded FIX-4 cell (gated >= 3x, <= 1e-9 ms "
            "divergence), mega.stream traces peak memory of "
            "streamed runs at two sizes (a flat peak across the 5x "
            "jump attests O(running set) memory), and mega.sharded "
            "attests the sharded sweep is bit-identical for any "
            "worker count."
        ),
    }


def build_replication_report(scale: Scale) -> dict:
    # Local import: the module reuses the replication-phase experiment
    # helpers, which nothing else here needs.
    from bench_replication import build_report

    return build_report(scale)


def build_hetero_report(scale: Scale) -> dict:
    # Local import: the module reuses the hetero-energy experiment
    # helpers, which nothing else here needs.
    from bench_hetero import build_report

    return build_report(scale)


def build_diff_report(scale: Scale) -> dict:
    # Local import: the module reuses the run-diff experiment helpers.
    from bench_diff import build_report

    return build_report(scale)


def build_telemetry_report(scale: Scale) -> dict:
    return {
        "benchmark": "telemetry",
        "scale": scale.name,
        "python": platform.python_version(),
        "timing_repeats": TIMING_REPEATS,
        "sim": bench_sim(scale),
        "search": bench_search(scale),
        "cluster": bench_cluster(scale),
        "primitives": bench_primitives(),
        "notes": (
            "off runs pass an explicit Telemetry(enabled=False): the disabled "
            "path is the instrumented build with every pipeline resolved to "
            "None. Acceptance bound: sim off_units_per_s within 3% of the "
            "pre-telemetry baseline."
        ),
    }


def build_observe_report(scale: Scale) -> dict:
    return {
        "benchmark": "observe",
        "scale": scale.name,
        "python": platform.python_version(),
        "timing_repeats": TIMING_REPEATS,
        "analyzer": bench_analyzer(),
        "attribution": bench_attribution(scale),
        "live_plane": bench_live_plane(scale),
        "live_tail": bench_live_tail(),
        "notes": (
            "analyzer times load_trace + analyze on a synthetic JSONL "
            "trace shaped like the sim track (attributed run spans). "
            "attribution compares full simulate() runs with the flight "
            "recorder on vs. off, no telemetry pipeline in either. "
            "live_plane compares engine runs with a fully armed "
            "LivePlane attached vs. live=None (the seed path), plus the "
            "raw TimeseriesRecorder.snapshot primitive. live_tail is "
            "seeded and hardware-independent: the overload-flip onset "
            "signature and the replay-vs-analyze attribution "
            "equivalence, both gated by check_observe_regression.py."
        ),
    }


#: The bench sections, in ``--only all`` execution order.  Each maps to
#: (description, args attribute holding the output path, builder).
SECTIONS = {
    "engine": ("engine hot path + mega-sweep machinery", "engine_output", build_engine_report),
    "replication": ("adaptive replication controller", "replication_output", build_replication_report),
    "hetero": ("big/little pools + energy accounting", "hetero_output", build_hetero_report),
    "telemetry": ("telemetry on/off overhead + primitives", "output", build_telemetry_report),
    "observe": ("trace analyzer, flight recorder, live plane", "observe_output", build_observe_report),
    "diff": ("run ledger + repro diff attestations", "diff_output", build_diff_report),
}


def embed_ledger_entry(report: dict, section: str) -> None:
    """Attach the run-over-run ``"ledger"`` entry (DESIGN.md §15).

    The entry's metrics are the report's numeric scalars flattened to
    dotted paths (booleans as 0/1, so attestation flips surface as
    deltas); sections that curate their own entry are left alone.
    """
    if "ledger" in report:
        return
    import math

    from repro.observe.ledger import config_fingerprint

    metrics: dict[str, float] = {}

    def walk(node, prefix: str) -> None:
        if isinstance(node, dict):
            for key, value in node.items():
                walk(value, f"{prefix}{key}.")
        elif isinstance(node, bool):
            metrics[prefix[:-1]] = 1.0 if node else 0.0
        elif isinstance(node, (int, float)) and math.isfinite(node):
            metrics[prefix[:-1]] = float(node)

    walk(report, "")
    config = {"benchmark": section, "scale": report.get("scale", "")}
    report["ledger"] = {
        "run_id": "",
        "card": {
            "name": f"bench:{section}",
            "fingerprint": config_fingerprint(config),
            "seed": 0,
            "scheduler": "",
            "workload": "",
            "scale": report.get("scale", ""),
            "config": config,
            "git_rev": "",
            "created_s": 0.0,
        },
        "artifacts": {
            "histograms": {},
            "attribution": {},
            "metrics": metrics,
            "energy": {},
            "events": [],
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=["tiny", "quick", "full"], default=None,
        help="fidelity preset (default: $REPRO_SCALE or 'quick')",
    )
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_telemetry.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "--observe-output", type=Path,
        default=REPO_ROOT / "BENCH_observe.json",
        help="where to write the observe-layer JSON report",
    )
    parser.add_argument(
        "--engine-output", type=Path,
        default=REPO_ROOT / "BENCH_engine.json",
        help="where to write the engine hot-path JSON report",
    )
    parser.add_argument(
        "--replication-output", type=Path,
        default=REPO_ROOT / "BENCH_replication.json",
        help="where to write the replication-controller JSON report",
    )
    parser.add_argument(
        "--hetero-output", type=Path,
        default=REPO_ROOT / "BENCH_hetero.json",
        help="where to write the heterogeneous-engine JSON report",
    )
    parser.add_argument(
        "--diff-output", type=Path,
        default=REPO_ROOT / "BENCH_diff.json",
        help="where to write the diff-engine JSON report",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="shorthand for --scale quick (the CI perf-smoke preset)",
    )
    parser.add_argument(
        "--only",
        default="all",
        help=(
            "comma-separated bench sections to run, or 'all' "
            f"(sections: {', '.join(SECTIONS)}; default: all)"
        ),
    )
    parser.add_argument(
        "--list", action="store_true",
        help="list the bench sections and exit",
    )
    parser.add_argument(
        "--ledger", type=Path, default=None, metavar="DIR",
        help="append each section's run entry to this run ledger",
    )
    args = parser.parse_args(argv)
    if args.list:
        for name, (description, output_attr, _) in SECTIONS.items():
            default = parser.get_default(output_attr)
            print(f"{name:12s} {description} -> {Path(default).name}")
        return 0
    if args.quick and args.scale and args.scale != "quick":
        parser.error("--quick conflicts with --scale " + args.scale)
    if args.quick:
        args.scale = "quick"
    if args.scale:
        from repro.experiments.config import FULL, QUICK, TINY

        scale = {"tiny": TINY, "quick": QUICK, "full": FULL}[args.scale]
    else:
        scale = default_scale()

    if args.only.strip() == "all":
        selected = list(SECTIONS)
    else:
        selected = [name.strip() for name in args.only.split(",") if name.strip()]
        unknown = [name for name in selected if name not in SECTIONS]
        if unknown:
            parser.error(
                f"unknown section(s): {', '.join(unknown)} "
                f"(choose from: {', '.join(SECTIONS)}, all)"
            )

    for name in selected:
        _, output_attr, build = SECTIONS[name]
        print(f"\nrunning {name} benches at scale={scale.name} ...")
        report = build(scale)
        embed_ledger_entry(report, name)
        output = getattr(args, output_attr)
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(json.dumps(report, indent=2))
        print(f"\nwrote {output}")
        if args.ledger is not None:
            from repro.observe.ledger import RunEntry, RunLedger

            run_id = RunLedger(args.ledger).append(
                RunEntry.from_dict(report["ledger"])
            )
            print(f"[ledger: {run_id} -> {args.ledger}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
