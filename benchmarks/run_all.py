"""Telemetry perf trajectory: off-vs-on benches -> BENCH_telemetry.json.

Runs the simulator, search-executor, and cluster benches twice each —
telemetry explicitly disabled vs enabled — plus microbenchmarks of the
telemetry primitives themselves, and writes the headline numbers
(events/sec, p50/p99, overhead %) to ``BENCH_telemetry.json`` at the
repo root so future PRs have a baseline to regress against.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py [--scale quick] [--output PATH]

The acceptance bound for this trajectory is a <3% simulator slowdown
with telemetry disabled (the "off" run *is* the instrumented build with
its pipeline resolved to None, so the delta vs the pre-telemetry
baseline is the cost of the ``is None`` guards).
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.cluster.hedging import HedgePolicy
from repro.cluster.simulation import simulate_cluster_robust
from repro.experiments.config import Scale, default_scale
from repro.experiments.tables import bing_table
from repro.experiments.runner import run_policy
from repro.schedulers import FMScheduler
from repro.search.corpus import generate_corpus, generate_query_log
from repro.search.executor import SearchEngine
from repro.search.index import InvertedIndex
from repro.search.query import parse_query
from repro.telemetry import LogHistogram, MetricsRegistry, Telemetry, Tracer
from repro.telemetry.clock import ManualClock
from repro.workloads import bing as bing_mod
from repro.workloads.arrivals import PoissonProcess

REPO_ROOT = Path(__file__).resolve().parent.parent
TIMING_REPEATS = 3


def best_of(fn, repeats: int = TIMING_REPEATS) -> float:
    """Best wall time over ``repeats`` calls (sheds scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def off_on_cell(make_run, units: int) -> dict:
    """Time ``make_run(telemetry)`` with telemetry off vs on.

    ``make_run`` returns a zero-arg runner bound to the given pipeline;
    ``units`` is the work count (requests/queries) per run.
    """
    off_tel = Telemetry(enabled=False)
    on_tel = Telemetry()
    off_s = best_of(make_run(off_tel))
    on_s = best_of(make_run(on_tel))
    spans = len(on_tel.tracer.spans)
    cell = {
        "off_wall_s": round(off_s, 6),
        "on_wall_s": round(on_s, 6),
        "off_units_per_s": round(units / off_s, 1),
        "on_units_per_s": round(units / on_s, 1),
        "overhead_enabled_pct": round(100.0 * (on_s / off_s - 1.0), 2),
        "spans": spans,
        "span_events_per_s": round(spans / on_s, 1),
    }
    for name, histogram in on_tel.metrics.histograms.items():
        if name.endswith("latency_ms"):
            cell["p50_ms"] = round(histogram.percentile(0.50), 3)
            cell["p99_ms"] = round(histogram.percentile(0.99), 3)
    return cell


def bench_sim(scale: Scale) -> dict:
    table = bing_table(scale)
    workload = bing_mod.bing_workload(profile_size=scale.profile_size)
    num_requests = scale.num_requests * 2

    def make_run(telemetry: Telemetry):
        def run():
            telemetry.reset()
            run_policy(
                FMScheduler(table),
                workload,
                rps=180.0,
                cores=bing_mod.CORES,
                num_requests=num_requests,
                quantum_ms=bing_mod.QUANTUM_MS,
                spin_fraction=bing_mod.SPIN_FRACTION,
                telemetry=telemetry,
            )

        return run

    return {"num_requests": num_requests, **off_on_cell(make_run, num_requests)}


def bench_search(scale: Scale) -> dict:
    documents = generate_corpus(max(200, scale.num_requests), seed=7)
    index = InvertedIndex.build(documents, num_segments=8)
    queries = [
        parse_query(text)
        for text in generate_query_log(max(100, scale.num_requests // 2), seed=11)
    ]

    def make_run(telemetry: Telemetry):
        engine = SearchEngine(index, telemetry=telemetry)

        def run():
            telemetry.reset()
            for query in queries:
                engine.execute(query)

        return run

    return {"num_queries": len(queries), **off_on_cell(make_run, len(queries))}


def bench_cluster(scale: Scale) -> dict:
    table = bing_table(scale)
    workload = bing_mod.bing_workload(profile_size=scale.profile_size)
    num_queries = scale.num_requests

    def make_run(telemetry: Telemetry):
        def run():
            telemetry.reset()
            simulate_cluster_robust(
                scheduler_factory=lambda: FMScheduler(table, boosting=False),
                workload=workload,
                num_servers=4,
                num_queries=num_queries,
                process=PoissonProcess(180.0),
                cores=bing_mod.CORES,
                quantum_ms=bing_mod.QUANTUM_MS,
                spin_fraction=bing_mod.SPIN_FRACTION,
                seed=71,
                hedge=HedgePolicy(delay_percentile=0.9),
                deadline_ms=bing_mod.TERMINATION_MS,
                telemetry=telemetry,
            )

        return run

    return {"num_queries": num_queries, **off_on_cell(make_run, num_queries)}


def bench_primitives() -> dict:
    """Raw telemetry-primitive throughput (events/sec)."""
    n = 200_000
    values = [1.0 + (i % 997) for i in range(n)]

    histogram = LogHistogram()
    hist_s = best_of(lambda: [histogram.record(v) for v in values])

    registry = MetricsRegistry()
    counter = registry.counter("bench.counter")
    counter_s = best_of(lambda: [counter.inc() for _ in range(n)])

    def spans():
        tracer = Tracer(clock=ManualClock())
        for i in range(n // 10):
            tracer.complete("bench", float(i), float(i + 1), track="bench", lane=i)

    span_s = best_of(spans)
    return {
        "histogram_record_per_s": round(n / hist_s, 0),
        "counter_inc_per_s": round(n / counter_s, 0),
        "span_complete_per_s": round((n // 10) / span_s, 0),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=["tiny", "quick", "full"], default=None,
        help="fidelity preset (default: $REPRO_SCALE or 'quick')",
    )
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_telemetry.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    if args.scale:
        from repro.experiments.config import FULL, QUICK, TINY

        scale = {"tiny": TINY, "quick": QUICK, "full": FULL}[args.scale]
    else:
        scale = default_scale()

    print(f"running telemetry benches at scale={scale.name} ...")
    report = {
        "benchmark": "telemetry",
        "scale": scale.name,
        "python": platform.python_version(),
        "timing_repeats": TIMING_REPEATS,
        "sim": bench_sim(scale),
        "search": bench_search(scale),
        "cluster": bench_cluster(scale),
        "primitives": bench_primitives(),
    }
    report["notes"] = (
        "off runs pass an explicit Telemetry(enabled=False): the disabled "
        "path is the instrumented build with every pipeline resolved to "
        "None. Acceptance bound: sim off_units_per_s within 3% of the "
        "pre-telemetry baseline."
    )
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
