"""Section 7 TCO claim: servers saved at a 120 ms tail target.

Max sustainable per-server RPS for Adaptive vs FM and the implied
fleet-size reduction (the paper reports 42 % fewer servers).
"""

from __future__ import annotations

from repro.experiments.figures import tco_capacity

from conftest import run_figure


def test_tco_capacity(benchmark, scale, save_figure):
    """Regenerate the capacity-planning analysis."""
    result = run_figure(benchmark, tco_capacity, scale, save_figure)
    assert result.tables
