"""CI gate: fail when the run ledger / diff engine regresses.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py --quick --only diff \
        --diff-output bench_diff_fresh.json
    python benchmarks/check_diff_regression.py bench_diff_fresh.json

Five checks, in decreasing order of hardware independence:

1. **Exact null** (seeded, hardware-independent): a run self-diffed
   through a ledger round-trip must report ``identical`` and a fully
   null diff (zero deltas, zero significant verdicts), and two
   different runs must NOT take the identical short circuit.  If this
   dies, every "no significant change" verdict the diff engine emits
   is untrustworthy.
2. **Significance + explanation** (seeded, hardware-independent): the
   FM-vs-FIX-3 p99 delta at 45 RPS x 500 requests must be flagged
   significant and the explanation ranking must put contention_ms
   first — FIX admits every request immediately, so its
   over-subscription cost is booked as processor-sharing contention
   (DESIGN.md §15).
3. **Determinism** (seeded, hardware-independent): diffing the same
   entries twice, and entries rebuilt under ``--workers 2``, must
   serialize byte-identically.  Diffs are functions of (entries,
   seed), never of wall clock or process count.
4. **Throughput** (cross-run, wide band): ``diffs_per_s`` and
   ``ledger_roundtrips_per_s`` must each be within ``--threshold``
   (default 40%) of the committed ``BENCH_diff.json``.
5. **Run-over-run ledger diff** (informational): the fresh report's
   embedded ledger entry is diffed against the committed baseline's
   via ``gatelib.compare_to_baseline`` — the printed deltas are the
   trajectory, no floor beyond check 4.

Exit code 0 = pass, 1 = regression, 2 = bad input.
"""

from __future__ import annotations

from gatelib import (
    compare_to_baseline,
    fail,
    get_path,
    load_report_pair,
    make_parser,
    throughput_floor_check,
    verdict,
)


def main(argv: list[str] | None = None) -> int:
    parser = make_parser(__doc__, "BENCH_diff.json", threshold=0.40)
    args = parser.parse_args(argv)
    report, baseline = load_report_pair(args.report, args.baseline)

    failed = False

    null_test = get_path(report, args.report, "null_test")
    print(
        f"self-diff: identical={null_test.get('self_identical')} "
        f"null={null_test.get('self_null')} "
        f"max |delta|={float(null_test.get('self_max_abs_delta_ms', float('inf'))):g} ms; "
        f"cross identical={null_test.get('cross_identical')}"
    )
    if not (null_test.get("self_identical") and null_test.get("self_null")):
        failed = fail(
            "self-diff of a ledger round-trip is no longer an exact null"
        )
    if null_test.get("cross_identical", True):
        failed = fail(
            "two different runs took the identical-state short circuit"
        )

    versus = get_path(report, args.report, "versus")
    print(
        f"FM vs FIX-3 at {versus.get('rps')} RPS x "
        f"{versus.get('num_requests')} requests: p99 delta "
        f"{float(versus.get('p99_delta_ms', 0)):+.1f} ms "
        f"(significant={versus.get('p99_significant')}), top phase "
        f"{versus.get('top_phase')} at "
        f"{float(versus.get('top_phase_share', 0)):.0%}"
    )
    if not versus.get("p99_significant", False):
        failed = fail(
            "the FM-vs-FIX-3 p99 delta is no longer statistically "
            "significant at the attestation size"
        )
    if versus.get("top_phase") != "contention_ms":
        failed = fail(
            "the explanation ranking no longer puts contention_ms first "
            f"(got {versus.get('top_phase')!r})"
        )

    determinism = get_path(report, args.report, "determinism")
    print(
        f"determinism: repeat={determinism.get('repeat_identical')} "
        f"workers entries={determinism.get('workers_identical')} "
        f"workers diff={determinism.get('workers_diff_identical')}"
    )
    for key, message in (
        ("repeat_identical", "repeated diff_runs calls diverged"),
        ("workers_identical", "ledger entries depend on --workers count"),
        ("workers_diff_identical", "diff output depends on --workers count"),
    ):
        if not determinism.get(key, False):
            failed = fail(message)

    for metric, unit in (
        ("diffs_per_s", " diffs/s"),
        ("ledger_roundtrips_per_s", " ops/s"),
    ):
        fresh = float(get_path(report, args.report, "throughput", metric))
        committed = float(get_path(baseline, args.baseline, "throughput", metric))
        failed |= throughput_floor_check(
            metric, fresh, committed, args.threshold, unit=unit
        )

    failed |= compare_to_baseline(report, baseline, label="diff run-over-run")

    return verdict(failed)


if __name__ == "__main__":
    raise SystemExit(main())
