"""Figure 10: FM vs Adaptive and Request-Clairvoyant; boosting ablation.

The prior-state-of-the-art comparison (paper: -32 % vs Adaptive and
-22 % vs RC at 40 RPS) plus the selective thread-priority boosting panel.
"""

from __future__ import annotations

from repro.experiments.figures import fig10_state_of_the_art

from conftest import run_figure


def test_fig10_state_of_art(benchmark, scale, save_figure):
    """Regenerate Figure 10(a,b,c)."""
    result = run_figure(benchmark, fig10_state_of_the_art, scale, save_figure)
    assert result.tables
