"""CI gate: fail when the adaptive replication controller regresses.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py --quick --only replication \
        --replication-output bench_replication_fresh.json
    python benchmarks/check_replication_regression.py bench_replication_fresh.json

Three checks, in decreasing order of hardware independence:

1. **Quality** (seeded, hardware-independent): at every load point of
   the phase diagram the adaptive p99 must stay within ``--max-ratio``
   (default 1.10) of the best static policy — the headline acceptance
   bound of the ``replication-phase`` experiment.
2. **Determinism** (seeded, hardware-independent): the overload-flip
   replay must attest ``deterministic_replay`` and at least one
   brownout entry; a flip that no longer browns out means the
   burn-rate escalation path is dead.
3. **Throughput** (cross-run, wide band): the observe-path
   ``observations_per_s`` must be within ``--threshold`` (default 30%)
   of the committed ``BENCH_replication.json``, with slack for runner
   hardware variance.

Exit code 0 = pass, 1 = regression, 2 = bad input.
"""

from __future__ import annotations

from gatelib import (
    compare_to_baseline,
    fail,
    get_path,
    load_report_pair,
    make_parser,
    throughput_floor_check,
    verdict,
)


def main(argv: list[str] | None = None) -> int:
    parser = make_parser(__doc__, "BENCH_replication.json", threshold=0.30)
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=1.10,
        help="max tolerated adaptive p99 / best-static p99 per load point",
    )
    args = parser.parse_args(argv)
    report, baseline = load_report_pair(args.report, args.baseline)

    failed = False

    points = get_path(report, args.report, "phase_diagram", "points")
    for point in points:
        rho = point.get("rho", "?")
        ratio = float(point.get("adaptive_vs_best_static", float("inf")))
        marker = "ok" if ratio <= args.max_ratio else "FAIL"
        print(
            f"rho={rho}: adaptive/best-static p99 = {ratio:.3f} "
            f"(limit {args.max_ratio:.2f}) {marker}"
        )
        if ratio > args.max_ratio:
            failed = fail(
                f"adaptive controller lost to the best static policy "
                f"by {ratio:.3f}x at rho={rho}"
            )

    flip = get_path(report, args.report, "flip")
    print(
        f"flip: {flip.get('transitions', '?')} transitions, "
        f"{flip.get('brownouts', '?')} brownout(s), "
        f"deterministic_replay={flip.get('deterministic_replay')}"
    )
    if not flip.get("deterministic_replay", False):
        failed = fail("flip replay is not bit-identical")
    if int(flip.get("brownouts", 0)) < 1:
        failed = fail(
            "the overload flip no longer enters brownout "
            "(burn-rate escalation path is dead)"
        )

    fresh = float(
        get_path(report, args.report, "observe_path", "observations_per_s")
    )
    committed = float(
        get_path(baseline, args.baseline, "observe_path", "observations_per_s")
    )
    failed |= throughput_floor_check(
        "observe path", fresh, committed, args.threshold
    )

    failed |= compare_to_baseline(report, baseline, label="replication run-over-run")

    return verdict(failed)


if __name__ == "__main__":
    raise SystemExit(main())
