"""CI gate: fail when the adaptive replication controller regresses.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py --quick --only replication \
        --replication-output bench_replication_fresh.json
    python benchmarks/check_replication_regression.py bench_replication_fresh.json

Three checks, in decreasing order of hardware independence:

1. **Quality** (seeded, hardware-independent): at every load point of
   the phase diagram the adaptive p99 must stay within ``--max-ratio``
   (default 1.10) of the best static policy — the headline acceptance
   bound of the ``replication-phase`` experiment.
2. **Determinism** (seeded, hardware-independent): the overload-flip
   replay must attest ``deterministic_replay`` and at least one
   brownout entry; a flip that no longer browns out means the
   burn-rate escalation path is dead.
3. **Throughput** (cross-run, wide band): the observe-path
   ``observations_per_s`` must be within ``--threshold`` (default 30%)
   of the committed ``BENCH_replication.json``, with slack for runner
   hardware variance.

Exit code 0 = pass, 1 = regression, 2 = bad input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _get(report: dict, path: Path, *keys):
    node = report
    try:
        for key in keys:
            node = node[key]
    except (KeyError, TypeError):
        dotted = ".".join(keys)
        print(f"error: {path} has no {dotted}", file=sys.stderr)
        raise SystemExit(2)
    return node


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "report", type=Path, help="fresh BENCH_replication.json to validate"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / "BENCH_replication.json",
        help="committed baseline report (default: repo-root BENCH_replication.json)",
    )
    parser.add_argument(
        "--max-ratio",
        type=float,
        default=1.10,
        help="max tolerated adaptive p99 / best-static p99 per load point",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="max tolerated fractional observe-path throughput drop (default 0.30)",
    )
    args = parser.parse_args(argv)

    try:
        report = json.loads(args.report.read_text())
        baseline = json.loads(args.baseline.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    failed = False

    points = _get(report, args.report, "phase_diagram", "points")
    for point in points:
        rho = point.get("rho", "?")
        ratio = float(point.get("adaptive_vs_best_static", float("inf")))
        marker = "ok" if ratio <= args.max_ratio else "FAIL"
        print(
            f"rho={rho}: adaptive/best-static p99 = {ratio:.3f} "
            f"(limit {args.max_ratio:.2f}) {marker}"
        )
        if ratio > args.max_ratio:
            print(
                f"FAIL: adaptive controller lost to the best static policy "
                f"by {ratio:.3f}x at rho={rho}",
                file=sys.stderr,
            )
            failed = True

    flip = _get(report, args.report, "flip")
    print(
        f"flip: {flip.get('transitions', '?')} transitions, "
        f"{flip.get('brownouts', '?')} brownout(s), "
        f"deterministic_replay={flip.get('deterministic_replay')}"
    )
    if not flip.get("deterministic_replay", False):
        print("FAIL: flip replay is not bit-identical", file=sys.stderr)
        failed = True
    if int(flip.get("brownouts", 0)) < 1:
        print(
            "FAIL: the overload flip no longer enters brownout "
            "(burn-rate escalation path is dead)",
            file=sys.stderr,
        )
        failed = True

    fresh = float(_get(report, args.report, "observe_path", "observations_per_s"))
    committed = float(
        _get(baseline, args.baseline, "observe_path", "observations_per_s")
    )
    floor = committed * (1.0 - args.threshold)
    drop = 1.0 - fresh / committed
    print(
        f"observe path: fresh={fresh:,.0f}/s committed={committed:,.0f}/s "
        f"({'-' if drop > 0 else '+'}{abs(drop):.1%}; floor at "
        f"-{args.threshold:.0%} = {floor:,.0f}/s)"
    )
    if fresh < floor:
        print(
            f"FAIL: observe-path throughput regressed {drop:.1%} "
            f"(> {args.threshold:.0%} threshold)",
            file=sys.stderr,
        )
        failed = True

    if failed:
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
