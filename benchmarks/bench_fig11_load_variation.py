"""Figure 11: tail latency under alternating 45/30 RPS load bursts.

The burst experiment: 99th percentile of the trailing window of each
load quantum for SEQ, FIX-2, FIX-4, and FM.
"""

from __future__ import annotations

from repro.experiments.figures import fig11_load_variation

from conftest import run_figure


def test_fig11_load_variation(benchmark, scale, save_figure):
    """Regenerate Figure 11."""
    result = run_figure(benchmark, fig11_load_variation, scale, save_figure)
    assert result.tables
