"""Figure 3: effect of fixed parallelism on latency in Lucene.

SEQ vs FIX-4 mean and 99th-percentile latency over the 30-48 RPS
load range; the paper's crossover is near 42 RPS.
"""

from __future__ import annotations

from repro.experiments.figures import fig3_fixed_parallelism

from conftest import run_figure


def test_fig03_fixed_parallelism(benchmark, scale, save_figure):
    """Regenerate Figure 3."""
    result = run_figure(benchmark, fig3_fixed_parallelism, scale, save_figure)
    assert result.tables
