"""Ablation: binned vs exact offline interval search.

Times both search modes and reports the worst-case divergence of the
predicted row tails (the paper's hours-to-minutes binning claim).
"""

from __future__ import annotations

from repro.experiments.ablations import ablation_search_modes

from conftest import run_figure


def test_ablation_search(benchmark, scale, save_figure):
    """Compare offline search modes."""
    result = run_figure(benchmark, ablation_search_modes, scale, save_figure)
    assert result.tables
