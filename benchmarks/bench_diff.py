"""Diff-engine benches -> ``BENCH_diff.json``.

Four sections, two purposes (DESIGN.md §15):

* ``null_test`` (seeded, hardware-independent): the contract the whole
  diff plane rests on.  A run self-diffed through a ledger round-trip
  must be an *exact* null (bit-identical histogram state, zero deltas,
  zero significant verdicts), and two runs with different seeds must
  NOT short-circuit to the identical path.
* ``versus`` (seeded, hardware-independent): FM vs FIX-3 on an
  identical Lucene trace at 45 RPS with 500 requests — fixed size
  regardless of ``--scale``, because the attestation is about
  statistical power, not speed.  The p99 delta must be significant and
  the explanation ranking must put the over-subscription phase
  (contention — the simulator books FIX's overload there) first.
* ``determinism`` (seeded, hardware-independent): the same two ledger
  entries diffed twice, and entries rebuilt from a ``--workers 2``
  sweep, must serialize byte-identically — diffs are functions of
  (entries, seed), never of wall clock or process count.
* ``throughput`` (same-machine trajectory): ``diff_runs`` calls per
  second on realistic entries, and ledger append+get round-trips per
  second.  Gated with a wide cross-run band by
  ``check_diff_regression.py``.

Usage::

    PYTHONPATH=src python benchmarks/bench_diff.py [--scale quick]
    PYTHONPATH=src python benchmarks/run_all.py --quick --only diff
"""

from __future__ import annotations

import argparse
import json
import platform
import tempfile
import time
from pathlib import Path

from repro.experiments.config import FULL, QUICK, TINY, Scale, default_scale
from repro.experiments.runner import run_sweep
from repro.experiments.tables import lucene_table
from repro.observe.diff import diff_runs
from repro.observe.ledger import RunEntry, RunLedger, entry_from_result
from repro.schedulers import FixedScheduler, FMScheduler
from repro.workloads import lucene as lucene_mod

REPO_ROOT = Path(__file__).resolve().parent.parent
TIMING_REPEATS = 3

#: The attestation runs are fixed-size (the statistical-power claims
#: depend on sample count, so scaling them with --scale would move the
#: attested facts around); throughput cells scale normally.
ATTEST_REQUESTS = 500
ATTEST_RPS = 45.0
ATTEST_SEED = 4100


def best_of(fn, repeats: int = TIMING_REPEATS) -> float:
    """Best wall time over ``repeats`` calls (sheds scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _attest_entries(workers: int = 1) -> dict[str, RunEntry]:
    """FM and FIX-3 entries on the identical 45 RPS Lucene trace."""
    scale = Scale(
        "attest",
        num_requests=ATTEST_REQUESTS,
        profile_size=QUICK.profile_size,
        num_bins=QUICK.num_bins,
        step_ms=QUICK.step_ms,
    )
    table = lucene_table(scale)
    workload = lucene_mod.lucene_workload(profile_size=scale.profile_size)
    policies = {"FM": FMScheduler(table), "FIX-3": FixedScheduler(3)}
    sweep = run_sweep(
        policies,
        workload,
        rps_values=[ATTEST_RPS],
        cores=lucene_mod.CORES,
        num_requests=scale.num_requests,
        quantum_ms=lucene_mod.QUANTUM_MS,
        seed=ATTEST_SEED,
        repeats=1,
        keep_results=True,
        spin_fraction=lucene_mod.SPIN_FRACTION,
        workers=workers,
    )
    return {
        policy: entry_from_result(
            f"bench:{policy}",
            sweep[policy].results[0][0],
            config={"policy": policy, "rps": ATTEST_RPS, "seed": ATTEST_SEED},
            seed=ATTEST_SEED,
            scheduler=policy,
            workload=workload,
            scale=scale.name,
        )
        for policy in policies
    }


def bench_null_test(entries: dict[str, RunEntry]) -> dict:
    """The self-diff null attestation."""
    fm = entries["FM"]
    round_trip = RunEntry.from_dict(fm.to_dict())
    self_diff = diff_runs(fm, round_trip)
    cross = diff_runs(fm, entries["FIX-3"])
    return {
        "self_identical": self_diff.identical,
        "self_null": self_diff.is_null(),
        "self_max_abs_delta_ms": max(
            abs(q.delta_ms) for q in self_diff.quantiles
        ),
        "cross_identical": cross.identical,
    }


def bench_versus(entries: dict[str, RunEntry]) -> dict:
    """FM vs FIX-3 significance + explanation-ranking attestation."""
    diff = diff_runs(entries["FM"], entries["FIX-3"])
    p99 = diff.quantile(0.99)
    top = diff.phases[0] if diff.phases else None
    return {
        "num_requests": ATTEST_REQUESTS,
        "rps": ATTEST_RPS,
        "p99_delta_ms": p99.delta_ms,
        "p99_ci_ms": [p99.ci_lo, p99.ci_hi],
        "p99_significant": p99.significant,
        "top_phase": top.component if top else "",
        "top_phase_share": top.share_of_p99_delta if top else 0.0,
        "explanation": diff.explanation(),
    }


def bench_determinism(entries: dict[str, RunEntry]) -> dict:
    """Diffs must be pure functions of (entries, seed) — repeated calls
    and worker-pooled entry construction change nothing."""
    first = diff_runs(entries["FM"], entries["FIX-3"]).to_dict()
    second = diff_runs(entries["FM"], entries["FIX-3"]).to_dict()
    pooled = _attest_entries(workers=2)
    pooled_identical = all(
        entries[policy].to_dict() == pooled[policy].to_dict()
        for policy in entries
    )
    pooled_diff = diff_runs(pooled["FM"], pooled["FIX-3"]).to_dict()
    return {
        "repeat_identical": first == second,
        "workers_identical": pooled_identical,
        "workers_diff_identical": first == pooled_diff,
    }


def bench_throughput(entries: dict[str, RunEntry]) -> dict:
    """Same-machine trajectory: diffs/sec and ledger round-trips/sec."""
    diff_calls = 20

    def diffs() -> None:
        for _ in range(diff_calls):
            diff_runs(entries["FM"], entries["FIX-3"])

    diff_s = best_of(diffs)

    ledger_ops = 50
    with tempfile.TemporaryDirectory() as tmp:
        ledger = RunLedger(Path(tmp) / "runs")

        def roundtrips() -> None:
            for _ in range(ledger_ops):
                run_id = ledger.append(entries["FM"])
                ledger.get(run_id)

        ledger_s = best_of(roundtrips, repeats=1)
        entry_bytes = len(json.dumps(entries["FM"].to_dict()))

    return {
        "diff_calls": diff_calls,
        "diffs_per_s": round(diff_calls / diff_s, 1),
        "ledger_roundtrips": ledger_ops,
        "ledger_roundtrips_per_s": round(ledger_ops / ledger_s, 1),
        "entry_bytes": entry_bytes,
    }


def build_report(scale: Scale) -> dict:
    """The full ``BENCH_diff.json`` payload."""
    from repro.observe.ledger import config_fingerprint

    entries = _attest_entries()
    null_test = bench_null_test(entries)
    versus = bench_versus(entries)
    determinism = bench_determinism(entries)
    throughput = bench_throughput(entries)
    report = {
        "benchmark": "diff",
        "scale": scale.name,
        "python": platform.python_version(),
        "timing_repeats": TIMING_REPEATS,
        "null_test": null_test,
        "versus": versus,
        "determinism": determinism,
        "throughput": throughput,
        "notes": (
            "null_test, versus, and determinism are seeded and "
            "hardware-independent: the self-diff must be an exact null, "
            "the FM-vs-FIX-3 p99 delta at 45 RPS x 500 requests must be "
            "significant with the over-subscription phase ranked first "
            "(contention — this simulator books FIX's overload there; "
            "only FM's admission control produces queue spans, see "
            "DESIGN.md §15), and diffs must be byte-identical across "
            "repeats and --workers counts. throughput is the "
            "same-machine trajectory gated with a wide band by "
            "check_diff_regression.py."
        ),
    }
    # The embedded run-over-run entry (consumed by
    # gatelib.compare_to_baseline): the report's own scalars as a
    # metrics-only ledger entry.
    metrics = {
        "diffs_per_s": throughput["diffs_per_s"],
        "ledger_roundtrips_per_s": throughput["ledger_roundtrips_per_s"],
        "entry_bytes": throughput["entry_bytes"],
        "p99_delta_ms": versus["p99_delta_ms"],
        "top_phase_share": versus["top_phase_share"],
    }
    config = {"benchmark": "diff", "scale": scale.name}
    report["ledger"] = {
        "run_id": "",
        "card": {
            "name": "bench:diff",
            "fingerprint": config_fingerprint(config),
            "seed": ATTEST_SEED,
            "scheduler": "",
            "workload": "",
            "scale": scale.name,
            "config": config,
            "git_rev": "",
            "created_s": 0.0,
        },
        "artifacts": {
            "histograms": {},
            "attribution": {},
            "metrics": metrics,
            "energy": {},
            "events": [],
        },
    }
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=["tiny", "quick", "full"], default=None,
        help="fidelity preset (default: $REPRO_SCALE or 'quick')",
    )
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_diff.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    scale = (
        {"tiny": TINY, "quick": QUICK, "full": FULL}[args.scale]
        if args.scale
        else default_scale()
    )
    report = build_report(scale)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
