"""CI gate: fail when the heterogeneous engine or EA-FM regresses.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py --quick --only hetero \
        --hetero-output bench_hetero_fresh.json
    python benchmarks/check_hetero_regression.py bench_hetero_fresh.json

Four checks, in decreasing order of hardware independence:

1. **Bit identity** (seeded, hardware-independent): a single-pool
   speed-1.0 topology must reproduce ``repro.sim._baseline`` bit for
   bit, with energy accounted — the hetero machinery is an observer of
   the homogeneous hot path, never a perturbation.
2. **Frontier** (seeded, hardware-independent): EA-FM must strictly
   dominate FIX-3 (lower p99 AND fewer joules/query) at
   ``--min-dominated`` big/little load points (default 1) — the
   headline acceptance bound of the ``hetero-energy`` experiment.
3. **Determinism** (seeded, hardware-independent): the big/little
   sweep must attest identical results across worker counts.
4. **Throughput** (cross-run, wide band): hetero ``events_per_s`` must
   be within ``--threshold`` (default 30%) of the committed
   ``BENCH_hetero.json``, with slack for runner hardware variance.

Exit code 0 = pass, 1 = regression, 2 = bad input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _get(report: dict, path: Path, *keys):
    node = report
    try:
        for key in keys:
            node = node[key]
    except (KeyError, TypeError):
        dotted = ".".join(keys)
        print(f"error: {path} has no {dotted}", file=sys.stderr)
        raise SystemExit(2)
    return node


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "report", type=Path, help="fresh BENCH_hetero.json to validate"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / "BENCH_hetero.json",
        help="committed baseline report (default: repo-root BENCH_hetero.json)",
    )
    parser.add_argument(
        "--min-dominated",
        type=int,
        default=1,
        help="load points where EA-FM must dominate FIX-3 (default 1)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="max tolerated fractional events/sec drop (default 0.30)",
    )
    args = parser.parse_args(argv)

    try:
        report = json.loads(args.report.read_text())
        baseline = json.loads(args.baseline.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    failed = False

    identity = _get(report, args.report, "bit_identity")
    print(
        f"bit identity: identical={identity.get('bit_identical_to_baseline')} "
        f"energy_accounted={identity.get('energy_accounted')} "
        f"({identity.get('num_requests', '?')} requests)"
    )
    if not identity.get("bit_identical_to_baseline", False):
        print(
            "FAIL: single-pool hetero run diverged from repro.sim._baseline",
            file=sys.stderr,
        )
        failed = True
    if not identity.get("energy_accounted", False):
        print("FAIL: hetero run produced no energy report", file=sys.stderr)
        failed = True

    frontier = _get(report, args.report, "frontier")
    for point in frontier.get("points", []):
        marker = "dominates" if point.get("dominates") else "-"
        print(
            f"rps={point.get('rps', '?')}: "
            f"p99 EA {point.get('eafm_p99_ms')} vs FIX {point.get('fix3_p99_ms')} ms, "
            f"J/q EA {point.get('eafm_j_per_query')} vs FIX "
            f"{point.get('fix3_j_per_query')} {marker}"
        )
    dominated = int(frontier.get("dominated_points", 0))
    print(
        f"frontier: EA-FM dominates FIX-3 at {dominated} load point(s) "
        f"(need >= {args.min_dominated})"
    )
    if dominated < args.min_dominated:
        print(
            f"FAIL: EA-FM dominates FIX-3 at only {dominated} load point(s) "
            f"(< {args.min_dominated}) — the latency-energy frontier claim "
            "is dead",
            file=sys.stderr,
        )
        failed = True

    determinism = _get(report, args.report, "determinism")
    print(
        f"determinism: workers {determinism.get('workers_compared')} "
        f"identical={determinism.get('results_identical')}"
    )
    if not determinism.get("results_identical", False):
        print(
            "FAIL: hetero sweep results depend on the worker count",
            file=sys.stderr,
        )
        failed = True

    fresh = float(_get(report, args.report, "engine_throughput", "events_per_s"))
    committed = float(
        _get(baseline, args.baseline, "engine_throughput", "events_per_s")
    )
    floor = committed * (1.0 - args.threshold)
    drop = 1.0 - fresh / committed
    print(
        f"engine throughput: fresh={fresh:,.0f} ev/s committed={committed:,.0f} ev/s "
        f"({'-' if drop > 0 else '+'}{abs(drop):.1%}; floor at "
        f"-{args.threshold:.0%} = {floor:,.0f} ev/s)"
    )
    if fresh < floor:
        print(
            f"FAIL: hetero engine throughput regressed {drop:.1%} "
            f"(> {args.threshold:.0%} threshold)",
            file=sys.stderr,
        )
        failed = True

    if failed:
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
