"""CI gate: fail when the heterogeneous engine or EA-FM regresses.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py --quick --only hetero \
        --hetero-output bench_hetero_fresh.json
    python benchmarks/check_hetero_regression.py bench_hetero_fresh.json

Four checks, in decreasing order of hardware independence:

1. **Bit identity** (seeded, hardware-independent): a single-pool
   speed-1.0 topology must reproduce ``repro.sim._baseline`` bit for
   bit, with energy accounted — the hetero machinery is an observer of
   the homogeneous hot path, never a perturbation.
2. **Frontier** (seeded, hardware-independent): EA-FM must strictly
   dominate FIX-3 (lower p99 AND fewer joules/query) at
   ``--min-dominated`` big/little load points (default 1) — the
   headline acceptance bound of the ``hetero-energy`` experiment.
3. **Determinism** (seeded, hardware-independent): the big/little
   sweep must attest identical results across worker counts.
4. **Throughput** (cross-run, wide band): hetero ``events_per_s`` must
   be within ``--threshold`` (default 30%) of the committed
   ``BENCH_hetero.json``, with slack for runner hardware variance.

Exit code 0 = pass, 1 = regression, 2 = bad input.
"""

from __future__ import annotations

from gatelib import (
    compare_to_baseline,
    fail,
    get_path,
    load_report_pair,
    make_parser,
    throughput_floor_check,
    verdict,
)


def main(argv: list[str] | None = None) -> int:
    parser = make_parser(__doc__, "BENCH_hetero.json", threshold=0.30)
    parser.add_argument(
        "--min-dominated",
        type=int,
        default=1,
        help="load points where EA-FM must dominate FIX-3 (default 1)",
    )
    args = parser.parse_args(argv)
    report, baseline = load_report_pair(args.report, args.baseline)

    failed = False

    identity = get_path(report, args.report, "bit_identity")
    print(
        f"bit identity: identical={identity.get('bit_identical_to_baseline')} "
        f"energy_accounted={identity.get('energy_accounted')} "
        f"({identity.get('num_requests', '?')} requests)"
    )
    if not identity.get("bit_identical_to_baseline", False):
        failed = fail(
            "single-pool hetero run diverged from repro.sim._baseline"
        )
    if not identity.get("energy_accounted", False):
        failed = fail("hetero run produced no energy report")

    frontier = get_path(report, args.report, "frontier")
    for point in frontier.get("points", []):
        marker = "dominates" if point.get("dominates") else "-"
        print(
            f"rps={point.get('rps', '?')}: "
            f"p99 EA {point.get('eafm_p99_ms')} vs FIX {point.get('fix3_p99_ms')} ms, "
            f"J/q EA {point.get('eafm_j_per_query')} vs FIX "
            f"{point.get('fix3_j_per_query')} {marker}"
        )
    dominated = int(frontier.get("dominated_points", 0))
    print(
        f"frontier: EA-FM dominates FIX-3 at {dominated} load point(s) "
        f"(need >= {args.min_dominated})"
    )
    if dominated < args.min_dominated:
        failed = fail(
            f"EA-FM dominates FIX-3 at only {dominated} load point(s) "
            f"(< {args.min_dominated}) — the latency-energy frontier claim "
            "is dead"
        )

    determinism = get_path(report, args.report, "determinism")
    print(
        f"determinism: workers {determinism.get('workers_compared')} "
        f"identical={determinism.get('results_identical')}"
    )
    if not determinism.get("results_identical", False):
        failed = fail("hetero sweep results depend on the worker count")

    fresh = float(
        get_path(report, args.report, "engine_throughput", "events_per_s")
    )
    committed = float(
        get_path(baseline, args.baseline, "engine_throughput", "events_per_s")
    )
    failed |= throughput_floor_check(
        "engine throughput", fresh, committed, args.threshold, unit=" ev/s"
    )

    failed |= compare_to_baseline(report, baseline, label="hetero run-over-run")

    return verdict(failed)


if __name__ == "__main__":
    raise SystemExit(main())
