"""Fan-out aggregation: per-ISN tails at cluster scale (Section 7).

Monte-Carlo fan-out over measured FM ISN latencies: the cluster-level
p90 under 1/10/40/100-way fan-out and the required per-ISN percentile.
"""

from __future__ import annotations

from repro.experiments.figures import cluster_aggregation

from conftest import run_figure


def test_cluster_aggregation(benchmark, scale, save_figure):
    """Regenerate the aggregation analysis."""
    result = run_figure(benchmark, cluster_aggregation, scale, save_figure)
    assert result.tables
