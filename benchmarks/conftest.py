"""Shared benchmark fixtures.

Each bench regenerates one table/figure of the paper via the
corresponding :mod:`repro.experiments.figures` function, prints the
rows/series the paper plots, and records headline numbers in
``benchmark.extra_info``.  Rendered outputs are also written to
``benchmarks/output/<figure>.txt`` for EXPERIMENTS.md.

Scale comes from ``REPRO_SCALE`` (tiny / quick / full; default quick).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.config import Scale, default_scale
from repro.experiments.report import FigureResult

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def scale() -> Scale:
    """The fidelity preset for this benchmark session."""
    return default_scale()


@pytest.fixture(scope="session")
def save_figure():
    """Write a rendered figure to benchmarks/output/ and echo it."""

    def _save(result: FigureResult) -> FigureResult:
        OUTPUT_DIR.mkdir(exist_ok=True)
        text = result.render()
        (OUTPUT_DIR / f"{result.figure_id}.txt").write_text(text + "\n")
        print()
        print(text)
        return result

    return _save


def run_figure(benchmark, figure_fn, scale, save_figure) -> FigureResult:
    """Run one figure function under pytest-benchmark (single round —
    these are experiments, not microbenchmarks) and persist the output."""
    result = benchmark.pedantic(figure_fn, args=(scale,), rounds=1, iterations=1)
    benchmark.extra_info["scale"] = scale.name
    benchmark.extra_info["figure"] = result.figure_id
    for note in result.notes:
        print(f"note: {note}")
    return save_figure(result)
