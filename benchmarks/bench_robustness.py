"""Robustness: straggler rate x hedging delay x shedding bound.

Demonstrates both sides of the redundancy trade-off: hedging cuts the
cluster p99 when stragglers dominate at moderate load (Vulimiri et
al.), while past saturation only load shedding keeps the admitted p99
bounded (Poloczek & Ciucu) — the no-shed tail diverges with run length.
"""

from __future__ import annotations

from repro.experiments.robustness import experiment_robustness

from conftest import run_figure


def test_robustness(benchmark, scale, save_figure):
    """Fault injection, hedging, deadlines, and shedding end to end."""
    result = run_figure(benchmark, experiment_robustness, scale, save_figure)
    assert len(result.tables) == 3
