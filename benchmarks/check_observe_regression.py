"""CI gate: fail when the observability plane regresses.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py --quick --only observe \
        --observe-output bench_observe_fresh.json
    python benchmarks/check_observe_regression.py bench_observe_fresh.json

Four checks, in decreasing order of hardware independence:

1. **Early detection** (seeded, hardware-independent): the live-tail
   overload flip must attest ``flag_leads_breach`` — the changepoint
   detector flags a window at/after fault onset and strictly before
   the SLO breach floor.  If this dies, the headline claim of the
   ``live-tail`` experiment is dead.
2. **Replay equivalence** (seeded, hardware-independent): a plane
   replayed from a trace must reproduce ``repro analyze``'s
   attribution totals within 1e-6 ms (``replay_matches_analyze``).
3. **Live-plane cost** (same-machine): an engine run with a fully
   armed plane attached must stay within ``--max-overhead`` percent
   (default 40) of the same run with ``live=None``.  The armed plane
   does real per-completion work (histogram record, SLO feed,
   attribution sums) and prices out around 25-35%; the bound catches
   an accidental O(n) scan landing on that path, not the honest cost.
4. **Throughput** (cross-run, wide band): the trace analyzer's
   ``spans_per_s`` and the plane-off engine ``off_events_per_s`` must
   each be within ``--threshold`` (default 30%) of the committed
   ``BENCH_observe.json`` — the second is the zero-cost-when-disabled
   trajectory (the live hook is one pointer check per completion).

Exit code 0 = pass, 1 = regression, 2 = bad input.
"""

from __future__ import annotations

from gatelib import (
    compare_to_baseline,
    fail,
    get_path,
    load_report_pair,
    make_parser,
    throughput_floor_check,
    verdict,
)


def main(argv: list[str] | None = None) -> int:
    parser = make_parser(__doc__, "BENCH_observe.json", threshold=0.30)
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=40.0,
        help="max tolerated %% engine slowdown with the plane armed",
    )
    args = parser.parse_args(argv)
    report, baseline = load_report_pair(args.report, args.baseline)

    failed = False

    tail = get_path(report, args.report, "live_tail")
    print(
        f"live-tail: fault onset window {tail.get('fault_window')}, "
        f"flagged window {tail.get('flagged_window')}, "
        f"breach floor window {tail.get('breach_floor_window')} "
        f"(flag_leads_breach={tail.get('flag_leads_breach')})"
    )
    if not tail.get("flag_leads_breach", False):
        failed = fail(
            "the detector no longer flags the overload flip before the "
            "SLO breach floor"
        )
    print(
        f"replay equivalence: max |replay - analyze| = "
        f"{float(tail.get('replay_max_abs_diff_ms', float('inf'))):.3g} ms "
        f"(matches={tail.get('replay_matches_analyze')})"
    )
    if not tail.get("replay_matches_analyze", False):
        failed = fail(
            "replayed attribution totals diverged from repro analyze "
            "by more than 1e-6 ms"
        )

    plane = get_path(report, args.report, "live_plane")
    overhead = float(plane.get("overhead_enabled_pct", float("inf")))
    print(
        f"live plane armed: {overhead:+.2f}% engine slowdown "
        f"(limit {args.max_overhead:.0f}%), "
        f"{plane.get('windows_closed', '?')} windows, "
        f"{float(plane.get('snapshots_per_s', 0)):,.0f} snapshots/s"
    )
    if overhead > args.max_overhead:
        failed = fail(
            f"armed live plane slows the engine {overhead:.1f}% "
            f"(> {args.max_overhead:.0f}%)"
        )

    fresh = float(get_path(report, args.report, "analyzer", "spans_per_s"))
    committed = float(
        get_path(baseline, args.baseline, "analyzer", "spans_per_s")
    )
    failed |= throughput_floor_check(
        "analyzer", fresh, committed, args.threshold, unit=" spans/s"
    )

    fresh = float(
        get_path(report, args.report, "live_plane", "off_events_per_s")
    )
    committed = float(
        get_path(baseline, args.baseline, "live_plane", "off_events_per_s")
    )
    failed |= throughput_floor_check(
        "plane-off engine", fresh, committed, args.threshold, unit=" ev/s"
    )

    failed |= compare_to_baseline(report, baseline, label="observe run-over-run")

    return verdict(failed)


if __name__ == "__main__":
    raise SystemExit(main())
