"""Extension: online re-profiling under workload drift.

FM frozen on a stale table vs FM that periodically re-profiles observed
demand and rebuilds its interval table (closing the paper's
daily/weekly offline-analysis loop online).
"""

from __future__ import annotations

from repro.experiments.extensions import extension_reprofiling

from conftest import run_figure


def test_ext_reprofile(benchmark, scale, save_figure):
    """Compare static vs re-profiling FM across a demand drift."""
    result = run_figure(benchmark, extension_reprofiling, scale, save_figure)
    assert result.tables
