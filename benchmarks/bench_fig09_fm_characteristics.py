"""Figure 9: FM parallelism and thread-count characteristics.

Average request parallelism by demand class, completion-degree
distributions at four loads, and threads-in-system / CPU utilization.
"""

from __future__ import annotations

from repro.experiments.figures import fig9_fm_characteristics

from conftest import run_figure


def test_fig09_fm_characteristics(benchmark, scale, save_figure):
    """Regenerate Figure 9(a,b,c)."""
    result = run_figure(benchmark, fig9_fm_characteristics, scale, save_figure)
    assert result.tables
