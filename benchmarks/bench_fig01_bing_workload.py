"""Figure 1: Bing demand distribution and average speedup.

Regenerates the ISN service-demand histogram (5 ms bins, 200 ms
termination spike) and the per-degree speedup table for all requests,
the longest 5 %, and the shortest 5 %.
"""

from __future__ import annotations

from repro.experiments.figures import fig1_bing_workload

from conftest import run_figure


def test_fig01_bing_workload(benchmark, scale, save_figure):
    """Regenerate Figure 1(a,b)."""
    result = run_figure(benchmark, fig1_bing_workload, scale, save_figure)
    assert result.tables
