"""Adaptive replication controller benches -> ``BENCH_replication.json``.

Four sections, two purposes:

* ``observe_path`` times the controller's per-completion hot path
  (``observe`` + window rolls) on a synthetic heavy-tailed stream —
  the number that regresses if someone fattens the observation loop.
* ``controller_overhead`` compares a shared-replica cluster run driven
  by the controller against the same run under a static hedge: the
  adaptive machinery must stay a small multiple of the static path.
* ``phase_diagram`` re-runs the ``replication-phase`` sweep and records
  the adaptive-vs-best-static p99 ratio per load point.  Simulation is
  seeded, so these ratios are *hardware-independent* — the regression
  gate (``check_replication_regression.py``) pins them ``<= 1.10``.
* ``flip`` replays the deterministic overload→underload scenario twice
  and attests that both runs produced bit-identical mode-transition
  signatures (and at least one brownout).

Usage::

    PYTHONPATH=src python benchmarks/bench_replication.py [--scale quick]
    PYTHONPATH=src python benchmarks/run_all.py --quick --only replication
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.cluster.adaptive import AdaptiveReplicationController, ControllerConfig
from repro.experiments.config import FULL, QUICK, TINY, Scale, default_scale
from repro.experiments.replication_phase import (
    RHO_SWEEP,
    SATURATION_RPS,
    STATIC_POLICIES,
    _controller,
    _phase_point,
    _stragglers,
)
from repro.faults.scenarios import overload_flip
from repro.workloads import bing as bing_mod

REPO_ROOT = Path(__file__).resolve().parent.parent
TIMING_REPEATS = 3
#: Synthetic completions pushed through ``observe`` per timing run.
OBSERVE_STREAM = 100_000


def best_of(fn, repeats: int = TIMING_REPEATS) -> float:
    """Best wall time over ``repeats`` calls (sheds scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def bench_observe_path() -> dict:
    """Throughput of the per-shard observation hot path."""
    rng = np.random.default_rng(7)
    n = OBSERVE_STREAM
    latencies = rng.lognormal(mean=3.0, sigma=1.0, size=n)
    busy = latencies / 3.0
    times = np.cumsum(rng.exponential(scale=0.05, size=n))
    controller = AdaptiveReplicationController(
        ControllerConfig(window_ms=100.0, cores=bing_mod.CORES)
    )
    observe = controller.observe

    def run() -> None:
        controller.reset()
        for i in range(n):
            observe(
                latencies[i], at_ms=times[i], busy_ms=busy[i], queue_depth=4.0
            )
        controller.flush(float(times[-1]))

    wall_s = best_of(run)
    return {
        "observations": n,
        "wall_s": round(wall_s, 6),
        "observations_per_s": round(n / wall_s, 1),
        "windows_closed": controller.windows_observed,
        "transitions": len(controller.transitions),
    }


def bench_controller_overhead(scale: Scale) -> dict:
    """Adaptive-driven cluster run vs the same run under a static hedge."""
    rps = 0.5 * SATURATION_RPS
    _, static_hedge = STATIC_POLICIES[-1]

    def static_run() -> None:
        _phase_point(scale, rps, hedge=static_hedge, fault_plan_factory=_stragglers())

    def adaptive_run() -> None:
        _phase_point(
            scale, rps, controller=_controller(), fault_plan_factory=_stragglers()
        )

    static_s = best_of(static_run)
    adaptive_s = best_of(adaptive_run)
    return {
        "rho": 0.5,
        "static_wall_s": round(static_s, 6),
        "adaptive_wall_s": round(adaptive_s, 6),
        "overhead_pct": round(100.0 * (adaptive_s / static_s - 1.0), 2),
    }


def bench_phase_diagram(scale: Scale) -> dict:
    """Seeded sweep: adaptive p99 over the best static per load point."""
    points = []
    for rho in RHO_SWEEP:
        rps = rho * SATURATION_RPS
        baseline = _phase_point(scale, rps, fault_plan_factory=_stragglers())
        static_p99 = []
        for _, hedge in STATIC_POLICIES:
            run = _phase_point(scale, rps, hedge=hedge, fault_plan_factory=_stragglers())
            static_p99.append(run.cluster_tail_ms(0.99))
        controller = _controller()
        adaptive = _phase_point(
            scale, rps, controller=controller, fault_plan_factory=_stragglers()
        )
        adaptive_p99 = adaptive.cluster_tail_ms(0.99)
        best_static = min(static_p99)
        points.append(
            {
                "rho": rho,
                "baseline_p99_ms": round(baseline.cluster_tail_ms(0.99), 2),
                "best_static_p99_ms": round(best_static, 2),
                "adaptive_p99_ms": round(adaptive_p99, 2),
                "adaptive_vs_best_static": round(adaptive_p99 / best_static, 4),
                "transitions": len(controller.transitions),
            }
        )
    return {
        "num_servers": 3,
        "points": points,
        "worst_ratio": max(p["adaptive_vs_best_static"] for p in points),
    }


def bench_flip(scale: Scale) -> dict:
    """Replay the overload flip twice; attest bit-identical transitions."""
    rho = 0.40
    rps = rho * SATURATION_RPS
    num_queries = scale.num_requests * 2
    horizon_ms = num_queries / rps * 1000.0
    signatures = []
    brownouts = 0
    for _ in range(2):
        scenario = overload_flip(
            seed=131,
            horizon_ms=horizon_ms,
            cores_lost=bing_mod.CORES - 2,
            stall_ms=2 * bing_mod.QUANTUM_MS,
        )
        controller = _controller()
        _phase_point(scale, rps, controller=controller, fault_plan_factory=scenario)
        signatures.append(controller.transition_signature())
        brownouts = controller.brownout_entries
    return {
        "rho": rho,
        "cores_lost": bing_mod.CORES - 2,
        "transitions": len(signatures[0]),
        "brownouts": brownouts,
        "deterministic_replay": signatures[0] == signatures[1],
    }


def build_report(scale: Scale) -> dict:
    return {
        "benchmark": "replication",
        "scale": scale.name,
        "python": platform.python_version(),
        "timing_repeats": TIMING_REPEATS,
        "observe_path": bench_observe_path(),
        "controller_overhead": bench_controller_overhead(scale),
        "phase_diagram": bench_phase_diagram(scale),
        "flip": bench_flip(scale),
        "notes": (
            "observe_path streams synthetic lognormal completions through "
            "AdaptiveReplicationController.observe. phase_diagram and flip "
            "are fully seeded simulations: their ratios and attestations "
            "are hardware-independent and gated by "
            "check_replication_regression.py (adaptive p99 must stay "
            "within 10% of the best static policy at every load point, "
            "and the flip replay must be bit-identical with >= 1 "
            "brownout). controller_overhead and observations_per_s vary "
            "with hardware; the gate gives them a wide band."
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=["tiny", "quick", "full"], default=None,
        help="fidelity preset (default: $REPRO_SCALE or 'quick')",
    )
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_replication.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    if args.scale:
        scale = {"tiny": TINY, "quick": QUICK, "full": FULL}[args.scale]
    else:
        scale = default_scale()

    print(f"running replication benches at scale={scale.name} ...")
    report = build_report(scale)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
