"""Heterogeneous-engine benches -> ``BENCH_hetero.json``.

Four sections, two purposes:

* ``bit_identity`` attests the acceptance gate of the hetero subsystem:
  a single-pool speed-1.0 topology must reproduce the frozen
  ``repro.sim._baseline`` reference bit for bit — energy accounting is
  an observer, never a perturbation.
* ``frontier`` re-runs the ``hetero-energy`` big/little sweep and
  records, per load point, whether EA-FM strictly dominates FIX-3
  (lower p99 AND fewer joules/query).  Seeded, so the dominated-point
  count is *hardware-independent*; the regression gate
  (``check_hetero_regression.py``) pins it ``>= 1``.
* ``determinism`` runs the same sweep serially and across 2 worker
  processes and attests identical tails and energy bills.
* ``engine_throughput`` times a saturated big/little run (events/sec,
  hardware-dependent, wide regression band) and the hetero bookkeeping
  overhead vs the same trace on the legacy homogeneous path.

Usage::

    PYTHONPATH=src python benchmarks/bench_hetero.py [--scale quick]
    PYTHONPATH=src python benchmarks/run_all.py --quick --only hetero
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

import numpy as np

from repro.experiments.config import FULL, QUICK, TINY, Scale, default_scale
from repro.experiments.hetero_energy import (
    RPS_SWEEP,
    big_little_topology,
    hetero_policies,
    run_hetero_sweep,
)
from repro.experiments.tables import bing_table
from repro.hetero import Topology
from repro.parallel import default_workers
from repro.schedulers import FMScheduler
from repro.sim._baseline import simulate_baseline
from repro.sim.engine import Engine, simulate
from repro.workloads import bing as bing_mod
from repro.workloads.arrivals import PoissonProcess

REPO_ROOT = Path(__file__).resolve().parent.parent
TIMING_REPEATS = 3


def best_of(fn, repeats: int = TIMING_REPEATS) -> float:
    """Best wall time over ``repeats`` calls (sheds scheduler noise)."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _arrivals(scale: Scale, rps: float, seed: int):
    workload = bing_mod.bing_workload(profile_size=scale.profile_size)
    return workload.arrivals(
        scale.num_requests * 2, PoissonProcess(rps), np.random.default_rng(seed)
    )


def bench_bit_identity(scale: Scale) -> dict:
    """Single-pool hetero run vs the frozen baseline: bit for bit."""
    table = bing_table(scale)
    arrivals = _arrivals(scale, 180.0, seed=42)
    kwargs = dict(
        cores=bing_mod.CORES,
        quantum_ms=bing_mod.QUANTUM_MS,
        spin_fraction=bing_mod.SPIN_FRACTION,
    )
    hetero = simulate(
        arrivals, FMScheduler(table),
        topology=Topology.homogeneous(bing_mod.CORES), **kwargs,
    )
    reference = simulate_baseline(arrivals, FMScheduler(table), **kwargs)
    identical = len(hetero.records) == len(reference.records) and all(
        a.finish_ms == b.finish_ms
        and a.core_time_ms == b.core_time_ms
        and a.final_degree == b.final_degree
        for a, b in zip(hetero.records, reference.records)
    )
    if not identical:
        raise AssertionError(
            "hetero engine diverged from repro.sim._baseline on the "
            "degenerate single-pool topology — the energy/pool machinery "
            "is perturbing the homogeneous hot path"
        )
    return {
        "num_requests": len(arrivals),
        "bit_identical_to_baseline": identical,
        "energy_accounted": hetero.energy is not None,
    }


def bench_frontier(scale: Scale) -> dict:
    """EA-FM vs FIX-3 on the big/little latency-energy frontier."""
    sweep = run_hetero_sweep(scale, big_little_topology())
    fix, ea = sweep["FIX-3"], sweep["EA-FM"]

    def jpq(series, i: int) -> float:
        values = [r.joules_per_query() for r in series.results[i]]
        return float(sum(values) / len(values))

    points = []
    for i, rps in enumerate(RPS_SWEEP):
        fix_jpq, ea_jpq = jpq(fix, i), jpq(ea, i)
        points.append(
            {
                "rps": rps,
                "fix3_p99_ms": round(fix.tail_ms[i], 2),
                "eafm_p99_ms": round(ea.tail_ms[i], 2),
                "fix3_j_per_query": round(fix_jpq, 5),
                "eafm_j_per_query": round(ea_jpq, 5),
                "dominates": bool(
                    ea.tail_ms[i] <= fix.tail_ms[i] and ea_jpq <= fix_jpq
                ),
            }
        )
    return {
        "topology": "4 big (2x) + 12 little",
        "points": points,
        "dominated_points": sum(1 for p in points if p["dominates"]),
    }


def bench_determinism(scale: Scale) -> dict:
    """The big/little sweep must not depend on the worker count."""
    topology = big_little_topology()
    with default_workers(1):
        serial = run_hetero_sweep(scale, topology)
    with default_workers(2):
        parallel = run_hetero_sweep(scale, topology)
    identical = all(
        serial[name].tail_ms == parallel[name].tail_ms
        and [
            r.energy.total_j for kept in serial[name].results for r in kept
        ]
        == [r.energy.total_j for kept in parallel[name].results for r in kept]
        for name in serial.policies()
    )
    if not identical:
        raise AssertionError("hetero sweep diverged across worker counts")
    return {
        "policies": sorted(serial.policies()),
        "load_points": len(RPS_SWEEP),
        "workers_compared": [1, 2],
        "results_identical": identical,
    }


def bench_engine_throughput(scale: Scale) -> dict:
    """Saturated big/little EA-FM run: events/sec and hetero overhead."""
    topology = big_little_topology()
    table = bing_table(scale)
    arrivals = _arrivals(scale, 600.0, seed=7)
    policies = hetero_policies(scale, topology)
    kwargs = dict(
        quantum_ms=bing_mod.QUANTUM_MS,
        spin_fraction=bing_mod.SPIN_FRACTION,
    )

    state: dict = {}

    def hetero_run():
        engine = Engine(
            cores=topology.total_cores,
            scheduler=hetero_policies(scale, topology)["EA-FM"],
            topology=topology,
            **kwargs,
        )
        engine.run(arrivals)
        state["events"] = engine.events_processed

    def legacy_run():
        simulate(
            arrivals, FMScheduler(table), cores=bing_mod.CORES, **kwargs
        )

    hetero_s = best_of(hetero_run)
    legacy_s = best_of(legacy_run)
    return {
        "num_requests": len(arrivals),
        "rps": 600.0,
        "policy": policies["EA-FM"].name,
        "events_processed": state["events"],
        "wall_s": round(hetero_s, 6),
        "events_per_s": round(state["events"] / hetero_s, 1),
        "requests_per_s": round(len(arrivals) / hetero_s, 1),
        "legacy_wall_s": round(legacy_s, 6),
        "hetero_overhead_pct": round(100.0 * (hetero_s / legacy_s - 1.0), 2),
    }


def build_report(scale: Scale) -> dict:
    return {
        "benchmark": "hetero",
        "scale": scale.name,
        "python": platform.python_version(),
        "timing_repeats": TIMING_REPEATS,
        "bit_identity": bench_bit_identity(scale),
        "frontier": bench_frontier(scale),
        "determinism": bench_determinism(scale),
        "engine_throughput": bench_engine_throughput(scale),
        "notes": (
            "bit_identity, frontier, and determinism are fully seeded "
            "simulations: their attestations and the dominated-point "
            "count are hardware-independent and gated by "
            "check_hetero_regression.py (single-pool runs must stay "
            "bit-identical to repro.sim._baseline; EA-FM must dominate "
            "FIX-3 at >= 1 big/little load point; worker counts must "
            "not change results). engine_throughput varies with "
            "hardware; the gate gives it a wide band. The legacy "
            "comparison runs 16 homogeneous cores vs the 16-core "
            "big/little box on the same trace, so hetero_overhead_pct "
            "includes both the pool bookkeeping and the different "
            "schedule it produces."
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", choices=["tiny", "quick", "full"], default=None,
        help="fidelity preset (default: $REPRO_SCALE or 'quick')",
    )
    parser.add_argument(
        "--output", type=Path, default=REPO_ROOT / "BENCH_hetero.json",
        help="where to write the JSON report",
    )
    args = parser.parse_args(argv)
    if args.scale:
        scale = {"tiny": TINY, "quick": QUICK, "full": FULL}[args.scale]
    else:
        scale = default_scale()

    print(f"running hetero benches at scale={scale.name} ...")
    report = build_report(scale)
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
