"""Ablation: wall-clock vs effective progress index.

Quantifies the over-parallelization feedback of indexing the interval
table by wall-clock execution time under sustained contention.
"""

from __future__ import annotations

from repro.experiments.ablations import ablation_progress_index

from conftest import run_figure


def test_ablation_progress(benchmark, scale, save_figure):
    """Compare FM progress indices."""
    result = run_figure(benchmark, ablation_progress_index, scale, save_figure)
    assert result.tables
