"""Ablation: contention-model sensitivity.

Sweeps the simulator's one free parameter — the fraction of lost
parallelism that burns CPU vs blocking — and checks that FM's headline
win is not an artifact of any particular setting.
"""

from __future__ import annotations

from repro.experiments.ablations import ablation_spin_fraction

from conftest import run_figure


def test_ablation_spin(benchmark, scale, save_figure):
    """FM-vs-baselines tail reduction across the spin range."""
    result = run_figure(benchmark, ablation_spin_fraction, scale, save_figure)
    assert result.tables
