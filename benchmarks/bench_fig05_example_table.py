"""Figure 5: the worked 50/150 ms example interval table.

Runs the offline search on the paper's toy workload (6 cores,
s(3) = 2, 50 ms steps) and prints the resulting table.
"""

from __future__ import annotations

from repro.experiments.figures import fig5_example_table

from conftest import run_figure


def test_fig05_example_table(benchmark, scale, save_figure):
    """Regenerate the Figure 5 table."""
    result = run_figure(benchmark, fig5_example_table, scale, save_figure)
    assert result.tables
