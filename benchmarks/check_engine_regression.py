"""CI gate: fail when engine events/sec regresses vs the committed baseline.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py --quick --only engine \
        --engine-output bench_engine_new.json
    python benchmarks/check_engine_regression.py bench_engine_new.json

Two checks, two purposes:

1. **Cross-run**: the fresh report's single-process ``events_per_s``
   must be within ``--threshold`` (default 25%) of the committed
   ``BENCH_engine.json``.  Catches hot-path regressions, with enough
   slack to absorb runner-to-runner hardware variance.
2. **Same-machine**: the fresh report's ``speedup_vs_reference`` (the
   optimized engine vs the frozen ``repro.sim._baseline`` on the *same*
   host, same run) must stay >= ``--min-speedup`` (default 1.5).  This
   one is hardware-independent — if it decays, someone slowed the hot
   path relative to the vendored reference.

Exit code 0 = pass, 1 = regression, 2 = bad input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _events_per_s(report: dict, path: Path) -> float:
    try:
        return float(report["single_process"]["events_per_s"])
    except (KeyError, TypeError, ValueError):
        print(f"error: {path} has no single_process.events_per_s", file=sys.stderr)
        raise SystemExit(2)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "report", type=Path, help="fresh BENCH_engine.json to validate"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=REPO_ROOT / "BENCH_engine.json",
        help="committed baseline report (default: repo-root BENCH_engine.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="max tolerated fractional events/sec drop vs baseline (default 0.25)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.5,
        help="min same-machine speedup vs the frozen reference engine",
    )
    args = parser.parse_args(argv)

    try:
        report = json.loads(args.report.read_text())
        baseline = json.loads(args.baseline.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    fresh = _events_per_s(report, args.report)
    committed = _events_per_s(baseline, args.baseline)
    floor = committed * (1.0 - args.threshold)
    drop = 1.0 - fresh / committed
    print(
        f"events/sec: fresh={fresh:,.0f} committed={committed:,.0f} "
        f"({'-' if drop > 0 else '+'}{abs(drop):.1%}; floor at "
        f"-{args.threshold:.0%} = {floor:,.0f})"
    )
    failed = False
    if fresh < floor:
        print(
            f"FAIL: events/sec regressed {drop:.1%} "
            f"(> {args.threshold:.0%} threshold)",
            file=sys.stderr,
        )
        failed = True

    speedup = float(report["single_process"].get("speedup_vs_reference", 0.0))
    print(f"same-machine speedup vs frozen reference: {speedup:.2f}x")
    if speedup < args.min_speedup:
        print(
            f"FAIL: speedup vs repro.sim._baseline fell to {speedup:.2f}x "
            f"(< {args.min_speedup:.2f}x)",
            file=sys.stderr,
        )
        failed = True

    if not report["single_process"].get("bit_identical_to_reference", False):
        print("FAIL: report does not attest bit-identity", file=sys.stderr)
        failed = True

    if failed:
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
