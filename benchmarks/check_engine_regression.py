"""CI gate: fail when engine events/sec regresses vs the committed baseline.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py --quick --only engine \
        --engine-output bench_engine_new.json
    python benchmarks/check_engine_regression.py bench_engine_new.json

Two checks, two purposes:

1. **Cross-run**: the fresh report's single-process ``events_per_s``
   must be within ``--threshold`` (default 25%) of the committed
   ``BENCH_engine.json``.  Catches hot-path regressions, with enough
   slack to absorb runner-to-runner hardware variance.
2. **Same-machine**: the fresh report's ``speedup_vs_reference`` (the
   optimized engine vs the frozen ``repro.sim._baseline`` on the *same*
   host, same run) must stay >= ``--min-speedup`` (default 1.5).  This
   one is hardware-independent — if it decays, someone slowed the hot
   path relative to the vendored reference.

Plus the mega-sweep gates (DESIGN.md §14), all same-machine /
absolute so no baseline entry is needed:

3. ``mega.cell.vector_speedup`` >= ``--min-vector-speedup`` (default
   3.0): the vectorized engine must stay >= 3x the scalar one on the
   overloaded FIX-4 cell where batching pays.
4. ``mega.cell.max_abs_latency_diff_ms`` <= ``--max-vector-diff``
   (default 1e-9): the vectorized path may not drift from the scalar
   engine (in practice the divergence is exactly 0.0).
5. ``mega.stream.peak_traced_mb`` <= ``--max-stream-peak-mb`` (default
   64): a streamed mega-run must hold O(running set) memory, not O(n).
6. ``mega.sharded.workers_identical`` must attest that the sharded
   sweep's merged summaries are bit-identical for any worker count.

Exit code 0 = pass, 1 = regression, 2 = bad input.
"""

from __future__ import annotations

from gatelib import (
    compare_to_baseline,
    fail,
    get_path,
    load_report_pair,
    make_parser,
    throughput_floor_check,
    verdict,
)


def main(argv: list[str] | None = None) -> int:
    parser = make_parser(__doc__, "BENCH_engine.json", threshold=0.25)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.5,
        help="min same-machine speedup vs the frozen reference engine",
    )
    parser.add_argument(
        "--min-vector-speedup",
        type=float,
        default=3.0,
        help="min same-machine vectorized-vs-scalar speedup on the mega cell",
    )
    parser.add_argument(
        "--max-vector-diff",
        type=float,
        default=1e-9,
        help="max per-record latency divergence (ms) of the vectorized engine",
    )
    parser.add_argument(
        "--max-stream-peak-mb",
        type=float,
        default=64.0,
        help="max traced peak memory (MiB) of the streamed mega-run",
    )
    args = parser.parse_args(argv)
    report, baseline = load_report_pair(args.report, args.baseline)

    fresh = float(
        get_path(report, args.report, "single_process", "events_per_s")
    )
    committed = float(
        get_path(baseline, args.baseline, "single_process", "events_per_s")
    )
    failed = throughput_floor_check("events/sec", fresh, committed, args.threshold, unit="")

    speedup = float(report["single_process"].get("speedup_vs_reference", 0.0))
    print(f"same-machine speedup vs frozen reference: {speedup:.2f}x")
    if speedup < args.min_speedup:
        failed = fail(
            f"speedup vs repro.sim._baseline fell to {speedup:.2f}x "
            f"(< {args.min_speedup:.2f}x)"
        )

    if not report["single_process"].get("bit_identical_to_reference", False):
        failed = fail("report does not attest bit-identity")

    vector_speedup = float(
        get_path(report, args.report, "mega", "cell", "vector_speedup")
    )
    print(f"vectorized engine speedup vs scalar (mega cell): {vector_speedup:.2f}x")
    if vector_speedup < args.min_vector_speedup:
        failed = fail(
            f"vectorized speedup fell to {vector_speedup:.2f}x "
            f"(< {args.min_vector_speedup:.2f}x)"
        )

    vector_diff = float(
        get_path(report, args.report, "mega", "cell", "max_abs_latency_diff_ms")
    )
    print(f"vectorized max per-record latency divergence: {vector_diff:g} ms")
    if vector_diff > args.max_vector_diff:
        failed = fail(
            f"vectorized engine diverges from scalar by {vector_diff:g} ms "
            f"(> {args.max_vector_diff:g})"
        )

    stream_peak = float(
        get_path(report, args.report, "mega", "stream", "peak_traced_mb")
    )
    stream_n = get_path(report, args.report, "mega", "stream", "num_requests")
    print(f"streamed run peak memory: {stream_peak:.1f} MiB for {stream_n} requests")
    if stream_peak > args.max_stream_peak_mb:
        failed = fail(
            f"streamed mega-run peaked at {stream_peak:.1f} MiB "
            f"(> {args.max_stream_peak_mb:.0f} MiB) — memory is no "
            "longer O(running set)"
        )

    if not get_path(report, args.report, "mega", "sharded", "workers_identical"):
        failed = fail(
            "report does not attest sharded-sweep worker-count identity"
        )

    failed |= compare_to_baseline(report, baseline, label="engine run-over-run")

    return verdict(failed)


if __name__ == "__main__":
    raise SystemExit(main())
