"""CI gate: fail when engine events/sec regresses vs the committed baseline.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py --quick --only engine \
        --engine-output bench_engine_new.json
    python benchmarks/check_engine_regression.py bench_engine_new.json

Two checks, two purposes:

1. **Cross-run**: the fresh report's single-process ``events_per_s``
   must be within ``--threshold`` (default 25%) of the committed
   ``BENCH_engine.json``.  Catches hot-path regressions, with enough
   slack to absorb runner-to-runner hardware variance.
2. **Same-machine**: the fresh report's ``speedup_vs_reference`` (the
   optimized engine vs the frozen ``repro.sim._baseline`` on the *same*
   host, same run) must stay >= ``--min-speedup`` (default 1.5).  This
   one is hardware-independent — if it decays, someone slowed the hot
   path relative to the vendored reference.

Exit code 0 = pass, 1 = regression, 2 = bad input.
"""

from __future__ import annotations

from gatelib import (
    fail,
    get_path,
    load_report_pair,
    make_parser,
    throughput_floor_check,
    verdict,
)


def main(argv: list[str] | None = None) -> int:
    parser = make_parser(__doc__, "BENCH_engine.json", threshold=0.25)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.5,
        help="min same-machine speedup vs the frozen reference engine",
    )
    args = parser.parse_args(argv)
    report, baseline = load_report_pair(args.report, args.baseline)

    fresh = float(
        get_path(report, args.report, "single_process", "events_per_s")
    )
    committed = float(
        get_path(baseline, args.baseline, "single_process", "events_per_s")
    )
    failed = throughput_floor_check("events/sec", fresh, committed, args.threshold, unit="")

    speedup = float(report["single_process"].get("speedup_vs_reference", 0.0))
    print(f"same-machine speedup vs frozen reference: {speedup:.2f}x")
    if speedup < args.min_speedup:
        failed = fail(
            f"speedup vs repro.sim._baseline fell to {speedup:.2f}x "
            f"(< {args.min_speedup:.2f}x)"
        )

    if not report["single_process"].get("bit_identical_to_reference", False):
        failed = fail("report does not attest bit-identity")

    return verdict(failed)


if __name__ == "__main__":
    raise SystemExit(main())
