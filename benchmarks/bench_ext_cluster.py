"""Extension: true multi-ISN fan-out simulation.

Quantifies the correlated-burst penalty on the cluster tail that the
independence approximation (resampling one server's latency marginal)
cannot see.
"""

from __future__ import annotations

from repro.experiments.extensions import extension_cluster_simulation

from conftest import run_figure


def test_ext_cluster(benchmark, scale, save_figure):
    """Simulated fan-out vs the independence approximation."""
    result = run_figure(benchmark, extension_cluster_simulation, scale, save_figure)
    assert result.tables
