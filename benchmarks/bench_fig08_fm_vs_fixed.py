"""Figure 8: FM vs fixed parallelism in Lucene.

99th-percentile and mean latency of SEQ, FIX-2, FIX-4, and FM over
the load range; the paper reports FM -33 %/-40 % vs FIX-2 at 40/43 RPS.
"""

from __future__ import annotations

from repro.experiments.figures import fig8_fm_vs_fixed

from conftest import run_figure


def test_fig08_fm_vs_fixed(benchmark, scale, save_figure):
    """Regenerate Figure 8(a,b)."""
    result = run_figure(benchmark, fig8_fm_vs_fixed, scale, save_figure)
    assert result.tables
