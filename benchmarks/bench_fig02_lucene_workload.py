"""Figure 2: Lucene demand distribution and average speedup.

Regenerates the Wikipedia-search demand histogram (20 ms bins,
median ~186 ms) and the speedup-by-degree table.
"""

from __future__ import annotations

from repro.experiments.figures import fig2_lucene_workload

from conftest import run_figure


def test_fig02_lucene_workload(benchmark, scale, save_figure):
    """Regenerate Figure 2(a,b)."""
    result = run_figure(benchmark, fig2_lucene_workload, scale, save_figure)
    assert result.tables
