"""Theorem 1 ablation: non-decreasing parallelism minimizes resources.

Evaluates expected resource usage of the few-to-many segment ordering
against shuffled and many-to-few orderings at equal processing time.
"""

from __future__ import annotations

from repro.experiments.figures import theorem1_check

from conftest import run_figure


def test_theorem1(benchmark, scale, save_figure):
    """Validate Theorem 1 numerically."""
    result = run_figure(benchmark, theorem1_check, scale, save_figure)
    assert result.tables
