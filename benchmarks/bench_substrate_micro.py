"""Microbenchmarks of the substrates themselves.

Unlike the figure benches (one-shot experiments), these measure
steady-state throughput of the building blocks, so pytest-benchmark's
statistics are meaningful: query execution in the miniature search
engine, the vectorized Eq. (1)-(5) evaluation, and the discrete-event
engine's event rate.
"""

from __future__ import annotations

import numpy as np

from repro.core.formulas import completion_times, tail_latency
from repro.core.schedule import IntervalSchedule
from repro.core.search import SearchConfig, build_interval_table
from repro.schedulers import FixedScheduler
from repro.search.corpus import generate_corpus, generate_query_log
from repro.search.executor import SearchEngine
from repro.search.index import InvertedIndex
from repro.search.query import parse_query
from repro.sim.engine import simulate
from repro.workloads.arrivals import PoissonProcess
from repro.workloads.lucene import lucene_workload


def test_search_engine_query_throughput(benchmark):
    """Queries per second against an 8-segment, 2000-doc index."""
    docs = generate_corpus(2000, vocab_size=3000, mean_doc_len=80, seed=31)
    engine = SearchEngine(InvertedIndex.build(docs, num_segments=8))
    queries = [parse_query(q) for q in generate_query_log(50, vocab_size=3000, seed=32)]
    counter = iter(range(10**9))

    def run_one():
        return engine.execute(queries[next(counter) % len(queries)])

    result = benchmark(run_one)
    assert result.total_cost_units > 0


def test_vectorized_formula_throughput(benchmark):
    """Eq. (1)-(5) over a 10K-request profile (one search candidate)."""
    profile = lucene_workload(profile_size=10_000).profile
    schedule = IntervalSchedule([0.0, 100.0, 150.0, 200.0])

    def run_one():
        completion_times(profile, schedule)
        return tail_latency(profile, schedule)

    tail = benchmark(run_one)
    assert tail > 0


def test_interval_search_build(benchmark):
    """Full Table-2-style search (binned, coarse grid)."""
    profile = lucene_workload(profile_size=4000).profile
    config = SearchConfig(
        max_degree=4, target_parallelism=24.0, step_ms=50.0, num_bins=40
    )
    table = benchmark(build_interval_table, profile, config)
    assert table.admission_capacity() is not None


def test_simulator_event_rate(benchmark):
    """One 300-request open-loop run under FIX-2 on 8 cores."""
    workload = lucene_workload(profile_size=1000)
    rng = np.random.default_rng(33)
    arrivals = workload.arrivals(300, PoissonProcess(40.0), rng)

    def run_one():
        return simulate(arrivals, FixedScheduler(2), cores=8, spin_fraction=0.25)

    result = benchmark(run_one)
    assert len(result) == 300
