"""Ablation: self-scheduling quantum sensitivity.

FM tail latency as the scheduling quantum varies from 1 to 50 ms
(the paper uses 5 ms).
"""

from __future__ import annotations

from repro.experiments.ablations import ablation_quantum

from conftest import run_figure


def test_ablation_quantum(benchmark, scale, save_figure):
    """Sweep the scheduling quantum."""
    result = run_figure(benchmark, ablation_quantum, scale, save_figure)
    assert result.tables
