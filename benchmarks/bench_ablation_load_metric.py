"""Ablation: instantaneous vs stale load metric.

FM driven by the instantaneous request count (the paper's choice)
versus periodically sampled counts.
"""

from __future__ import annotations

from repro.experiments.ablations import ablation_load_metric

from conftest import run_figure


def test_ablation_load_metric(benchmark, scale, save_figure):
    """Compare load-metric freshness."""
    result = run_figure(benchmark, ablation_load_metric, scale, save_figure)
    assert result.tables
