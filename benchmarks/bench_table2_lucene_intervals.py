"""Table 2: the Lucene interval table.

Builds the full load-indexed interval table for the Lucene workload
(target_p = 24, n = 4) and prints it in the paper's layout.
"""

from __future__ import annotations

from repro.experiments.figures import table2_lucene_intervals

from conftest import run_figure


def test_table2_lucene_intervals(benchmark, scale, save_figure):
    """Regenerate Table 2."""
    result = run_figure(benchmark, table2_lucene_intervals, scale, save_figure)
    assert result.tables
